"""ChoicePoint construction and validation."""

import pytest

from repro.choice import ChoiceError, ChoicePoint, ChoiceResolver


def test_empty_candidates_rejected():
    with pytest.raises(ChoiceError):
        ChoicePoint(label="x", candidates=[], node_id=0)


def test_info_defaults_empty():
    point = ChoicePoint(label="x", candidates=[1], node_id=0)
    assert point.info == {}


def test_carries_context():
    point = ChoicePoint(label="peer", candidates=[1, 2], node_id=3, info={"round": 7})
    assert point.node_id == 3
    assert point.info["round"] == 7


def test_base_resolver_abstract():
    with pytest.raises(NotImplementedError):
        ChoiceResolver().resolve(ChoicePoint(label="x", candidates=[1], node_id=0))
