"""Objective scoring semantics."""

import pytest

from repro.choice import (
    LivenessObjective,
    PerformanceObjective,
    SAFETY_PENALTY,
    SafetyObjective,
    WeightedObjective,
    combine,
)


def test_safety_holds_scores_zero():
    objective = SafetyObjective("ok", lambda w: True)
    assert objective.score(None) == 0.0
    assert objective.holds(None)


def test_safety_violation_is_heavy():
    objective = SafetyObjective("bad", lambda w: False)
    assert objective.score(None) == -SAFETY_PENALTY


def test_liveness_rewards_progress():
    objective = LivenessObjective("done", lambda w: w == "done", reward=10)
    assert objective.score("done") == 10
    assert objective.score("not") == 0


def test_performance_maximize():
    objective = PerformanceObjective("tput", lambda w: w, weight=2.0)
    assert objective.score(5) == 10.0


def test_performance_minimize_negates():
    objective = PerformanceObjective("depth", lambda w: w, minimize=True)
    assert objective.score(7) == -7.0


def test_weighted_combination():
    a = PerformanceObjective("a", lambda w: 1.0)
    b = PerformanceObjective("b", lambda w: 2.0)
    combined = WeightedObjective([(1.0, a), (3.0, b)])
    assert combined.score(None) == pytest.approx(7.0)


def test_combine_equal_weights():
    a = PerformanceObjective("a", lambda w: 1.0)
    b = PerformanceObjective("b", lambda w: 2.0)
    assert combine(a, b).score(None) == pytest.approx(3.0)


def test_safety_dominates_performance_in_combination():
    perf = PerformanceObjective("fast", lambda w: 1000.0)
    safety = SafetyObjective("never", lambda w: False)
    combined = combine(perf, safety)
    assert combined.score(None) < 0
