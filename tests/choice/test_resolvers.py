"""Baseline resolver behaviours."""

import pytest

from repro.choice import (
    ChoiceError,
    ChoicePoint,
    FirstResolver,
    FixedResolver,
    GreedyResolver,
    RandomResolver,
    RoundRobinResolver,
    ScriptedResolver,
)


def point(candidates, label="l"):
    return ChoicePoint(label=label, candidates=list(candidates), node_id=0)


def test_first_resolver():
    assert FirstResolver().resolve(point([3, 1, 2])) == 3


def test_fixed_resolver_index():
    assert FixedResolver(1).resolve(point(["a", "b", "c"])) == "b"


def test_fixed_resolver_clamps():
    assert FixedResolver(10).resolve(point(["a", "b"])) == "b"


def test_random_resolver_deterministic_per_seed():
    picks_a = [RandomResolver(5).resolve(point(range(10))) for _ in range(5)]
    picks_b = [RandomResolver(5).resolve(point(range(10))) for _ in range(5)]
    assert picks_a == picks_b


def test_random_resolver_covers_candidates():
    resolver = RandomResolver(1)
    picks = {resolver.resolve(point(range(3))) for _ in range(50)}
    assert picks == {0, 1, 2}


def test_round_robin_cycles_per_label():
    resolver = RoundRobinResolver()
    picks = [resolver.resolve(point(["a", "b", "c"])) for _ in range(5)]
    assert picks == ["a", "b", "c", "a", "b"]


def test_round_robin_labels_independent():
    resolver = RoundRobinResolver()
    resolver.resolve(point(["a", "b"], label="one"))
    assert resolver.resolve(point(["a", "b"], label="two")) == "a"


def test_scripted_resolver_replays():
    resolver = ScriptedResolver({"l": ["b", "a"]})
    assert resolver.resolve(point(["a", "b"])) == "b"
    assert resolver.resolve(point(["a", "b"])) == "a"
    # Script exhausted: falls back to first.
    assert resolver.resolve(point(["a", "b"])) == "a"


def test_scripted_resolver_invalid_value():
    resolver = ScriptedResolver({"l": ["zzz"]})
    with pytest.raises(ChoiceError):
        resolver.resolve(point(["a", "b"]))


def test_greedy_resolver_picks_max():
    resolver = GreedyResolver(lambda c, p, n: -abs(c - 7))
    assert resolver.resolve(point([1, 5, 8, 20])) == 8


def test_greedy_resolver_tie_goes_first():
    resolver = GreedyResolver(lambda c, p, n: 0.0)
    assert resolver.resolve(point(["x", "y"])) == "x"


def test_proportional_prefers_high_scores_statistically():
    from repro.choice import ProportionalResolver

    resolver = ProportionalResolver(
        lambda c, p, n: 10.0 if c == "hot" else 0.0, base_weight=0.5, seed=1,
    )
    picks = [resolver.resolve(point(["cold", "hot", "mild"])) for _ in range(200)]
    assert picks.count("hot") > 120  # ~10.5/11.5 of the mass


def test_proportional_spreads_on_equal_scores():
    from repro.choice import ProportionalResolver

    resolver = ProportionalResolver(lambda c, p, n: 1.0, seed=2)
    picks = {resolver.resolve(point(["a", "b", "c"])) for _ in range(100)}
    assert picks == {"a", "b", "c"}


def test_proportional_negative_scores_clipped():
    from repro.choice import ProportionalResolver

    resolver = ProportionalResolver(
        lambda c, p, n: -100.0 if c == "bad" else 1.0, base_weight=0.0, seed=3,
    )
    picks = {resolver.resolve(point(["bad", "good"])) for _ in range(50)}
    assert picks == {"good"}


def test_proportional_zero_total_uniform():
    from repro.choice import ProportionalResolver

    resolver = ProportionalResolver(lambda c, p, n: 0.0, base_weight=0.0, seed=4)
    picks = {resolver.resolve(point(["a", "b"])) for _ in range(50)}
    assert picks == {"a", "b"}


def test_proportional_invalid_base_weight():
    from repro.choice import ProportionalResolver

    with pytest.raises(ChoiceError):
        ProportionalResolver(lambda c, p, n: 0.0, base_weight=-1.0)
