"""The incremental-digest invariant under randomized evolve sequences.

``WorldState.digest()`` is maintained incrementally (cached per-node
digests pulled lazily across clone-parent links, memoized per-event
digests); ``recompute_digest()`` rebuilds the same digest from scratch
with every cache empty.  These tests drive randomized action sequences
— deliver-like state changes, sends, receives, timer arms/fires, drops,
down-set changes — digesting worlds in arbitrary interleavings, and
assert the two always agree.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.mc import InFlightMessage, PendingTimer, WorldState

from .conftest import Token


def _initial_world(rng: random.Random) -> WorldState:
    n = rng.randint(2, 5)
    states = {
        nid: {"total": rng.randint(0, 5), "forwards": rng.randint(0, 2)}
        for nid in range(n)
    }
    inflight = [
        InFlightMessage(rng.randrange(n), rng.randrange(n), Token(value=rng.randint(0, 3)))
        for _ in range(rng.randint(0, 4))
    ]
    timers = [
        PendingTimer(rng.randrange(n), name, None, 1.0)
        for name in ("kick", "tick")[: rng.randint(0, 2)]
    ]
    return WorldState(node_states=states, inflight=inflight, timers=timers)


def _random_step(rng: random.Random, world: WorldState) -> WorldState:
    n = len(world.node_states)
    op = rng.choice(("state", "send", "recv", "arm", "fire", "down", "mixed"))
    if op == "state":
        nid = rng.randrange(n)
        return world.evolve(
            node_id=nid,
            new_state={"total": rng.randint(0, 99), "forwards": rng.randint(0, 9)},
        )
    if op == "send":
        msg = InFlightMessage(rng.randrange(n), rng.randrange(n), Token(value=rng.randint(0, 3)))
        return world.evolve(add_inflight=[msg])
    if op == "recv" and world.inflight:
        victim = rng.choice(world.inflight)
        nid = victim.dst if victim.dst < n else 0
        return world.evolve(
            node_id=nid,
            new_state={"total": rng.randint(0, 99), "forwards": 0},
            remove_inflight=victim,
        )
    if op == "arm":
        return world.evolve(
            add_timers=[PendingTimer(rng.randrange(n), rng.choice("abc"), None, 0.5)]
        )
    if op == "fire" and world.timers:
        timer = rng.choice(world.timers)
        return world.evolve(
            node_id=timer.node if timer.node < n else 0,
            new_state={"total": rng.randint(0, 99), "forwards": 1},
            remove_timers=[(timer.node, timer.name)],
        )
    if op == "down":
        return world.with_down(rng.sample(range(n), rng.randint(0, n - 1)))
    # mixed: state change + send + re-arm in one evolve
    nid = rng.randrange(n)
    return world.evolve(
        node_id=nid,
        new_state={"total": rng.randint(0, 99), "forwards": 2},
        add_inflight=[InFlightMessage(nid, (nid + 1) % n, Token(value=7))],
        add_timers=[PendingTimer(nid, "kick", None, 1.0)],
    )


@given(seed=st.integers(0, 10_000), digest_mask=st.integers(0, 2**16 - 1))
@settings(max_examples=60, deadline=None)
def test_incremental_digest_matches_full_recompute(seed, digest_mask):
    rng = random.Random(seed)
    world = _initial_world(rng)
    chain = [world]
    for step in range(14):
        world = _random_step(rng, world)
        chain.append(world)
        if digest_mask >> step & 1:
            # Interleave digesting mid-chain: exercises both eagerly
            # warmed caches and cold parent-pull paths.
            world.digest()
    for w in chain:
        assert w.digest() == w.recompute_digest()


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_digest_independent_of_computation_order(seed):
    """Digesting a chain leaf-first and root-first yields the same values."""
    rng = random.Random(seed)
    root = _initial_world(rng)
    chain = [root]
    for _ in range(10):
        chain.append(_random_step(rng, chain[-1]))

    rng2 = random.Random(seed)
    root2 = _initial_world(rng2)
    chain2 = [root2]
    for _ in range(10):
        chain2.append(_random_step(rng2, chain2[-1]))

    forward = [w.digest() for w in chain]
    backward = [w.digest() for w in reversed(chain2)][::-1]
    assert forward == backward


def test_changed_node_only_rehashes_that_node():
    world = WorldState(node_states={0: {"x": 1}, 1: {"x": 2}, 2: {"x": 3}})
    world.digest()
    child = world.evolve(node_id=1, new_state={"x": 99})
    child.digest()
    # Unchanged nodes were pulled from the parent's cache, not re-frozen.
    assert child._node_digests[0] == world._node_digests[0]
    assert child._node_digests[2] == world._node_digests[2]
    assert child._node_digests[1] != world._node_digests[1]


def test_sibling_leaves_share_published_ancestor_digests():
    """A digest computed by one branch is found by its siblings via the
    highest ancestor still sharing the state dict."""
    root = WorldState(node_states={0: {"x": 1}, 1: {"x": 2}})
    mid = root.evolve(node_id=0, new_state={"x": 5})
    left = mid.evolve(add_inflight=[InFlightMessage(0, 1, Token(value=1))])
    right = mid.evolve(add_inflight=[InFlightMessage(1, 0, Token(value=2))])
    left.digest()  # computes node digests, publishes at `mid`
    assert 0 in mid._node_digests
    right.digest()
    assert right._node_digests[0] == left._node_digests[0]
    assert right.digest() == right.recompute_digest()
