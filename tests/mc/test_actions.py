"""Action identity and description coverage."""

from repro.mc import (
    DeliverAction,
    DropAction,
    InjectAction,
    TimerAction,
    action_key,
)

from .conftest import Token


def test_deliver_key_includes_handler():
    a = DeliverAction(src=0, dst=1, msg=Token(value=1), handler="h1")
    b = DeliverAction(src=0, dst=1, msg=Token(value=1), handler="h2")
    assert action_key(a) != action_key(b)


def test_deliver_key_payload_sensitive():
    a = DeliverAction(src=0, dst=1, msg=Token(value=1), handler="h")
    b = DeliverAction(src=0, dst=1, msg=Token(value=2), handler="h")
    assert action_key(a) != action_key(b)


def test_keys_distinguish_action_types():
    deliver = DeliverAction(src=0, dst=1, msg=Token(value=1), handler="h")
    drop = DropAction(src=0, dst=1, msg=Token(value=1))
    assert action_key(deliver)[0] == "deliver"
    assert action_key(drop)[0] == "drop"
    assert action_key(deliver) != action_key(drop)


def test_timer_key_includes_payload():
    a = TimerAction(node=1, name="t", payload="x")
    b = TimerAction(node=1, name="t", payload="y")
    assert action_key(a) != action_key(b)


def test_describe_is_readable():
    assert "Token 0->1" in DeliverAction(0, 1, Token(value=1), "on_token").describe()
    assert "timer t at 2" == TimerAction(2, "t").describe()
    assert "drop" in DropAction(0, 1, Token(value=1)).describe()
    assert "inject" in InjectAction(-1, 1, Token(value=1)).describe()


def test_keys_are_stable_across_instances():
    a = DeliverAction(src=0, dst=1, msg=Token(value=1), handler="h")
    b = DeliverAction(src=0, dst=1, msg=Token(value=1), handler="h")
    assert action_key(a) == action_key(b)
