"""Consequence prediction: causal chains, budgets, scoring."""

import pytest

from repro.choice import PerformanceObjective
from repro.mc import (
    ConsequencePredictor,
    Explorer,
    InFlightMessage,
    PendingTimer,
    SafetyProperty,
    WorldState,
    score_outcome,
)

from .conftest import Token, TokenService


def world_with(factory, inflight=(), timers=(), n=3):
    states = {i: factory(i).checkpoint() for i in range(n)}
    return WorldState(node_states=states, inflight=inflight, timers=timers)


def total_sum(world):
    return sum(world.state_of(n)["total"] for n in world.node_ids)


def test_outcome_per_enabled_action(token_factory):
    world = world_with(
        token_factory,
        inflight=[InFlightMessage(0, 1, Token(value=1))],
        timers=[PendingTimer(0, "kick", None, 1.0)],
    )
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=2, budget=500)
    report = predictor.predict(world)
    assert len(report.outcomes) == 2  # one delivery + one timer


def test_chain_follows_causal_events(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=4, budget=500)
    report = predictor.predict(world)
    outcome = report.outcomes[0]
    # Chains must reach worlds where the token was forwarded at least
    # twice (total >= 3 across nodes: deliveries accumulate).
    assert any(total_sum(world) >= 3 for world in outcome.leaf_worlds)


def test_chain_depth_bounds_leaves(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=1, budget=500)
    report = predictor.predict(world)
    for leaf in report.outcomes[0].leaf_worlds:
        assert leaf.depth <= 1


def test_budget_limits_states(token_factory):
    world = world_with(
        token_factory,
        timers=[PendingTimer(i, "kick", None, 1.0) for i in range(3)],
    )
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=6, budget=20)
    report = predictor.predict(world)
    assert report.total_states <= 25  # budget plus per-action slack


def test_violations_attributed_to_initial_action(token_factory):
    prop = SafetyProperty(
        "node2-never-receives", lambda w: w.state_of(2)["total"] == 0,
    )
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(
        Explorer(token_factory, properties=[prop]), chain_depth=4, budget=500,
    )
    report = predictor.predict(world)
    unsafe = report.unsafe_actions()
    assert len(unsafe) == 1
    assert unsafe[0].dst == 1


def test_outcome_lookup_by_key(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=1, budget=100)
    report = predictor.predict(world)
    action = report.outcomes[0].action
    assert report.outcome_for(action.key()) is report.outcomes[0]
    assert report.outcome_for(("nope",)) is None


def test_score_outcome_penalizes_violations(token_factory):
    prop = SafetyProperty("never", lambda w: False)
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(
        Explorer(token_factory, properties=[prop]), chain_depth=1, budget=100,
    )
    report = predictor.predict(world)
    objective = PerformanceObjective("sum", total_sum)
    assert score_outcome(report.outcomes[0], objective) < -1000


def test_score_outcome_aggregates(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=3, budget=500)
    outcome = predictor.predict(world).outcomes[0]
    objective = PerformanceObjective("sum", total_sum)
    low = score_outcome(outcome, objective, aggregate="min")
    mean = score_outcome(outcome, objective, aggregate="mean")
    high = score_outcome(outcome, objective, aggregate="max")
    assert low <= mean <= high


def test_score_outcome_invalid_aggregate(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    predictor = ConsequencePredictor(Explorer(token_factory), chain_depth=1, budget=100)
    outcome = predictor.predict(world).outcomes[0]
    with pytest.raises(ValueError):
        score_outcome(outcome, PerformanceObjective("s", total_sum), aggregate="median")


def test_invalid_chain_depth():
    with pytest.raises(ValueError):
        ConsequencePredictor(Explorer(lambda nid: TokenService(nid)), chain_depth=0)
