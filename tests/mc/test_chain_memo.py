"""Cross-round chain memoization: hits, footprints, and determinism.

The contract under test: a :class:`~repro.mc.ChainMemo`-backed
predictor must produce reports byte-identical (``report.digest()``)
to a memo-free predictor on *every* round, hitting the cache whenever
the causal footprint of a chain is unchanged and re-exploring when it
is not.
"""

from dataclasses import dataclass

from repro.mc import (
    ChainMemo,
    ConsequencePredictor,
    Explorer,
    InFlightMessage,
    PendingTimer,
    SafetyProperty,
    WorldState,
)
from repro.mc.properties import all_nodes
from repro.statemachine import Message, Service, msg_handler, timer_handler
from repro.statemachine.serialization import snapshot_value

from .conftest import Token, TokenService


def fresh(world):
    """A new world with equal content and no caches: what the next
    prediction round would snapshot."""
    return WorldState(
        node_states={nid: snapshot_value(s) for nid, s in world.node_states.items()},
        inflight=[InFlightMessage(m.src, m.dst, m.msg) for m in world.inflight],
        timers=[PendingTimer(t.node, t.name, t.payload, t.delay) for t in world.timers],
        down=set(world.down),
        time=world.time,
        depth=world.depth,
        copy_states=False,
    )


def token_world(factory, inflight=(), timers=(), n=3, extra_nodes=()):
    states = {i: factory(i).checkpoint() for i in range(n)}
    for nid in extra_nodes:
        states[nid] = factory(nid).checkpoint()
    return WorldState(node_states=states, inflight=inflight, timers=timers)


def predictors(factory, memo, properties=(), chain_depth=3, budget=500, workers=1):
    """A memoized predictor and its memo-free twin."""
    on = ConsequencePredictor(
        Explorer(factory, properties=list(properties)),
        chain_depth=chain_depth, budget=budget, workers=workers, memo=memo,
    )
    off = ConsequencePredictor(
        Explorer(factory, properties=list(properties)),
        chain_depth=chain_depth, budget=budget,
    )
    return on, off


def assert_identical(on, off, world):
    """Predict with both; the memoized report must match byte for byte."""
    report_off = off.predict(fresh(world))
    report_on = on.predict(fresh(world))
    assert report_on.digest() == report_off.digest()
    return report_on


def test_identical_rounds_hit(token_factory):
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(0, 1, Token(value=1))],
        timers=[PendingTimer(0, "kick", None, 1.0)],
    )
    memo = ChainMemo()
    on, off = predictors(token_factory, memo)
    first = assert_identical(on, off, world)
    assert first.memo_hits == 0
    assert first.memo_misses == len(first.outcomes)
    second = assert_identical(on, off, world)
    assert second.memo_hits == len(second.outcomes)
    assert second.memo_misses == 0
    assert memo.snapshot()["rebase_errors"] == 0


def test_touched_node_change_misses(token_factory):
    world = token_world(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    memo = ChainMemo()
    on, off = predictors(token_factory, memo)
    assert_identical(on, off, world)
    # Node 1 receives the message: its chain read node 1's state.
    world.node_states[1] = dict(world.node_states[1], total=7)
    report = assert_identical(on, off, world)
    assert report.memo_misses >= 1


def test_untouched_node_change_still_hits(token_factory):
    # Node 9 exists in the world but is outside the 3-node token ring:
    # no chain ever materializes it, so its state is not in any
    # footprint.
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(0, 1, Token(value=1))],
        extra_nodes=(9,),
    )
    memo = ChainMemo()
    on, off = predictors(token_factory, memo)
    assert_identical(on, off, world)
    world.node_states[9] = dict(world.node_states[9], total=42)
    report = assert_identical(on, off, world)
    assert report.memo_hits == len(report.outcomes)


def test_world_scope_property_escalates_to_full_miss(token_factory):
    # A hand-rolled property (scope "world") may read anything, so any
    # world change — even an unread node — must invalidate.
    prop = SafetyProperty("anything", lambda w: True)
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(0, 1, Token(value=1))],
        extra_nodes=(9,),
    )
    memo = ChainMemo()
    on, off = predictors(token_factory, memo, properties=[prop])
    assert_identical(on, off, world)
    world.node_states[9] = dict(world.node_states[9], total=42)
    report = assert_identical(on, off, world)
    assert report.memo_hits == 0


def test_nodes_scope_property_gates_on_root_verdict(token_factory):
    prop = all_nodes(lambda nid, s: s["total"] <= 5, "small-totals")
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(0, 1, Token(value=1))],
        extra_nodes=(9,),
    )
    memo = ChainMemo()
    on, off = predictors(token_factory, memo, properties=[prop])
    assert_identical(on, off, world)
    # Verdict unchanged (still True everywhere): reuse is sound.
    report = assert_identical(on, off, world)
    assert report.memo_hits == len(report.outcomes)
    # Verdict flips at an unread node: the gate closes, chains re-run.
    world.node_states[9] = dict(world.node_states[9], total=99)
    report = assert_identical(on, off, world)
    assert report.memo_hits == 0


def test_budget_change_stays_deterministic(token_factory):
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(i, (i + 1) % 3, Token(value=1)) for i in range(3)],
    )
    memo = ChainMemo()
    # Warm with an ample budget, then predict under a budget tight
    # enough to truncate: the memoized run must match a memo-free run
    # at the tight budget exactly (reuse only when the truncation path
    # provably agrees).
    on_wide, off_wide = predictors(token_factory, memo, chain_depth=4, budget=500)
    assert_identical(on_wide, off_wide, world)
    on_tight, off_tight = predictors(token_factory, memo, chain_depth=4, budget=7)
    tight = assert_identical(on_tight, off_tight, world)
    assert tight.budget_exhausted
    # And the tight rounds themselves memoize deterministically.
    assert_identical(on_tight, off_tight, world)


def test_invalidate_flushes(token_factory):
    world = token_world(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    memo = ChainMemo()
    on, off = predictors(token_factory, memo)
    assert_identical(on, off, world)
    memo.invalidate("topology")
    report = assert_identical(on, off, world)
    assert report.memo_hits == 0
    assert memo.snapshot()["invalidations"] == 1


def test_config_change_flushes(token_factory):
    world = token_world(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    memo = ChainMemo()
    on, off = predictors(token_factory, memo, chain_depth=3)
    assert_identical(on, off, world)
    assert len(memo) > 0
    # Same memo bound to a different exploration configuration: stale
    # entries would be wrong, so binding flushes.
    on2, off2 = predictors(token_factory, memo, chain_depth=2)
    report = assert_identical(on2, off2, world)
    assert report.memo_hits == 0


def test_parallel_predictor_matches_serial(token_factory):
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(i, (i + 1) % 3, Token(value=1)) for i in range(3)],
        timers=[PendingTimer(0, "kick", None, 1.0)],
    )
    memo = ChainMemo()
    on, off = predictors(token_factory, memo, workers=2)
    assert_identical(on, off, world)
    report = assert_identical(on, off, world)
    assert report.memo_hits == len(report.outcomes)


def test_lru_eviction_bounds_entries(token_factory):
    world = token_world(
        token_factory,
        inflight=[InFlightMessage(i, (i + 1) % 3, Token(value=i)) for i in range(3)],
        timers=[PendingTimer(i, "kick", None, 1.0) for i in range(3)],
    )
    memo = ChainMemo(max_entries=2)
    on, off = predictors(token_factory, memo)
    assert_identical(on, off, world)
    snap = memo.snapshot()
    assert snap["entries"] <= 2
    assert snap["evictions"] > 0
    # A bounded memo is still correct, just less effective.
    assert_identical(on, off, world)


@dataclass
class Stamp(Message):
    pass


class ClockService(Service):
    """Records the time it saw a message: chains read the clock."""

    state_fields = ("seen_at",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen_at = -1.0

    @msg_handler(Stamp)
    def on_stamp(self, src, msg):
        self.seen_at = self.now()


def test_time_read_in_footprint():
    factory = lambda nid: ClockService(nid)
    world = token_world(factory, inflight=[InFlightMessage(0, 1, Stamp())], n=2)
    memo = ChainMemo()
    on, off = predictors(factory, memo)
    assert_identical(on, off, world)
    report = assert_identical(on, off, world)
    assert report.memo_hits == len(report.outcomes)
    # The chain read ``now()``: a different root time must re-explore
    # (the stamped state embeds the clock).
    world.time = 3.5
    report = assert_identical(on, off, world)
    assert report.memo_hits == 0


class RearmService(Service):
    """A periodic timer: firing it re-arms it with the same cadence."""

    state_fields = ("ticks",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.ticks = 0

    @timer_handler("tick")
    def on_tick(self, payload):
        self.ticks += 1
        self.set_timer("tick", 1.0)


def test_rearm_footprint_sees_root_timer_delay():
    factory = lambda nid: RearmService(nid)
    memo = ChainMemo()
    on, off = predictors(factory, memo, chain_depth=2)
    world = token_world(factory, timers=[PendingTimer(0, "tick", None, 1.0)], n=1)
    assert_identical(on, off, world)
    report = assert_identical(on, off, world)
    assert report.memo_hits == len(report.outcomes)
    # Same timer key, different armed delay: the successor's timer set
    # differs (the fired instance is removed by (key, delay)), so the
    # cached chain must not be reused.
    world2 = token_world(factory, timers=[PendingTimer(0, "tick", None, 2.0)], n=1)
    report = assert_identical(on, off, world2)
    assert report.memo_misses >= 1


def test_snapshot_counters(token_factory):
    world = token_world(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    memo = ChainMemo()
    on, off = predictors(token_factory, memo)
    assert_identical(on, off, world)
    assert_identical(on, off, world)
    snap = memo.snapshot()
    assert snap["stores"] == snap["misses"]
    assert snap["hits"] > 0
    assert snap["hit_rate"] == snap["hits"] / (snap["hits"] + snap["misses"])
    assert set(snap) == {
        "entries", "actions", "hits", "misses", "stores", "evictions",
        "invalidations", "invalidation_reasons", "rebase_errors", "hit_rate",
    }


def test_invalidation_reasons_counted(token_factory):
    world = token_world(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    memo = ChainMemo()
    on, off = predictors(token_factory, memo)
    assert_identical(on, off, world)
    memo.invalidate("liveness")
    assert_identical(on, off, world)
    memo.invalidate("liveness")
    memo.invalidate("topology:link")  # empty memo: nothing dropped, not counted
    assert_identical(on, off, world)
    memo.invalidate("topology:link")
    snap = memo.snapshot()
    assert snap["invalidation_reasons"] == {"liveness": 2, "topology:link": 1}
