"""Safety property helpers."""

from repro.mc import SafetyProperty, WorldState, all_nodes, pairwise, violated_properties


def make_world(states, down=()):
    return WorldState(node_states=states, down=down)


def test_violated_properties_lists_names():
    world = make_world({0: {"x": 1}})
    props = [
        SafetyProperty("ok", lambda w: True),
        SafetyProperty("bad", lambda w: False),
    ]
    assert violated_properties(world, props) == ["bad"]


def test_all_nodes_checks_live_only():
    prop = all_nodes(lambda nid, state: state["x"] > 0, name="positive")
    world = make_world({0: {"x": 1}, 1: {"x": -1}}, down={1})
    assert prop.holds(world)
    assert not prop.holds(make_world({0: {"x": 1}, 1: {"x": -1}}))


def test_pairwise_checks_ordered_pairs():
    # a's "next" pointer must name a node whose "prev" is a.
    def consistent(a, sa, b, sb):
        if sa.get("next") == b:
            return sb.get("prev") == a
        return True

    prop = pairwise(consistent, name="links")
    good = make_world({0: {"next": 1, "prev": None}, 1: {"next": None, "prev": 0}})
    bad = make_world({0: {"next": 1, "prev": None}, 1: {"next": None, "prev": 9}})
    assert prop.holds(good)
    assert not prop.holds(bad)


def test_pairwise_ignores_down_nodes():
    prop = pairwise(lambda a, sa, b, sb: False, name="never")
    world = make_world({0: {}, 1: {}}, down={0, 1})
    assert prop.holds(world)  # vacuously: no live pairs
