"""Property-based memo equivalence (hypothesis).

The one invariant everything rests on: for ANY sequence of worlds fed
to a predictor round after round, the memoized reports are
byte-identical — ``report.digest()`` equal — to a memo-free
predictor's.  Hypothesis drives the world sequence: random node
states, random in-flight tokens, random timers, random down sets, so
hits, partial hits, and full invalidations all get exercised without
hand-picking the mutations.
"""

from hypothesis import given, settings, strategies as st

from repro.mc import (
    ChainMemo,
    ConsequencePredictor,
    Explorer,
    InFlightMessage,
    PendingTimer,
    SafetyProperty,
    WorldState,
)
from repro.mc.properties import all_nodes, pairwise

from .conftest import Token, TokenService


def factory(node_id):
    return TokenService(node_id, n=3)


def world_strategy():
    """A random 3-node token world: states, messages, timers, liveness."""
    state = st.fixed_dictionaries(
        {"total": st.integers(0, 6), "forwards": st.integers(0, 2)}
    )
    messages = st.lists(
        st.builds(
            InFlightMessage,
            src=st.integers(0, 2),
            dst=st.integers(0, 2),
            msg=st.builds(Token, value=st.integers(0, 2)),
        ),
        max_size=4,
    )
    timers = st.lists(
        st.builds(
            PendingTimer,
            node=st.integers(0, 2),
            name=st.just("kick"),
            payload=st.none(),
            delay=st.sampled_from([0.5, 1.0]),
        ),
        max_size=2,
    )
    return st.builds(
        lambda states, inflight, tm, down: WorldState(
            node_states=states, inflight=inflight, timers=tm, down=down,
        ),
        states=st.fixed_dictionaries({0: state, 1: state, 2: state}),
        inflight=messages,
        tm=timers,
        down=st.sets(st.integers(0, 2), max_size=1),
    )


PROPERTY_SETS = {
    "none": [],
    "scoped": [
        all_nodes(lambda nid, s: s["total"] <= 4, "bounded-total"),
        pairwise(lambda a, sa, b, sb: sa["forwards"] + sb["forwards"] <= 4,
                 "bounded-pair"),
    ],
    "world": [SafetyProperty("sum-small",
                             lambda w: sum(s["total"] for s in w.node_states.values()) <= 10)],
}


def run_rounds(worlds, properties):
    memo = ChainMemo()
    on = ConsequencePredictor(
        Explorer(factory, properties=properties),
        chain_depth=3, budget=300, memo=memo,
    )
    off = ConsequencePredictor(
        Explorer(factory, properties=properties),
        chain_depth=3, budget=300,
    )
    for world in worlds:
        report_off = off.predict(world.clone())
        report_on = on.predict(world.clone())
        assert report_on.digest() == report_off.digest()
    assert memo.snapshot()["rebase_errors"] == 0


@given(worlds=st.lists(world_strategy(), min_size=2, max_size=5))
@settings(max_examples=50, deadline=None)
def test_memo_reports_identical_no_properties(worlds):
    run_rounds(worlds, PROPERTY_SETS["none"])


@given(worlds=st.lists(world_strategy(), min_size=2, max_size=5))
@settings(max_examples=50, deadline=None)
def test_memo_reports_identical_scoped_properties(worlds):
    run_rounds(worlds, PROPERTY_SETS["scoped"])


@given(worlds=st.lists(world_strategy(), min_size=2, max_size=5))
@settings(max_examples=25, deadline=None)
def test_memo_reports_identical_world_scope(worlds):
    run_rounds(worlds, PROPERTY_SETS["world"])


@given(world=world_strategy(), repeats=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_repeated_world_converges_to_all_hits(world, repeats):
    """Feeding the same content repeatedly must end in pure hits."""
    memo = ChainMemo()
    on = ConsequencePredictor(Explorer(factory), chain_depth=3, budget=300, memo=memo)
    report = None
    for _ in range(repeats):
        report = on.predict(world.clone())
    if report.outcomes:
        assert report.memo_hits == len(report.outcomes)
        assert report.memo_misses == 0
