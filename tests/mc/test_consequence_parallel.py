"""The parallel consequence predictor must be invisible: same report,
same order, same budget accounting as serial mode."""

import pytest

from repro.mc import (
    ConsequencePredictor,
    Explorer,
    InFlightMessage,
    PendingTimer,
    world_from_services,
)
from repro.mc.actions import DeliverAction
from repro.mc.properties import all_nodes

from .conftest import Token


def _world(factory, n=3):
    services = [factory(nid) for nid in range(n)]
    world = world_from_services(services)
    world.inflight.extend(
        [
            InFlightMessage(0, 1, Token(value=1)),
            InFlightMessage(1, 2, Token(value=1)),
            InFlightMessage(2, 0, Token(value=2)),
        ]
    )
    world.timers.append(PendingTimer(0, "kick", None, 1.0))
    return world


def _properties():
    return [all_nodes(lambda nid, s: s.get("total", 0) <= 1, "total-cap")]


def _signature(report):
    return (
        report.total_states,
        report.budget_exhausted,
        [o.action.key() for o in report.outcomes],
        [o.states for o in report.outcomes],
        [
            sorted((v.property_name, tuple(a.key() for a in v.path)) for v in o.violations)
            for o in report.outcomes
        ],
        [sorted(w.digest() for w in o.leaf_worlds) for o in report.outcomes],
    )


def _predict(factory, world, workers, budget=2_000):
    explorer = Explorer(factory, properties=_properties())
    predictor = ConsequencePredictor(
        explorer, chain_depth=3, budget=budget, workers=workers
    )
    return predictor.predict(world)


def test_parallel_report_identical_to_serial(token_factory):
    world = _world(token_factory)
    serial = _predict(token_factory, world, workers=1)
    parallel = _predict(token_factory, world, workers=4)
    assert serial.outcomes  # the workload is non-trivial
    assert any(o.violations for o in serial.outcomes)
    assert _signature(serial) == _signature(parallel)


def test_parallel_agrees_under_tight_budget(token_factory):
    """When the budget truncates chains, parallel mode re-runs the
    affected chains with the serial remaining budget — reports match."""
    world = _world(token_factory)
    serial = _predict(token_factory, world, workers=1, budget=7)
    parallel = _predict(token_factory, world, workers=4, budget=7)
    assert serial.budget_exhausted or serial.total_states <= 7
    assert _signature(serial) == _signature(parallel)


def test_invalid_configuration_rejected(token_factory):
    explorer = Explorer(token_factory)
    with pytest.raises(ValueError):
        ConsequencePredictor(explorer, workers=0)
    with pytest.raises(ValueError):
        ConsequencePredictor(explorer, chain_depth=0)


def test_outcome_for_indexes_by_action_key(token_factory):
    world = _world(token_factory)
    report = _predict(token_factory, world, workers=1)
    for outcome in report.outcomes:
        assert report.outcome_for(outcome.action.key()) is outcome
    assert report.outcome_for(("deliver", 9, 9, None, "nope")) is None
    # The index tracks later appends.
    from repro.mc import ActionOutcome

    extra = ActionOutcome(
        action=DeliverAction(src=9, dst=9, msg=Token(value=0), handler="on_token")
    )
    report.outcomes.append(extra)
    assert report.outcome_for(extra.action.key()) is extra


def test_parallel_uses_spawned_explorers(token_factory, monkeypatch):
    """Worker chains run on explorer clones, never the shared instance."""
    world = _world(token_factory)
    explorer = Explorer(token_factory, properties=_properties())
    predictor = ConsequencePredictor(explorer, chain_depth=3, budget=2_000, workers=4)
    seen = []
    original_spawn = Explorer.spawn

    def recording_spawn(self):
        clone = original_spawn(self)
        seen.append(clone)
        return clone

    monkeypatch.setattr(Explorer, "spawn", recording_spawn)
    predictor.predict(world)
    assert seen  # parallel mode spawned per-chain explorers
    assert all(clone is not explorer for clone in seen)
    assert all(clone.pool is not explorer.pool for clone in seen)
