"""Explorer bounding behaviour: choice-variant caps, unknown targets."""

from dataclasses import dataclass

from repro.mc import Explorer, InFlightMessage, WorldState
from repro.statemachine import Message, Service, msg_handler


@dataclass
class Fanout(Message):
    rounds: int


class WideChooser(Service):
    """A handler with several sequential wide choices (variant blow-up)."""

    state_fields = ("picks",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.picks = []

    @msg_handler(Fanout)
    def on_fanout(self, src, msg):
        for _ in range(msg.rounds):
            self.picks.append(self.choose("wide", list(range(4))))


def make_world(factory, msg, n=2):
    states = {i: factory(i).checkpoint() for i in range(n)}
    return WorldState(node_states=states, inflight=[InFlightMessage(0, 1, msg)])


def test_variants_enumerate_fully_when_small():
    explorer = Explorer(WideChooser)
    world = make_world(WideChooser, Fanout(rounds=1))
    action = explorer.enabled_actions(world)[0]
    successors = explorer.successors(world, action)
    assert len(successors) == 4
    picks = {tuple(s.state_of(1)["picks"]) for s in successors}
    assert picks == {(0,), (1,), (2,), (3,)}


def test_variant_cap_bounds_blowup():
    # 3 sequential 4-way choices = 64 full variants; cap at 10 expansions.
    explorer = Explorer(WideChooser, max_choice_variants=10)
    world = make_world(WideChooser, Fanout(rounds=3))
    action = explorer.enabled_actions(world)[0]
    successors = explorer.successors(world, action)
    assert 0 < len(successors) < 64


def test_unknown_destination_not_enabled():
    explorer = Explorer(WideChooser)
    states = {0: WideChooser(0).checkpoint()}  # node 7 unknown
    world = WorldState(
        node_states=states,
        inflight=[InFlightMessage(0, 7, Fanout(rounds=1))],
    )
    assert explorer.enabled_actions(world) == []


def test_successors_do_not_mutate_input_world():
    explorer = Explorer(WideChooser)
    world = make_world(WideChooser, Fanout(rounds=1))
    digest = world.digest()
    explorer.successors(world, explorer.enabled_actions(world)[0])
    assert world.digest() == digest
    assert len(world.inflight) == 1
