"""Bounded liveness (progress reachability) checking."""

from repro.mc import (
    BoundedLivenessChecker,
    Explorer,
    InFlightMessage,
    LivenessProperty,
    WorldState,
)

from .conftest import Token, TokenService


def world_with(factory, inflight=(), n=3):
    states = {i: factory(i).checkpoint() for i in range(n)}
    return WorldState(node_states=states, inflight=inflight)


def delivered_somewhere(world):
    return any(world.state_of(n)["total"] > 0 for n in world.node_ids)


def node2_received(world):
    return world.state_of(2)["total"] > 0


def test_progress_reachable_with_witness(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    checker = BoundedLivenessChecker(Explorer(token_factory), max_depth=3)
    result = checker.check(world, LivenessProperty("delivered", delivered_somewhere))
    assert result.reachable
    assert len(result.witness_path) == 1  # one delivery suffices
    assert result.witness_world is not None


def test_already_satisfied_immediate():
    factory = lambda nid: TokenService(nid, n=3)
    service = factory(1)
    service.total = 5
    states = {i: (service if i == 1 else factory(i)).checkpoint() for i in range(3)}
    world = WorldState(node_states=states)
    checker = BoundedLivenessChecker(Explorer(factory))
    result = checker.check(world, LivenessProperty("delivered", delivered_somewhere))
    assert result.reachable
    assert result.witness_path == ()
    assert result.states_explored == 1


def test_unreachable_progress_is_violation(token_factory):
    # Empty world: nothing in flight, no timers — no action can ever
    # deliver a token, so progress is (exhaustively) unreachable.
    world = world_with(token_factory)
    checker = BoundedLivenessChecker(Explorer(token_factory), max_depth=4)
    result = checker.check(world, LivenessProperty("delivered", delivered_somewhere))
    assert not result.reachable
    assert result.violated  # exhaustive, not truncated


def test_truncated_search_is_not_a_violation(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    checker = BoundedLivenessChecker(Explorer(token_factory), max_depth=6, max_states=2)
    result = checker.check(world, LivenessProperty("node2", node2_received))
    if not result.reachable:
        assert result.truncated
        assert not result.violated


def test_deeper_progress_needs_depth(token_factory):
    # Reaching node 2 requires a forward hop: depth 1 cannot, depth 3 can.
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    shallow = BoundedLivenessChecker(Explorer(token_factory), max_depth=1)
    deep = BoundedLivenessChecker(Explorer(token_factory), max_depth=3)
    prop = LivenessProperty("node2", node2_received)
    assert not shallow.check(world, prop).reachable
    assert deep.check(world, prop).reachable


def test_check_all_runs_each_property(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    checker = BoundedLivenessChecker(Explorer(token_factory), max_depth=3)
    results = checker.check_all(world, [
        LivenessProperty("delivered", delivered_somewhere),
        LivenessProperty("node2", node2_received),
    ])
    assert [r.property_name for r in results] == ["delivered", "node2"]
