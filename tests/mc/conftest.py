"""A tiny token-passing protocol for exercising the model checker."""

from dataclasses import dataclass
from typing import List

import pytest

from repro.statemachine import Message, Service, msg_handler, timer_handler


@dataclass
class Token(Message):
    """A counter token passed between nodes."""

    value: int


class TokenService(Service):
    """Accumulates tokens; forwards until a cap, choosing the target."""

    state_fields = ("total", "forwards")

    def __init__(self, node_id: int, n: int = 3, cap: int = 2) -> None:
        super().__init__(node_id)
        self.n = n
        self.cap = cap
        self.total = 0
        self.forwards = 0

    def on_init(self) -> None:
        self.set_timer("kick", 1.0)

    @timer_handler("kick")
    def on_kick(self, payload) -> None:
        peers = [p for p in range(self.n) if p != self.node_id]
        target = self.choose("kick-target", peers)
        self.send(target, Token(value=1))

    @msg_handler(Token)
    def on_token(self, src: int, msg: Token) -> None:
        self.total += msg.value
        if self.forwards < self.cap:
            self.forwards += 1
            peers = [p for p in range(self.n) if p != self.node_id]
            target = self.choose("fwd-target", peers)
            self.send(target, Token(value=msg.value))


@pytest.fixture
def token_factory():
    return lambda node_id: TokenService(node_id, n=3)
