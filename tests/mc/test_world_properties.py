"""Property-based WorldState invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.mc import InFlightMessage, PendingTimer, WorldState

from .conftest import Token


def messages_strategy():
    return st.lists(
        st.builds(
            InFlightMessage,
            src=st.integers(0, 3),
            dst=st.integers(0, 3),
            msg=st.builds(Token, value=st.integers(0, 5)),
        ),
        max_size=6,
    )


def states_strategy():
    return st.dictionaries(
        st.integers(0, 3),
        st.fixed_dictionaries({"total": st.integers(0, 9), "forwards": st.integers(0, 3)}),
        min_size=1,
        max_size=4,
    )


@given(states=states_strategy(), inflight=messages_strategy())
@settings(max_examples=50, deadline=None)
def test_digest_invariant_under_inflight_permutation(states, inflight):
    a = WorldState(node_states=states, inflight=inflight)
    b = WorldState(node_states=states, inflight=list(reversed(inflight)))
    assert a.digest() == b.digest()


@given(states=states_strategy(), inflight=messages_strategy())
@settings(max_examples=50, deadline=None)
def test_remove_then_readd_roundtrips_digest(states, inflight):
    world = WorldState(node_states=states, inflight=inflight)
    if not inflight:
        return
    victim = inflight[0]
    removed = world.evolve(remove_inflight=victim)
    restored = removed.evolve(add_inflight=[victim])
    assert restored.digest() == world.digest()


@given(states=states_strategy())
@settings(max_examples=50, deadline=None)
def test_evolve_never_mutates_original(states):
    world = WorldState(node_states=states)
    original_digest = world.digest()
    node_id = world.node_ids[0]
    world.evolve(node_id=node_id, new_state={"total": 999, "forwards": 0})
    world.evolve(add_timers=[PendingTimer(node_id, "t", None, 1.0)])
    world.with_down({node_id})
    assert world.digest() == original_digest


@given(states=states_strategy(), down=st.sets(st.integers(0, 3), max_size=4))
@settings(max_examples=50, deadline=None)
def test_live_nodes_partition(states, down):
    world = WorldState(node_states=states, down=down)
    live = set(world.live_nodes())
    assert live.isdisjoint(down)
    assert live | (down & set(world.node_ids)) == set(world.node_ids)
