"""Random-walk simulation over worlds."""

from repro.mc import Explorer, InFlightMessage, RandomWalkSimulator, WorldState

from .conftest import Token


def world_with(factory, inflight=(), n=3):
    states = {i: factory(i).checkpoint() for i in range(n)}
    return WorldState(node_states=states, inflight=inflight)


def total_sum(world):
    return sum(world.state_of(n)["total"] for n in world.node_ids)


def test_walk_terminates_at_dead_end(token_factory):
    world = world_with(token_factory)  # nothing enabled
    sim = RandomWalkSimulator(Explorer(token_factory), seed=1)
    walk = sim.walk(world, max_steps=10)
    assert walk.steps == 0
    assert walk.ended_early


def test_walk_respects_step_bound(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    sim = RandomWalkSimulator(Explorer(token_factory), seed=1)
    walk = sim.walk(world, max_steps=2)
    assert walk.steps <= 2


def test_walk_makes_progress(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    sim = RandomWalkSimulator(Explorer(token_factory), seed=1)
    walk = sim.walk(world, max_steps=8)
    assert total_sum(walk.final_world) >= 1


def test_sampling_is_deterministic_per_seed(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    explorer = Explorer(token_factory)
    a = RandomWalkSimulator(explorer, seed=5).sample(world, walks=8, max_steps=5,
                                                     metric=total_sum)
    b = RandomWalkSimulator(explorer, seed=5).sample(world, walks=8, max_steps=5,
                                                     metric=total_sum)
    assert a.metric_samples == b.metric_samples


def test_sample_report_statistics(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    sim = RandomWalkSimulator(Explorer(token_factory), seed=2)
    report = sim.sample(world, walks=16, max_steps=6, metric=total_sum)
    assert len(report.walks) == 16
    assert len(report.metric_samples) == 16
    assert report.mean_metric >= 1.0
    assert report.mean_final_time > 0.0


def test_empty_report_statistics():
    from repro.mc.randomwalk import SampleReport

    report = SampleReport()
    assert report.mean_metric is None
    assert report.mean_final_time is None


def test_walks_explore_different_futures(token_factory):
    # Inner choices branch; random walks should not all agree.
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    sim = RandomWalkSimulator(Explorer(token_factory), seed=3)
    report = sim.sample(world, walks=16, max_steps=6)
    digests = {walk.final_world.digest() for walk in report.walks}
    assert len(digests) > 1
