"""WorldState construction, evolution, and hashing."""

import pytest

from repro.mc import InFlightMessage, PendingTimer, WorldState

from .conftest import Token


def make_world(**kwargs):
    defaults = dict(
        node_states={0: {"total": 0}, 1: {"total": 1}},
        inflight=[InFlightMessage(0, 1, Token(value=1))],
        timers=[PendingTimer(0, "kick", None, 1.0)],
    )
    defaults.update(kwargs)
    return WorldState(**defaults)


def test_node_ids_sorted():
    world = make_world(node_states={2: {}, 0: {}, 1: {}})
    assert world.node_ids == [0, 1, 2]


def test_live_nodes_excludes_down():
    world = make_world(down={1})
    assert world.live_nodes() == [0]
    assert not world.is_up(1)


def test_digest_stable_and_state_sensitive():
    assert make_world().digest() == make_world().digest()
    changed = make_world(node_states={0: {"total": 9}, 1: {"total": 1}})
    assert changed.digest() != make_world().digest()


def test_digest_ignores_time_and_depth():
    a = make_world()
    b = make_world()
    b.time = 99.0
    b.depth = 5
    assert a.digest() == b.digest()


def test_digest_inflight_order_insensitive():
    m1 = InFlightMessage(0, 1, Token(value=1))
    m2 = InFlightMessage(1, 0, Token(value=2))
    a = make_world(inflight=[m1, m2])
    b = make_world(inflight=[m2, m1])
    assert a.digest() == b.digest()


def test_evolve_replaces_node_state():
    world = make_world()
    successor = world.evolve(node_id=0, new_state={"total": 5})
    assert successor.state_of(0) == {"total": 5}
    assert world.state_of(0) == {"total": 0}  # original untouched


def test_evolve_removes_one_inflight_instance():
    message = InFlightMessage(0, 1, Token(value=1))
    world = make_world(inflight=[message, message])
    successor = world.evolve(remove_inflight=message)
    assert len(successor.inflight) == 1


def test_evolve_missing_inflight_raises():
    world = make_world(inflight=[])
    with pytest.raises(ValueError):
        world.evolve(remove_inflight=InFlightMessage(5, 6, Token(value=9)))


def test_evolve_rearm_timer_supersedes():
    world = make_world()
    successor = world.evolve(add_timers=[PendingTimer(0, "kick", "new", 2.0)])
    kicks = [t for t in successor.timers if t.name == "kick"]
    assert len(kicks) == 1
    assert kicks[0].payload == "new"


def test_evolve_increments_depth_and_time():
    world = make_world()
    successor = world.evolve(time_delta=0.5)
    assert successor.depth == world.depth + 1
    assert successor.time == pytest.approx(world.time + 0.5)


def test_with_down_changes_only_down_set():
    world = make_world()
    successor = world.with_down({0})
    assert successor.down == {0}
    assert successor.node_states == world.node_states


def test_copy_states_false_shares_dicts():
    states = {0: {"total": 0}}
    world = WorldState(node_states=states, copy_states=False)
    assert world.node_states[0] is states[0]


def test_copy_states_true_isolates():
    states = {0: {"total": [1]}}
    world = WorldState(node_states=states)
    states[0]["total"].append(2)
    assert world.state_of(0) == {"total": [1]}
