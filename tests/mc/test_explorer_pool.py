"""Service pooling: identical exploration results, far fewer factories.

The pool must be behaviorally invisible — ``restore()`` deep-copies, so
a pooled instance never aliases world state — while running the service
factory once per node instead of once per materialization.
"""

import pytest

from repro.mc import (
    Explorer,
    InFlightMessage,
    PendingTimer,
    ServicePool,
    WorldState,
    world_from_services,
)
from repro.mc.properties import all_nodes

from .conftest import Token, TokenService


def _world(factory, n=3):
    services = [factory(nid) for nid in range(n)]
    world = world_from_services(services)
    world.inflight.extend(
        [
            InFlightMessage(0, 1, Token(value=1)),
            InFlightMessage(2, 1, Token(value=2)),
            InFlightMessage(1, 2, Token(value=3)),
        ]
    )
    world.timers.append(PendingTimer(0, "kick", None, 1.0))
    return world


def _result_signature(result):
    return (
        result.states_explored,
        result.transitions,
        result.max_depth,
        result.truncated,
        sorted((v.property_name, tuple(a.key() for a in v.path)) for v in result.violations),
    )


def test_pooled_bfs_matches_unpooled(token_factory):
    world = _world(token_factory)
    properties = [all_nodes(lambda nid, s: s.get("total", 0) <= 2, "total-cap")]
    pooled = Explorer(token_factory, properties=properties, service_pooling=True)
    unpooled = Explorer(token_factory, properties=properties, service_pooling=False)
    a = pooled.bfs(world, max_depth=3, max_states=500)
    b = unpooled.bfs(world, max_depth=3, max_states=500)
    assert _result_signature(a) == _result_signature(b)
    assert pooled.pool is not None and unpooled.pool is None
    # One factory call per distinct node, however many states were visited.
    assert pooled.pool.factory_calls <= len(world.node_states)
    assert pooled.pool.restores + pooled.pool.restores_skipped > pooled.pool.factory_calls


def test_pool_reuses_instances_across_acquires(token_factory):
    pool = ServicePool(token_factory)
    world = _world(token_factory)
    first = pool.acquire(world, 1)
    second = pool.acquire(world, 1)
    assert first is second
    assert pool.factory_calls == 1


def test_pooled_service_never_aliases_world_state(token_factory):
    pool = ServicePool(token_factory)
    world = _world(token_factory)
    service = pool.acquire(world, 0)
    service.total = 999  # mutate the pooled instance
    assert world.state_of(0)["total"] != 999
    # Re-acquiring restores from the (unchanged) world checkpoint.
    service = pool.acquire(world, 0)
    assert service.total == world.state_of(0)["total"]


def test_readonly_acquire_skips_redundant_restores(token_factory):
    pool = ServicePool(token_factory)
    world = _world(token_factory)
    pool.acquire(world, 0, readonly=True)
    pool.acquire(world, 0, readonly=True)
    assert pool.restores == 1
    assert pool.restores_skipped == 1
    # A non-readonly acquire hands out a mutable instance: the next
    # acquire must restore again.
    pool.acquire(world, 0)
    pool.acquire(world, 0)
    assert pool.restores == 2


def test_enabled_actions_materializes_each_destination_once(token_factory):
    explorer = Explorer(token_factory, service_pooling=True)
    world = _world(token_factory)  # two messages to node 1, one to node 2
    explorer.enabled_actions(world)
    acquires = explorer.pool.restores + explorer.pool.restores_skipped
    assert acquires == 2  # destinations 1 and 2, not one per message


def test_spawn_gets_its_own_pool(token_factory):
    explorer = Explorer(token_factory, service_pooling=True)
    clone = explorer.spawn()
    assert clone.pool is not None
    assert clone.pool is not explorer.pool
    assert Explorer(token_factory, service_pooling=False).spawn().pool is None


def test_enabled_actions_frontier_filter_is_a_strict_subset(token_factory):
    explorer = Explorer(token_factory)
    world = _world(token_factory)
    everything = explorer.enabled_actions(world)
    target = world.inflight[0].key()
    filtered = explorer.enabled_actions(world, only_event_keys={target})
    assert filtered  # the targeted message yields its deliver actions
    filtered_keys = {a.key() for a in filtered}
    assert filtered_keys <= {a.key() for a in everything}
    for action in filtered:
        assert (action.src, action.dst, action.key()[3]) == target
    timer_key = world.timers[0].key()
    timer_only = explorer.enabled_actions(world, only_event_keys={timer_key})
    assert [a.key()[0] for a in timer_only] == ["timer"]


@pytest.mark.parametrize("pooling", [True, False])
def test_materialize_reflects_world_state(token_factory, pooling):
    explorer = Explorer(token_factory, service_pooling=pooling)
    world = _world(token_factory)
    evolved = world.evolve(node_id=1, new_state={"total": 7, "forwards": 1})
    assert explorer.materialize(world, 1).total == world.state_of(1)["total"]
    assert explorer.materialize(evolved, 1).total == 7


def test_pooled_service_is_instance_of_factory_type(token_factory):
    pool = ServicePool(token_factory)
    world = _world(token_factory)
    assert isinstance(pool.acquire(world, 2), TokenService)
