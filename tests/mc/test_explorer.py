"""Explorer: enabled actions, successors, choice branching, BFS."""

import pytest

from repro.mc import (
    DeliverAction,
    DropAction,
    Explorer,
    InFlightMessage,
    PendingTimer,
    SafetyProperty,
    TimerAction,
    WorldState,
)
from repro.model import GenericNode, NetworkModel

from .conftest import Token, TokenService


def world_with(factory, inflight=(), timers=(), down=(), n=3):
    states = {i: factory(i).checkpoint() for i in range(n)}
    return WorldState(node_states=states, inflight=inflight, timers=timers, down=down)


def test_enabled_deliveries_per_handler(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    explorer = Explorer(token_factory)
    actions = explorer.enabled_actions(world)
    deliveries = [a for a in actions if isinstance(a, DeliverAction)]
    assert len(deliveries) == 1
    assert deliveries[0].handler == "on_token"


def test_duplicate_inflight_explored_once(token_factory):
    message = InFlightMessage(0, 1, Token(value=1))
    world = world_with(token_factory, inflight=[message, message])
    actions = Explorer(token_factory).enabled_actions(world)
    assert len([a for a in actions if isinstance(a, DeliverAction)]) == 1


def test_down_node_not_delivered(token_factory):
    world = world_with(
        token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))], down={1},
    )
    assert Explorer(token_factory).enabled_actions(world) == []


def test_timer_actions_enabled(token_factory):
    world = world_with(token_factory, timers=[PendingTimer(2, "kick", None, 1.0)])
    actions = Explorer(token_factory).enabled_actions(world)
    assert actions == [TimerAction(node=2, name="kick", payload=None)]


def test_drops_included_when_enabled(token_factory):
    world = world_with(token_factory, inflight=[InFlightMessage(0, 1, Token(value=1))])
    explorer = Explorer(token_factory, include_drops=True)
    actions = explorer.enabled_actions(world)
    assert any(isinstance(a, DropAction) for a in actions)


def test_generic_node_injections(token_factory):
    generic = GenericNode()
    generic.add_template(lambda target: Token(value=7))
    explorer = Explorer(token_factory, generic_node=generic)
    world = world_with(token_factory)
    actions = explorer.enabled_actions(world)
    assert len(actions) == 3  # one injection per live node


def test_successor_applies_handler_effects(token_factory):
    message = InFlightMessage(0, 1, Token(value=1))
    world = world_with(token_factory, inflight=[message])
    explorer = Explorer(token_factory)
    action = explorer.enabled_actions(world)[0]
    successors = explorer.successors(world, action)
    # The handler contains a 2-candidate choice of forward target.
    assert len(successors) == 2
    for successor in successors:
        assert successor.state_of(1)["total"] == 1
        assert len(successor.inflight) == 1  # forwarded token
    targets = {successor.inflight[0].dst for successor in successors}
    assert targets == {0, 2}


def test_drop_successor_removes_message(token_factory):
    message = InFlightMessage(0, 1, Token(value=1))
    world = world_with(token_factory, inflight=[message])
    explorer = Explorer(token_factory, include_drops=True)
    drop = [a for a in explorer.enabled_actions(world) if isinstance(a, DropAction)][0]
    successor, = explorer.successors(world, drop)
    assert successor.inflight == []
    assert successor.state_of(1)["total"] == 0


def test_timer_successor_consumes_timer(token_factory):
    world = world_with(token_factory, timers=[PendingTimer(0, "kick", None, 1.0)])
    explorer = Explorer(token_factory)
    action = explorer.enabled_actions(world)[0]
    successors = explorer.successors(world, action)
    for successor in successors:
        assert successor.timers == []
        assert len(successor.inflight) == 1


def test_network_model_weights_time(token_factory):
    model = NetworkModel(default_latency=0.0)
    model.observe_latency(0, 1, 2.5, now=0.0)
    model.observe_bandwidth(0, 1, 1e12, now=0.0)
    explorer = Explorer(token_factory, network_model=model)
    message = InFlightMessage(0, 1, Token(value=1))
    world = world_with(token_factory, inflight=[message])
    action = explorer.enabled_actions(world)[0]
    successor = explorer.successors(world, action)[0]
    assert successor.time == pytest.approx(2.5, abs=0.01)


def test_bfs_finds_violation(token_factory):
    # Violated once any node's total reaches 1.
    prop = SafetyProperty(
        "never-receives",
        lambda w: all(w.state_of(n)["total"] == 0 for n in w.node_ids),
    )
    explorer = Explorer(token_factory, properties=[prop])
    message = InFlightMessage(0, 1, Token(value=1))
    world = world_with(token_factory, inflight=[message])
    result = explorer.bfs(world, max_depth=2, max_states=100)
    assert result.found_violation
    violation = result.violations[0]
    assert violation.property_name == "never-receives"
    assert isinstance(violation.initial_action, DeliverAction)


def test_bfs_dedups_states():
    # Two commuting deliveries (no forwarding): A-then-B and B-then-A
    # reach the same final world, which must be visited once.
    factory = lambda nid: TokenService(nid, n=3, cap=0)
    world = world_with(
        factory,
        inflight=[InFlightMessage(0, 1, Token(value=1)),
                  InFlightMessage(0, 2, Token(value=1))],
    )
    explorer = Explorer(factory)
    result = explorer.bfs(world, max_depth=3, max_states=5000)
    # Diamond: root + 2 intermediates + 1 shared final = 4 states,
    # but 4 transitions (the final state is reached twice).
    assert result.states_explored == 4
    assert result.transitions == 4


def test_bfs_respects_state_budget(token_factory):
    world = world_with(
        token_factory,
        timers=[PendingTimer(i, "kick", None, 1.0) for i in range(3)],
    )
    explorer = Explorer(token_factory)
    result = explorer.bfs(world, max_depth=6, max_states=10)
    assert result.truncated
    assert result.states_explored <= 10


def test_bfs_checks_root_state(token_factory):
    prop = SafetyProperty("never", lambda w: False)
    explorer = Explorer(token_factory, properties=[prop])
    world = world_with(token_factory)
    result = explorer.bfs(world, max_depth=1, max_states=10)
    assert result.violations[0].path == ()
