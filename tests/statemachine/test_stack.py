"""Layered service stacks: routing, namespacing, checkpoints, MC compat."""

from dataclasses import dataclass

import pytest

from repro.mc import Explorer, InFlightMessage, WorldState
from repro.statemachine import (
    Cluster,
    LayerEnvelope,
    Message,
    Service,
    ServiceStack,
    make_stack_factory,
    msg_handler,
    timer_handler,
)


@dataclass
class Hello(Message):
    text: str


@dataclass
class Count(Message):
    n: int


class MembershipLayer(Service):
    """Lower layer: announces itself, tracks who it heard from."""

    state_fields = ("peers_seen",)

    def __init__(self, node_id, n=2):
        super().__init__(node_id)
        self.n = n
        self.peers_seen = []

    def on_init(self):
        for peer in range(self.n):
            if peer != self.node_id:
                self.send(peer, Hello(text=f"hi from {self.node_id}"))

    @msg_handler(Hello)
    def on_hello(self, src, msg):
        if src not in self.peers_seen:
            self.peers_seen.append(src)


class CounterLayer(Service):
    """Upper layer: periodic counting using the membership layer's view."""

    state_fields = ("count", "targets")

    def __init__(self, node_id):
        super().__init__(node_id)
        self.count = 0
        self.targets = []

    def on_init(self):
        self.set_timer("tick", 1.0)

    @timer_handler("tick")
    def on_tick(self, payload):
        self.count += 1
        # Downcall to the sibling layer through the stack.
        membership = self.stack.layer("member")
        self.targets = list(membership.peers_seen)
        for peer in self.targets:
            self.send(peer, Count(n=self.count))
        self.set_timer("tick", 1.0)

    @msg_handler(Count)
    def on_count(self, src, msg):
        self.count = max(self.count, msg.n)


def stack_factory(n=2):
    return make_stack_factory([
        ("member", lambda nid: MembershipLayer(nid, n)),
        ("counter", lambda nid: CounterLayer(nid)),
    ])


def test_layers_route_independently():
    cluster = Cluster(2, stack_factory(), seed=1)
    cluster.start_all()
    cluster.run(until=3.5)
    for node_id in range(2):
        stack = cluster.service(node_id)
        assert stack.layer("member").peers_seen == [1 - node_id]
        assert stack.layer("counter").count >= 3


def test_cross_layer_downcall():
    cluster = Cluster(2, stack_factory(), seed=1)
    cluster.start_all()
    cluster.run(until=2.5)
    assert cluster.service(0).layer("counter").targets == [1]


def test_checkpoint_aggregates_layers():
    cluster = Cluster(2, stack_factory(), seed=1)
    cluster.start_all()
    cluster.run(until=2.5)
    stack = cluster.service(0)
    checkpoint = stack.checkpoint()
    assert set(checkpoint) == {"member", "counter"}
    assert checkpoint["counter"]["count"] == stack.layer("counter").count


def test_restore_roundtrip():
    cluster = Cluster(2, stack_factory(), seed=1)
    cluster.start_all()
    cluster.run(until=2.5)
    stack = cluster.service(0)
    saved = stack.checkpoint()
    digest = stack.state_digest()
    cluster.run(until=6.5)
    assert stack.state_digest() != digest
    stack.restore(saved)
    assert stack.state_digest() == digest


def test_unknown_layer_traced_not_crashing():
    cluster = Cluster(2, stack_factory(), seed=1)
    cluster.start_all()
    cluster.network.send(0, 1, LayerEnvelope(layer="ghost", inner=Hello(text="?")))
    cluster.run(until=1.0)
    assert cluster.sim.trace.count("stack.unknown_layer") == 1


def test_duplicate_layer_rejected():
    with pytest.raises(ValueError):
        ServiceStack(0, [("a", CounterLayer(0)), ("a", CounterLayer(0))])


def test_layer_name_separator_rejected():
    with pytest.raises(ValueError):
        ServiceStack(0, [("a:b", CounterLayer(0))])


def test_stack_explorable_by_model_checker():
    factory = stack_factory()
    services = [factory(i) for i in range(2)]
    world = WorldState(
        node_states={i: services[i].checkpoint() for i in range(2)},
        inflight=[
            InFlightMessage(0, 1, LayerEnvelope(layer="member",
                                                inner=Hello(text="hi from 0"))),
        ],
        timers=[],
    )
    explorer = Explorer(factory)
    actions = explorer.enabled_actions(world)
    assert len(actions) == 1
    successor, = explorer.successors(world, actions[0])
    assert successor.state_of(1)["member"]["peers_seen"] == [0]


def test_stack_timers_namespaced():
    cluster = Cluster(2, stack_factory(), seed=1)
    cluster.start_all()
    cluster.run(until=0.5)
    names = [name for name, _, _ in cluster.node(0).pending_timers()]
    assert "counter:tick" in names
