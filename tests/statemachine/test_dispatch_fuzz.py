"""Property-based dispatch fuzzing.

Random message sequences against a stateful service must never corrupt
dispatch invariants: checkpoints taken at any point restore exactly,
digests are consistent, and handler effects are deterministic given the
same sequence.
"""

from dataclasses import dataclass
from typing import List

from hypothesis import given, settings, strategies as st

from repro.statemachine import Message, SandboxContext, Service, msg_handler


@dataclass
class Push(Message):
    value: int


@dataclass
class Pop(Message):
    pass


@dataclass
class Clear(Message):
    pass


class StackService(Service):
    """A stack machine driven by messages."""

    state_fields = ("items", "ops")

    def __init__(self, node_id=0):
        super().__init__(node_id)
        self.items: List[int] = []
        self.ops = 0

    @msg_handler(Push)
    def on_push(self, src, msg):
        self.items.append(msg.value)
        self.ops += 1

    @msg_handler(Pop)
    def on_pop(self, src, msg):
        if self.items:
            self.items.pop()
        self.ops += 1

    @msg_handler(Clear)
    def on_clear(self, src, msg):
        self.items = []
        self.ops += 1


messages = st.lists(
    st.one_of(
        st.builds(Push, value=st.integers(-5, 5)),
        st.builds(Pop),
        st.builds(Clear),
    ),
    max_size=30,
)


def fresh_service():
    service = StackService()
    service.ctx = SandboxContext(0)
    return service


@given(sequence=messages)
@settings(max_examples=60, deadline=None)
def test_dispatch_counts_every_message(sequence):
    service = fresh_service()
    for msg in sequence:
        assert service.deliver(1, msg) is True
    assert service.ops == len(sequence)


@given(sequence=messages, cut=st.integers(0, 30))
@settings(max_examples=60, deadline=None)
def test_checkpoint_restore_midstream(sequence, cut):
    cut = min(cut, len(sequence))
    service = fresh_service()
    for msg in sequence[:cut]:
        service.deliver(1, msg)
    saved = service.checkpoint()
    saved_digest = service.state_digest()
    for msg in sequence[cut:]:
        service.deliver(1, msg)
    service.restore(saved)
    assert service.state_digest() == saved_digest
    # Replaying the tail from the restored state matches a fresh run.
    for msg in sequence[cut:]:
        service.deliver(1, msg)
    reference = fresh_service()
    for msg in sequence:
        reference.deliver(1, msg)
    assert service.state_digest() == reference.state_digest()


@given(sequence=messages)
@settings(max_examples=40, deadline=None)
def test_dispatch_deterministic(sequence):
    a = fresh_service()
    b = fresh_service()
    for msg in sequence:
        a.deliver(1, msg)
        b.deliver(1, msg)
    assert a.state_digest() == b.state_digest()
