"""Message base class: types, sizes, freezing."""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.statemachine import Message


@dataclass
class Small(Message):
    a: int


@dataclass
class Stringy(Message):
    text: str


@dataclass
class Bulky(Message):
    items: List[int] = field(default_factory=list)
    table: Dict[str, int] = field(default_factory=dict)


def test_msg_type_is_class_name():
    assert Small.msg_type() == "Small"
    assert Small(a=1).msg_type() == "Small"


def test_wire_size_has_header():
    assert Small(a=1).wire_size() >= 64


def test_wire_size_grows_with_strings():
    assert Stringy(text="x" * 1000).wire_size() > Stringy(text="x").wire_size() + 900


def test_wire_size_grows_with_collections():
    small = Bulky(items=[1], table={})
    big = Bulky(items=list(range(100)), table={str(i): i for i in range(50)})
    assert big.wire_size() > small.wire_size()


def test_frozen_is_hashable_and_stable():
    a = Bulky(items=[1, 2], table={"k": 1})
    b = Bulky(items=[1, 2], table={"k": 1})
    assert a.frozen() == b.frozen()
    hash(a.frozen())


def test_frozen_distinguishes_content():
    assert Small(a=1).frozen() != Small(a=2).frozen()


def test_frozen_distinguishes_types():
    @dataclass
    class Other(Message):
        a: int

    assert Small(a=1).frozen() != Other(a=1).frozen()
