"""Service dispatch, checkpointing, and the choose API."""

from dataclasses import dataclass

import pytest

from repro.choice import ChoiceError
from repro.statemachine import (
    DispatchError,
    Message,
    SandboxContext,
    Service,
    msg_handler,
)


@dataclass
class Item(Message):
    value: int


class Chooser(Service):
    state_fields = ("picks", "count")

    def __init__(self, node_id=0):
        super().__init__(node_id)
        self.picks = []
        self.count = 0

    @msg_handler(Item)
    def on_item(self, src, msg):
        self.count += 1
        pick = self.choose("pick", [10, 20, 30])
        self.picks.append(pick)


def sandboxed(service, script=None):
    service.ctx = SandboxContext(service.node_id, choice_script=script or [])
    return service


def test_deliver_returns_false_when_unhandled():
    service = sandboxed(Chooser())
    assert service.deliver(1, object()) is False


def test_deliver_invokes_handler():
    service = sandboxed(Chooser(), script=[20])
    assert service.deliver(1, Item(value=1)) is True
    assert service.count == 1
    assert service.picks == [20]


def test_choose_empty_candidates_raises():
    service = sandboxed(Chooser())
    with pytest.raises(ChoiceError):
        service.choose("x", [])


def test_choose_single_candidate_shortcuts():
    # No context interaction needed for a single candidate.
    service = Chooser()
    service.ctx = None
    assert service.choose("x", ["only"]) == "only"


def test_checkpoint_restore_roundtrip():
    service = sandboxed(Chooser(), script=[10, 20])
    service.deliver(1, Item(value=1))
    saved = service.checkpoint()
    service.deliver(1, Item(value=2))
    assert service.count == 2
    service.restore(saved)
    assert service.count == 1
    assert service.picks == [10]


def test_checkpoint_is_independent_copy():
    service = sandboxed(Chooser(), script=[10])
    service.deliver(1, Item(value=1))
    saved = service.checkpoint()
    saved["picks"].append(999)
    assert service.picks == [10]


def test_state_digest_changes_with_state():
    service = sandboxed(Chooser(), script=[10, 10])
    before = service.state_digest()
    service.deliver(1, Item(value=1))
    assert service.state_digest() != before


def test_state_digest_stable_for_equal_state():
    a = sandboxed(Chooser())
    b = sandboxed(Chooser())
    assert a.state_digest() == b.state_digest()


def test_unknown_timer_raises():
    service = sandboxed(Chooser())
    with pytest.raises(DispatchError):
        service.fire_timer("nope")


def test_deliver_needs_second_script_entry():
    service = sandboxed(Chooser(), script=[10])
    service.deliver(1, Item(value=1))
    from repro.statemachine import ChoiceRequested

    with pytest.raises(ChoiceRequested):
        service.deliver(1, Item(value=2))
