"""Checkpoint serialization, freezing, and digests."""

from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.statemachine import (
    Message,
    SerializationError,
    digest,
    freeze,
    snapshot_value,
)
from repro.statemachine.serialization import checkpoint_state, restore_state


@dataclass
class Wire(Message):
    a: int
    b: list


# Plain-data strategy: scalars and containers thereof.
scalars = st.none() | st.booleans() | st.integers() | st.text(max_size=8)
plain = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=4), children, max_size=4)
        | st.frozensets(st.integers(), max_size=4)
    ),
    max_leaves=12,
)


@given(plain)
def test_snapshot_is_equal_but_distinct(value):
    copy = snapshot_value(value)
    assert copy == value
    if isinstance(value, (list, dict, set)):
        assert copy is not value


@given(plain)
def test_freeze_is_hashable_and_stable(value):
    frozen = freeze(value)
    hash(frozen)
    assert frozen == freeze(value)


@given(plain)
def test_digest_stable_across_copies(value):
    assert digest(value) == digest(snapshot_value(value))


def test_freeze_distinguishes_list_and_tuple():
    assert freeze([1, 2]) != freeze((1, 2))


def test_freeze_dict_order_independent():
    assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})


def test_freeze_set_order_independent():
    assert freeze({3, 1, 2}) == freeze({2, 3, 1})


def test_nested_mutation_does_not_leak():
    original = {"deep": [1, [2, 3]]}
    copy = snapshot_value(original)
    copy["deep"][1].append(4)
    assert original["deep"][1] == [2, 3]


def test_dataclass_snapshot_reconstructs():
    message = Wire(a=1, b=[1, 2])
    copy = snapshot_value(message)
    assert copy == message
    copy.b.append(3)
    assert message.b == [1, 2]


def test_dataclass_freeze_includes_class_name():
    assert "Wire" in repr(freeze(Wire(a=1, b=[])))


def test_non_plain_value_rejected():
    with pytest.raises(SerializationError):
        snapshot_value(object())
    with pytest.raises(SerializationError):
        freeze(lambda: None)


def test_checkpoint_and_restore_roundtrip():
    class Holder:
        pass

    holder = Holder()
    holder.x = [1, 2]
    holder.y = {"k": 3}
    checkpoint = checkpoint_state(holder, ("x", "y"))
    holder.x.append(99)
    holder.y["k"] = 0
    restore_state(holder, checkpoint)
    assert holder.x == [1, 2]
    assert holder.y == {"k": 3}


def test_digest_differs_for_different_values():
    assert digest({"a": 1}) != digest({"a": 2})
