"""Handler registration: decorators, guards, inheritance, NFA mode."""

from dataclasses import dataclass

from repro.statemachine import Message, Service, msg_handler, timer_handler


@dataclass
class A(Message):
    n: int


@dataclass
class B(Message):
    n: int


class Base(Service):
    state_fields = ("seen",)

    def __init__(self, node_id=0):
        super().__init__(node_id)
        self.seen = []

    @msg_handler(A)
    def base_a(self, src, msg):
        self.seen.append("base_a")

    @timer_handler("t")
    def base_t(self, payload):
        self.seen.append("base_t")


class Derived(Base):
    @msg_handler(B)
    def derived_b(self, src, msg):
        self.seen.append("derived_b")

    @timer_handler("t")
    def derived_t(self, payload):
        self.seen.append("derived_t")


class MultiHandler(Service):
    state_fields = ("seen",)

    def __init__(self, node_id=0):
        super().__init__(node_id)
        self.seen = []

    @msg_handler(A, guard=lambda svc, src, msg: msg.n > 0)
    def positive(self, src, msg):
        self.seen.append("positive")

    @msg_handler(A, guard=lambda svc, src, msg: msg.n <= 0)
    def non_positive(self, src, msg):
        self.seen.append("non_positive")

    @msg_handler(A)
    def always(self, src, msg):
        self.seen.append("always")


def test_base_handlers_collected():
    service = Base()
    assert [s.name for s in service.applicable_handlers(0, A(n=1))] == ["base_a"]


def test_derived_inherits_message_handlers():
    service = Derived()
    assert [s.name for s in service.applicable_handlers(0, A(n=1))] == ["base_a"]
    assert [s.name for s in service.applicable_handlers(0, B(n=1))] == ["derived_b"]


def test_derived_timer_overrides_base():
    service = Derived()
    service.fire_timer("t")
    assert service.seen == ["derived_t"]


def test_guards_filter_applicable_handlers():
    service = MultiHandler()
    names = [s.name for s in service.applicable_handlers(0, A(n=5))]
    assert names == ["positive", "always"]
    names = [s.name for s in service.applicable_handlers(0, A(n=-1))]
    assert names == ["non_positive", "always"]


def test_one_method_can_handle_multiple_types():
    class Both(Service):
        state_fields = ("seen",)

        def __init__(self, node_id=0):
            super().__init__(node_id)
            self.seen = []

        @msg_handler(A)
        @msg_handler(B)
        def either(self, src, msg):
            self.seen.append(type(msg).__name__)

    service = Both()
    assert len(service.applicable_handlers(0, A(n=1))) == 1
    assert len(service.applicable_handlers(0, B(n=1))) == 1


def test_timer_names_listed():
    assert set(Derived().timer_names()) == {"t"}
