"""Node host: timers, interposers, crash/restart, dispatch capture."""

from dataclasses import dataclass

from repro.statemachine import (
    Cluster,
    InboundInterposer,
    Message,
    OutboundInterposer,
    Service,
    msg_handler,
    timer_handler,
)

from ..conftest import EchoService, Ping, TickService


def test_echo_roundtrips(echo_cluster):
    echo_cluster.start_all()
    echo_cluster.run(until=10)
    total = sum(s.received for s in echo_cluster.services)
    assert total == 6  # max_hops pings delivered in total


def test_timer_rearm_supersedes(tick_cluster):
    tick_cluster.start_all()
    tick_cluster.run(until=5.5)
    assert all(s.ticks == 5 for s in tick_cluster.services)


def test_cancel_timer_stops_firing():
    cluster = Cluster(1, lambda nid: TickService(nid), seed=1)
    cluster.start_all()
    cluster.run(until=2.5)
    cluster.node(0).cancel_timer("tick")
    cluster.run(until=10)
    assert cluster.service(0).ticks == 2


def test_set_timer_replaces_pending():
    cluster = Cluster(1, lambda nid: TickService(nid, period=5.0), seed=1)
    cluster.start_all()
    # Re-arm at 1s with a shorter deadline; old 5s deadline must not fire.
    cluster.run(until=1.0)
    cluster.node(0).set_timer("tick", 0.5)
    cluster.run(until=2.0)
    assert cluster.service(0).ticks == 1
    assert cluster.node(0).pending_timers()[0][0] == "tick"


def test_crash_silences_timers_and_delivery():
    cluster = Cluster(2, lambda nid: TickService(nid), seed=1)
    cluster.start_all()
    cluster.run(until=2.5)
    cluster.node(0).crash()
    cluster.run(until=10)
    assert cluster.service(0).ticks == 2
    assert cluster.service(1).ticks == 10


def test_restart_resets_state_and_reinits():
    cluster = Cluster(1, lambda nid: TickService(nid), seed=1)
    cluster.start_all()
    cluster.run(until=3.5)
    cluster.node(0).crash()
    cluster.run(until=5.0)
    cluster.node(0).restart(fresh_state=True)
    cluster.run(until=7.0)
    # Fresh state: counter restarted from zero at t=5.
    assert cluster.service(0).ticks == 2


def test_restart_can_keep_state():
    cluster = Cluster(1, lambda nid: TickService(nid), seed=1)
    cluster.start_all()
    cluster.run(until=3.5)
    cluster.node(0).crash()
    cluster.node(0).restart(fresh_state=False)
    cluster.run(until=5.5)
    assert cluster.service(0).ticks == 5


class DropAll(InboundInterposer):
    def on_inbound(self, node, src, msg):
        return False


class BlockOut(OutboundInterposer):
    def on_outbound(self, node, dst, msg):
        return False


def test_inbound_interposer_filters():
    cluster = Cluster(2, lambda nid: EchoService(nid), seed=1)
    cluster.node(1).inbound_interposers.append(DropAll())
    cluster.start_all()
    cluster.run(until=5)
    assert cluster.service(1).received == 0
    assert cluster.sim.trace.count("node.filtered_in") == 1


def test_outbound_interposer_blocks_send():
    cluster = Cluster(2, lambda nid: EchoService(nid), seed=1)
    cluster.node(0).outbound_interposers.append(BlockOut())
    cluster.start_all()
    cluster.run(until=5)
    assert cluster.service(1).received == 0
    assert cluster.network.messages_sent == 0


def test_dispatch_capture_records_checkpoint():
    cluster = Cluster(2, lambda nid: EchoService(nid), seed=1)
    captured = []

    class Spy(InboundInterposer):
        def on_inbound(self, node, src, msg):
            # current_dispatch is set *after* interposers run; sample at
            # next delivery instead via the service handler below.
            return True

    node = cluster.node(1)
    node.capture_dispatch = True
    original = node.service.on_ping.__func__ if hasattr(node.service.on_ping, "__func__") else None

    # Wrap deliver to observe current_dispatch mid-flight.
    seen = {}
    service = node.service
    original_deliver = service.deliver

    def spying_deliver(src, msg):
        seen.setdefault("dispatch", node.current_dispatch)
        return original_deliver(src, msg)

    service.deliver = spying_deliver
    cluster.start_all()
    cluster.run(until=2)
    dispatch = seen["dispatch"]
    assert dispatch.kind == "deliver"
    assert dispatch.src == 0
    assert dispatch.checkpoint["received"] == 0
    assert node.current_dispatch is None  # cleared after dispatch


def test_cluster_rejects_small_topology():
    import pytest
    from repro.net import full_mesh

    with pytest.raises(ValueError):
        Cluster(5, lambda nid: TickService(nid), topology=full_mesh(3))
