"""Sandbox context semantics: effect collection and choice scripting."""

from dataclasses import dataclass

import pytest

from repro.choice import ChoiceError, ChoicePoint
from repro.statemachine import ChoiceRequested, Message, SandboxContext


@dataclass
class Out(Message):
    n: int


def test_send_collected_not_executed():
    ctx = SandboxContext(node_id=1)
    ctx.send(2, Out(n=1))
    ctx.send(3, Out(n=2))
    assert ctx.effects.sent == [(2, Out(n=1)), (3, Out(n=2))]


def test_timers_collected():
    ctx = SandboxContext(node_id=1)
    ctx.set_timer("t", 0.5, payload="p")
    ctx.cancel_timer("u")
    assert ctx.effects.timers_set == [("t", 0.5, "p")]
    assert ctx.effects.timers_cancelled == ["u"]


def test_scripted_choice_consumed_in_order():
    ctx = SandboxContext(node_id=1, choice_script=["b", "a"])
    point = ChoicePoint(label="l", candidates=["a", "b"], node_id=1)
    assert ctx.choose(point) == "b"
    assert ctx.choose(point) == "a"
    assert ctx.effects.choices_made == [("l", "b"), ("l", "a")]


def test_script_exhaustion_raises_choice_requested():
    ctx = SandboxContext(node_id=1, choice_script=["a"])
    point = ChoicePoint(label="l", candidates=["a", "b"], node_id=1)
    ctx.choose(point)
    with pytest.raises(ChoiceRequested) as info:
        ctx.choose(point)
    assert info.value.consumed == ["a"]
    assert info.value.point.label == "l"


def test_invalid_scripted_value_rejected():
    ctx = SandboxContext(node_id=1, choice_script=["zzz"])
    point = ChoicePoint(label="l", candidates=["a", "b"], node_id=1)
    with pytest.raises(ChoiceError):
        ctx.choose(point)


def test_sandbox_random_is_deterministic():
    a = SandboxContext(node_id=1, rng_seed=3).random("s").random()
    b = SandboxContext(node_id=1, rng_seed=3).random("s").random()
    assert a == b


def test_sandbox_random_differs_by_seed_and_node():
    base = SandboxContext(node_id=1, rng_seed=3).random("s").random()
    assert SandboxContext(node_id=1, rng_seed=4).random("s").random() != base
    assert SandboxContext(node_id=2, rng_seed=3).random("s").random() != base


def test_now_is_fixed():
    ctx = SandboxContext(node_id=1, now=42.0)
    assert ctx.now() == 42.0


def test_record_is_silent():
    ctx = SandboxContext(node_id=1)
    assert ctx.record("anything", data=1) is None
