"""NFA mode: multiple applicable handlers resolved by the runtime."""

from dataclasses import dataclass

from repro.choice import ScriptedResolver
from repro.statemachine import Cluster, Message, Service, msg_handler


@dataclass
class Event(Message):
    n: int


class TwoWays(Service):
    """Two unguarded handlers for the same message type."""

    state_fields = ("path",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.path = []

    def on_init(self):
        if self.node_id == 0:
            self.send(1, Event(n=1))
            self.send(1, Event(n=2))

    @msg_handler(Event)
    def way_a(self, src, msg):
        self.path.append(("a", msg.n))

    @msg_handler(Event)
    def way_b(self, src, msg):
        self.path.append(("b", msg.n))


def specs_by_name(service, msg):
    return {s.name: s for s in service.applicable_handlers(0, msg)}


def test_default_resolver_picks_first_handler():
    cluster = Cluster(2, TwoWays, seed=1)
    cluster.start_all()
    cluster.run(until=2)
    assert cluster.service(1).path == [("a", 1), ("a", 2)]


def test_scripted_resolver_picks_named_handler():
    cluster = Cluster(2, TwoWays, seed=1)
    service = cluster.service(1)
    specs = specs_by_name(service, Event(n=0))
    cluster.node(1).choice_resolver = ScriptedResolver(
        {"handler:Event": [specs["way_b"], specs["way_a"]]}
    )
    cluster.start_all()
    cluster.run(until=2)
    assert service.path == [("b", 1), ("a", 2)]


def test_handler_choice_traced():
    cluster = Cluster(2, TwoWays, seed=1)
    cluster.start_all()
    cluster.run(until=2)
    records = cluster.sim.trace.select("choice.handler")
    assert len(records) == 2
    assert records[0].data["label"] == "handler:Event"
