"""Per-node uplink capacity (shared outgoing bottleneck)."""

import pytest

from repro.net import Network, TransportError, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_net(n=3):
    sim = Simulator(seed=2)
    net = Network(sim, full_mesh(n, latency=0.0, bandwidth=1e9), LivenessRegistry())
    times = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(i, lambda src, dst, payload, i=i: times[i].append(sim.now))
    return sim, net, times


def test_uplink_serializes_across_destinations():
    sim, net, times = make_net()
    net.set_uplink(0, 8e3)  # 1 KB/s
    net.send(0, 1, "a", size_bytes=1000)
    net.send(0, 2, "b", size_bytes=1000)
    sim.run()
    assert times[1][0] == pytest.approx(1.0)
    assert times[2][0] == pytest.approx(2.0)


def test_without_uplink_destinations_are_parallel():
    sim, net, times = make_net()
    net.send(0, 1, "a", size_bytes=1000)
    net.send(0, 2, "b", size_bytes=1000)
    sim.run()
    assert times[1][0] == pytest.approx(times[2][0], abs=1e-5)


def test_effective_bandwidth_is_min_of_link_and_uplink():
    sim, net, times = make_net()
    net.set_uplink(0, 1e12)  # uplink faster than the 1 Gb/s link
    net.send(0, 1, "a", size_bytes=125_000_000)  # 1 Gb of data
    sim.run()
    assert times[1][0] == pytest.approx(1.0)


def test_uplink_query():
    sim, net, _ = make_net()
    assert net.uplink(0) is None
    net.set_uplink(0, 5e6)
    assert net.uplink(0) == 5e6


def test_invalid_uplink_rejected():
    sim, net, _ = make_net()
    with pytest.raises(TransportError):
        net.set_uplink(0, 0)


def test_other_nodes_unaffected_by_uplink():
    sim, net, times = make_net()
    net.set_uplink(0, 8e3)
    net.send(1, 2, "c", size_bytes=1000)
    sim.run()
    assert times[2][0] < 0.01
