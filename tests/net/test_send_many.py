"""send_many must be indistinguishable from a loop of send() calls.

The controller's batched checkpoint broadcast rides on this equivalence
— trace digests of existing benchmarks are pinned byte-identical — so
it is checked across every transport feature that touches a send: loss
(both reliability modes), FIFO bandwidth serialization, partitions,
liveness, fault interposers (drops, duplicates, delays), and connection
epochs.  The batching win itself (fewer queue insertions) is asserted
separately.
"""

import random

from repro.chaos.faults import FaultDecision
from repro.net import Link, Network, Topology, full_mesh
from repro.sim import Simulator


class _Recorder:
    def __init__(self):
        self.delivered = []
        self.broken = []

    def attach(self, net, node_id):
        net.attach(
            node_id,
            lambda src, dst, payload: self.delivered.append((src, dst, payload)),
            lambda peer: self.broken.append((node_id, peer)),
        )


def _trace_rows(sim):
    return [(r.time, r.category, r.node, repr(sorted(r.data.items()))) for r in sim.trace]


def _build(n, topology_fn, seed=7):
    sim = Simulator(seed=seed)
    net = Network(sim, topology_fn(n))
    rec = _Recorder()
    for i in range(n):
        rec.attach(net, i)
    return sim, net, rec


def _assert_equivalent(n, topology_fn, script, seed=7):
    """Run ``script(net, mode)`` in loop and batch mode; compare runs.

    ``script`` issues sends; for each broadcast it calls either
    per-destination ``send`` (mode="loop") or one ``send_many``
    (mode="batch").  Everything observable must match.
    """
    sim_a, net_a, rec_a = _build(n, topology_fn, seed)
    results_a = script(net_a, "loop")
    sim_a.run()

    sim_b, net_b, rec_b = _build(n, topology_fn, seed)
    results_b = script(net_b, "batch")
    sim_b.run()

    assert results_a == results_b
    assert rec_a.delivered == rec_b.delivered
    assert _trace_rows(sim_a) == _trace_rows(sim_b)
    for attr in ("messages_sent", "messages_delivered", "messages_dropped",
                 "messages_duplicated", "bytes_sent"):
        assert getattr(net_a, attr) == getattr(net_b, attr), attr
    return sim_a, sim_b


def _broadcast(net, mode, src, dsts, payload, **kwargs):
    if mode == "batch":
        return net.send_many(src, dsts, payload, **kwargs)
    return [net.send(src, dst, payload, **kwargs) for dst in dsts]


def test_uniform_mesh_broadcast_equivalent():
    def script(net, mode):
        return _broadcast(net, mode, 0, [1, 2, 3, 4, 5], "hello")

    _assert_equivalent(6, full_mesh, script)


def test_mixed_latency_broadcast_equivalent():
    def topo(n):
        t = Topology(n, default=Link(latency=0.05))
        t.set_symmetric(0, 1, Link(latency=0.01))
        t.set_symmetric(0, 3, Link(latency=0.2))
        return t

    def script(net, mode):
        out = _broadcast(net, mode, 0, [1, 2, 3, 4], "a")
        out += _broadcast(net, mode, 0, [4, 3, 2, 1], "b")
        return out

    _assert_equivalent(5, topo, script)


def test_lossy_links_consume_identical_rng_draws():
    def topo(n):
        return Topology(n, default=Link(latency=0.02, loss=0.3))

    def script(net, mode):
        out = _broadcast(net, mode, 0, [1, 2, 3], "r", reliable=True)
        out += _broadcast(net, mode, 0, [1, 2, 3], "u", reliable=False)
        out += _broadcast(net, mode, 1, [0, 2, 3], "r2", reliable=True)
        return out

    _assert_equivalent(4, topo, script)


def test_fifo_serialization_equivalent():
    def topo(n):
        return Topology(n, default=Link(latency=0.01, bandwidth=1e5))

    def script(net, mode):
        # Large frames back to back: arrivals are all distinct because
        # the per-link FIFO pushes each transmission later.
        out = _broadcast(net, mode, 0, [1, 1, 1, 2], "big", size_bytes=50_000)
        return out

    _assert_equivalent(3, topo, script)


def test_partition_and_down_nodes_equivalent():
    def script(net, mode):
        net.set_partition([{0, 1}, {2, 3}])
        net.liveness.fail(1)
        out = _broadcast(net, mode, 0, [1, 2, 3], "x")
        net.clear_partition()
        net.liveness.recover(1)
        out += _broadcast(net, mode, 0, [1, 2, 3], "y")
        return out

    _assert_equivalent(4, full_mesh, script)


class _EveryOtherChaos:
    """Deterministic interposer: drop every 3rd send, duplicate every
    4th, delay every 5th — exercises all FaultDecision branches."""

    def __init__(self):
        self.calls = 0

    def apply(self, src, dst, payload, now):
        self.calls += 1
        if self.calls % 3 == 0:
            return FaultDecision(drop=True, reason="chaos-drop")
        if self.calls % 4 == 0:
            return FaultDecision(duplicates=2, duplicate_delays=(0.05, 0.11))
        if self.calls % 5 == 0:
            return FaultDecision(extra_delay=0.4)
        return None


def test_fault_interposers_equivalent():
    def script(net, mode):
        net.add_fault_interposer(_EveryOtherChaos())
        out = _broadcast(net, mode, 0, [1, 2, 3, 4], "m1")
        out += _broadcast(net, mode, 0, [4, 3, 2, 1], "m2")
        out += _broadcast(net, mode, 1, [0, 2, 3, 4], "m3")
        return out

    _assert_equivalent(5, full_mesh, script)


def test_broken_connection_epochs_equivalent():
    def script(net, mode):
        out = _broadcast(net, mode, 0, [1, 2], "pre")
        net.break_connection(0, 1)
        out += _broadcast(net, mode, 0, [1, 2], "post")
        return out

    _assert_equivalent(3, full_mesh, script)


def test_send_many_batches_same_arrival_into_one_event():
    sim = Simulator(seed=1)
    net = Network(sim, full_mesh(9))
    rec = _Recorder()
    for i in range(9):
        rec.attach(net, i)
    before = len(sim.queue)
    net.send_many(0, list(range(1, 9)), "fanout")
    inserted = len(sim.queue) - before
    # Uniform mesh, same size, empty FIFOs: all 8 arrivals coincide.
    assert inserted == 1
    sim.run()
    assert [d[1] for d in rec.delivered] == list(range(1, 9))


def test_send_many_unattached_source_raises():
    sim = Simulator(seed=1)
    net = Network(sim, full_mesh(3))
    rec = _Recorder()
    rec.attach(net, 1)
    try:
        net.send_many(0, [1, 2], "x")
        raise AssertionError("expected TransportError")
    except Exception as exc:
        assert type(exc).__name__ == "TransportError"
