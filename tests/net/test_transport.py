"""Network transport: delivery, ordering, loss, failures, partitions."""

import pytest

from repro.net import Link, Network, Topology, TransportError, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_net(n=3, latency=0.05, loss=0.0, bandwidth=10e6):
    sim = Simulator(seed=11)
    liveness = LivenessRegistry()
    net = Network(sim, full_mesh(n, latency=latency, bandwidth=bandwidth, loss=loss), liveness)
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(i, lambda src, dst, payload, i=i: inboxes[i].append((src, payload)))
    return sim, net, inboxes


def test_basic_delivery():
    sim, net, inboxes = make_net()
    net.send(0, 1, "hello")
    sim.run()
    assert inboxes[1] == [(0, "hello")]


def test_delivery_time_includes_latency_and_tx():
    sim, net, inboxes = make_net(latency=0.1, bandwidth=8e6)
    times = []
    net.attach(1, lambda src, dst, payload: times.append(sim.now))
    net.send(0, 1, "x", size_bytes=1000)
    sim.run()
    assert times[0] == pytest.approx(0.1 + 0.001)


def test_unattached_source_rejected():
    sim, net, _ = make_net(2)
    with pytest.raises(TransportError):
        net.send(9, 0, "x")


def test_reliable_in_order_per_pair():
    sim, net, inboxes = make_net()
    for i in range(5):
        net.send(0, 1, i)
    sim.run()
    assert [payload for _, payload in inboxes[1]] == [0, 1, 2, 3, 4]


def test_down_source_drops():
    sim, net, inboxes = make_net()
    net.liveness.fail(0)
    assert net.send(0, 1, "x") is False
    sim.run()
    assert inboxes[1] == []
    assert net.messages_dropped == 1


def test_down_destination_drops_at_delivery():
    sim, net, inboxes = make_net()
    net.send(0, 1, "x")
    net.liveness.fail(1)
    sim.run()
    assert inboxes[1] == []


def test_destination_recovering_before_arrival_receives():
    sim, net, inboxes = make_net(latency=1.0)
    net.liveness.fail(1)
    net.send(0, 1, "x")
    sim.schedule(0.5, lambda: net.liveness.recover(1))
    sim.run()
    assert inboxes[1] == [(0, "x")]


def test_partition_blocks_cross_group():
    sim, net, inboxes = make_net()
    net.set_partition([{0}, {1, 2}])
    assert net.send(0, 1, "x") is False
    assert net.send(1, 2, "y") is True
    sim.run()
    assert inboxes[1] == []
    assert inboxes[2] == [(1, "y")]


def test_partition_heals():
    sim, net, inboxes = make_net()
    net.set_partition([{0}, {1}])
    net.clear_partition()
    net.send(0, 1, "x")
    sim.run()
    assert inboxes[1] == [(0, "x")]


def test_unreliable_send_can_drop():
    sim, net, inboxes = make_net(loss=0.999)
    delivered = 0
    for _ in range(20):
        if net.send(0, 1, "x", reliable=False):
            delivered += 1
    sim.run()
    assert len(inboxes[1]) == delivered
    assert delivered < 20


def test_reliable_send_survives_loss_with_delay():
    sim, net, inboxes = make_net(loss=0.5)
    net.send(0, 1, "x")
    sim.run()
    assert inboxes[1] == [(0, "x")]


def test_counters_track_activity():
    sim, net, _ = make_net()
    net.send(0, 1, "a")
    net.send(0, 2, "b")
    sim.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 2


def test_bandwidth_serializes_back_to_back_sends():
    sim, net, _ = make_net(latency=0.0, bandwidth=8e3)  # 1 KB/s
    times = []
    net.attach(1, lambda src, dst, payload: times.append(sim.now))
    net.send(0, 1, "a", size_bytes=1000)  # 1s of tx
    net.send(0, 1, "b", size_bytes=1000)
    sim.run()
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(2.0)


def test_trace_records_send_kind():
    sim, net, _ = make_net()
    net.send(0, 1, "payload")
    records = sim.trace.select("net.send")
    assert records[0].data["kind"] == "str"
