"""Time-varying network conditions."""

import pytest

from repro.net import (
    LinkDynamics,
    Network,
    full_mesh,
    schedule_latency_change,
)
from repro.sim import LivenessRegistry, Simulator


def test_scheduled_latency_change_applies():
    sim = Simulator(seed=1)
    topo = full_mesh(3, latency=0.05)
    # Defaults are shared; install explicit links so changes are visible.
    for i in range(3):
        for j in range(3):
            if i != j:
                topo.set_link(i, j, topo.link(i, j))
    schedule_latency_change(sim, topo, at=1.0, a=0, b=1, latency=0.5)
    sim.run(until=0.5)
    assert topo.latency(0, 1) == 0.05
    sim.run(until=2.0)
    assert topo.latency(0, 1) == 0.5
    assert topo.latency(1, 0) == 0.5
    assert topo.latency(0, 2) == 0.05  # other pairs untouched


def test_change_affects_future_deliveries():
    sim = Simulator(seed=1)
    topo = full_mesh(2, latency=0.05)
    net = Network(sim, topo, LivenessRegistry())
    times = []
    net.attach(0, lambda *a: None)
    net.attach(1, lambda src, dst, payload: times.append(sim.now))
    schedule_latency_change(sim, topo, at=1.0, a=0, b=1, latency=1.0)
    net.send(0, 1, "before")
    sim.run(until=2.0)
    net.send(0, 1, "after")
    sim.run()
    assert times[0] < 0.2
    assert times[1] > 2.9  # sent at 2.0 with 1.0s latency


def test_congestion_episodes_start_and_end():
    sim = Simulator(seed=7)
    topo = full_mesh(4, latency=0.05)
    for i in range(4):
        for j in range(4):
            if i != j:
                topo.set_link(i, j, topo.link(i, j))
    dynamics = LinkDynamics(
        sim, topo, period=1.0, episode_duration=2.0,
        latency_factor=10.0, episode_probability=1.0,
    )
    dynamics.start()
    sim.run(until=1.5)
    assert dynamics.episodes_started >= 1
    assert len(dynamics.active) >= 1
    episode = dynamics.active[0]
    assert topo.latency(episode.a, episode.b) == pytest.approx(0.5)
    dynamics.stop()
    sim.run(until=20.0)
    # All episodes eventually end and restore the original link.
    assert dynamics.active == []
    for i in range(4):
        for j in range(4):
            if i != j:
                assert topo.latency(i, j) == pytest.approx(0.05)


def test_episodes_traced():
    sim = Simulator(seed=7)
    topo = full_mesh(3, latency=0.05)
    for i in range(3):
        for j in range(3):
            if i != j:
                topo.set_link(i, j, topo.link(i, j))
    dynamics = LinkDynamics(sim, topo, period=0.5, episode_duration=1.0,
                            episode_probability=1.0)
    dynamics.start()
    sim.run(until=3.0)
    assert sim.trace.count("net.congestion_start") >= 2
    assert sim.trace.count("net.congestion_end") >= 1


def test_network_model_tracks_dynamics():
    """The EWMA network model follows a latency step change."""
    from repro.model import NetworkModel

    sim = Simulator(seed=1)
    topo = full_mesh(2, latency=0.05)
    schedule_latency_change(sim, topo, at=5.0, a=0, b=1, latency=0.4)
    model = NetworkModel()

    def observe():
        model.observe_latency(0, 1, topo.latency(0, 1), now=sim.now)
        sim.schedule(0.5, observe)

    sim.schedule(0.5, observe)
    sim.run(until=4.9)
    assert model.latency(0, 1) == pytest.approx(0.05, abs=0.01)
    sim.run(until=20.0)
    assert model.latency(0, 1) == pytest.approx(0.4, abs=0.05)
