"""Link parameter validation and delay math."""

import pytest

from repro.net import LOOPBACK, Link, LinkError


def test_transmission_time():
    link = Link(latency=0.01, bandwidth=8e6)
    assert link.transmission_time(1000) == pytest.approx(0.001)


def test_one_way_delay_sums_latency_and_tx():
    link = Link(latency=0.05, bandwidth=8e6)
    assert link.one_way_delay(1000) == pytest.approx(0.051)


def test_negative_latency_rejected():
    with pytest.raises(LinkError):
        Link(latency=-0.1)


def test_zero_bandwidth_rejected():
    with pytest.raises(LinkError):
        Link(latency=0.1, bandwidth=0)


def test_loss_bounds():
    with pytest.raises(LinkError):
        Link(latency=0.1, loss=1.0)
    with pytest.raises(LinkError):
        Link(latency=0.1, loss=-0.1)
    Link(latency=0.1, loss=0.999)  # valid


def test_loopback_is_instant():
    assert LOOPBACK.one_way_delay(10_000_000) < 1e-3


def test_links_are_frozen():
    link = Link(latency=0.1)
    with pytest.raises(Exception):
        link.latency = 0.2
