"""Property-based transport invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.net import Link, Network, Topology
from repro.sim import LivenessRegistry, Simulator


def build_net(n, latency, bandwidth=10e6, loss=0.0):
    sim = Simulator(seed=1)
    topo = Topology(n, default=Link(latency=latency, bandwidth=bandwidth, loss=loss))
    net = Network(sim, topo, LivenessRegistry())
    inbox = []
    for i in range(n):
        net.attach(i, lambda src, dst, payload: inbox.append((sim.now, src, dst, payload)))
    return sim, net, inbox


@given(
    messages=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=30),
    latency=st.floats(min_value=0.001, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_reliable_fifo_per_pair(messages, latency):
    """Reliable delivery preserves per-(src, dst) send order."""
    sim, net, inbox = build_net(3, latency)
    sequence = {}
    for src, dst in messages:
        if src == dst:
            continue
        seq = sequence.get((src, dst), 0)
        sequence[(src, dst)] = seq + 1
        net.send(src, dst, (src, dst, seq))
    sim.run()
    seen = {}
    for _, src, dst, (psrc, pdst, seq) in inbox:
        key = (psrc, pdst)
        assert seq == seen.get(key, 0), "out-of-order delivery"
        seen[key] = seq + 1
    assert seen == sequence  # everything delivered exactly once


@given(
    loss=st.floats(min_value=0.0, max_value=0.9),
    count=st.integers(1, 30),
)
@settings(max_examples=30, deadline=None)
def test_reliable_never_loses(loss, count):
    sim, net, inbox = build_net(2, latency=0.01, loss=loss)
    for i in range(count):
        net.send(0, 1, i)
    sim.run()
    assert [p for _, _, _, p in inbox] == list(range(count))


@given(sizes=st.lists(st.integers(1, 100_000), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_arrival_times_monotone_per_pair(sizes):
    """Bandwidth serialization can only push arrivals later, never earlier."""
    sim, net, inbox = build_net(2, latency=0.05, bandwidth=1e6)
    for index, size in enumerate(sizes):
        net.send(0, 1, index, size_bytes=size)
    sim.run()
    times = [t for t, _, _, _ in inbox]
    assert times == sorted(times)
    # Total serialization time is at least the sum of tx times.
    total_tx = sum(size * 8.0 / 1e6 for size in sizes)
    assert times[-1] >= total_tx


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_partition_is_symmetric_barrier(data):
    groups = data.draw(st.permutations([0, 1, 2, 3]))
    left, right = set(groups[:2]), set(groups[2:])
    sim, net, inbox = build_net(4, latency=0.01)
    net.set_partition([left, right])
    for src in range(4):
        for dst in range(4):
            if src != dst:
                net.send(src, dst, (src, dst))
    sim.run()
    for _, _, _, (src, dst) in inbox:
        same_side = (src in left) == (dst in left)
        assert same_side, f"{src}->{dst} crossed the partition"
