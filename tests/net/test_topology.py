"""Topology builders and lookup semantics."""

import random

import pytest

from repro.net import (
    Link,
    Topology,
    TopologyError,
    full_mesh,
    random_uniform,
    star,
    transit_stub,
)


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        Topology(0)


def test_unknown_pair_without_default_raises():
    topo = Topology(3)
    with pytest.raises(TopologyError):
        topo.link(0, 1)


def test_out_of_range_node_rejected():
    topo = Topology(3)
    with pytest.raises(TopologyError):
        topo.link(0, 3)


def test_self_link_is_loopback():
    topo = Topology(3, default=Link(latency=0.5))
    assert topo.latency(1, 1) == 0.0


def test_set_symmetric_installs_both_directions():
    topo = Topology(3)
    topo.set_symmetric(0, 1, Link(latency=0.2))
    assert topo.latency(0, 1) == topo.latency(1, 0) == 0.2


def test_explicit_link_overrides_default():
    topo = Topology(3, default=Link(latency=0.5))
    topo.set_link(0, 1, Link(latency=0.1))
    assert topo.latency(0, 1) == 0.1
    assert topo.latency(1, 0) == 0.5


def test_full_mesh_uniform():
    topo = full_mesh(4, latency=0.03)
    for i in range(4):
        for j in range(4):
            expected = 0.0 if i == j else 0.03
            assert topo.latency(i, j) == expected


def test_star_spoke_to_spoke_doubles():
    topo = star(4, center=0, spoke_latency=0.02)
    assert topo.latency(0, 1) == pytest.approx(0.02)
    assert topo.latency(1, 2) == pytest.approx(0.04)


def test_random_uniform_within_bounds():
    topo = random_uniform(6, random.Random(1), latency_range=(0.01, 0.02))
    for i in range(6):
        for j in range(6):
            if i != j:
                assert 0.01 <= topo.latency(i, j) <= 0.02


def test_random_uniform_symmetric():
    topo = random_uniform(5, random.Random(2))
    for i in range(5):
        for j in range(5):
            assert topo.latency(i, j) == topo.latency(j, i)


def test_transit_stub_deterministic_per_seed():
    a = transit_stub(8, random.Random(3))
    b = transit_stub(8, random.Random(3))
    for i in range(8):
        for j in range(8):
            assert a.latency(i, j) == b.latency(i, j)


def test_transit_stub_triangle_structure():
    # Same-transit pairs should generally be faster than cross-transit
    # pairs; check the extremes are ordered sensibly.
    topo = transit_stub(16, random.Random(4), n_transit=2,
                        transit_latency_range=(0.2, 0.3))
    latencies = sorted(
        topo.latency(i, j) for i in range(16) for j in range(i + 1, 16)
    )
    assert latencies[0] < 0.1          # some intra-transit pair is fast
    assert latencies[-1] > 0.2          # some cross-transit pair pays the core


def test_transit_stub_requires_transit_nodes():
    with pytest.raises(TopologyError):
        transit_stub(4, random.Random(0), n_transit=0)
