"""Topology builders and lookup semantics."""

import random

import pytest

from repro.net import (
    Link,
    Topology,
    TopologyError,
    full_mesh,
    random_uniform,
    star,
    transit_stub,
)


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        Topology(0)


def test_unknown_pair_without_default_raises():
    topo = Topology(3)
    with pytest.raises(TopologyError):
        topo.link(0, 1)


def test_out_of_range_node_rejected():
    topo = Topology(3)
    with pytest.raises(TopologyError):
        topo.link(0, 3)


def test_self_link_is_loopback():
    topo = Topology(3, default=Link(latency=0.5))
    assert topo.latency(1, 1) == 0.0


def test_set_symmetric_installs_both_directions():
    topo = Topology(3)
    topo.set_symmetric(0, 1, Link(latency=0.2))
    assert topo.latency(0, 1) == topo.latency(1, 0) == 0.2


def test_explicit_link_overrides_default():
    topo = Topology(3, default=Link(latency=0.5))
    topo.set_link(0, 1, Link(latency=0.1))
    assert topo.latency(0, 1) == 0.1
    assert topo.latency(1, 0) == 0.5


def test_full_mesh_uniform():
    topo = full_mesh(4, latency=0.03)
    for i in range(4):
        for j in range(4):
            expected = 0.0 if i == j else 0.03
            assert topo.latency(i, j) == expected


def test_star_spoke_to_spoke_doubles():
    topo = star(4, center=0, spoke_latency=0.02)
    assert topo.latency(0, 1) == pytest.approx(0.02)
    assert topo.latency(1, 2) == pytest.approx(0.04)


def test_random_uniform_within_bounds():
    topo = random_uniform(6, random.Random(1), latency_range=(0.01, 0.02))
    for i in range(6):
        for j in range(6):
            if i != j:
                assert 0.01 <= topo.latency(i, j) <= 0.02


def test_random_uniform_symmetric():
    topo = random_uniform(5, random.Random(2))
    for i in range(5):
        for j in range(5):
            assert topo.latency(i, j) == topo.latency(j, i)


def test_transit_stub_deterministic_per_seed():
    a = transit_stub(8, random.Random(3))
    b = transit_stub(8, random.Random(3))
    for i in range(8):
        for j in range(8):
            assert a.latency(i, j) == b.latency(i, j)


def test_transit_stub_triangle_structure():
    # Same-transit pairs should generally be faster than cross-transit
    # pairs; check the extremes are ordered sensibly.
    topo = transit_stub(16, random.Random(4), n_transit=2,
                        transit_latency_range=(0.2, 0.3))
    latencies = sorted(
        topo.latency(i, j) for i in range(16) for j in range(i + 1, 16)
    )
    assert latencies[0] < 0.1          # some intra-transit pair is fast
    assert latencies[-1] > 0.2          # some cross-transit pair pays the core


def test_transit_stub_requires_transit_nodes():
    with pytest.raises(TopologyError):
        transit_stub(4, random.Random(0), n_transit=0)


# ----------------------------------------------------------------------
# Sparse / lazy topologies (the 1k-node rework)
# ----------------------------------------------------------------------


def test_node_ids_is_cached_range_view():
    topo = Topology(1000, default=Link(latency=0.01))
    ids = topo.node_ids
    assert ids is topo.node_ids            # cached, not rebuilt per call
    assert isinstance(ids, range)
    assert len(ids) == 1000
    assert list(ids[:3]) == [0, 1, 2]


def test_star_materializes_no_explicit_links():
    topo = star(1000, center=0, spoke_latency=0.02)
    assert len(list(topo.pairs())) == 0    # all structure is computed
    assert topo.latency(0, 999) == pytest.approx(0.02)
    assert topo.latency(500, 999) == pytest.approx(0.04)
    assert topo.latency(7, 7) == 0.0


def test_random_uniform_lazy_matches_bounds_and_symmetry():
    topo = random_uniform(64, random.Random(5), latency_range=(0.01, 0.05),
                          lazy=True)
    assert len(list(topo.pairs())) == 0
    for i, j in [(0, 1), (3, 60), (63, 0), (17, 42)]:
        lat = topo.latency(i, j)
        assert 0.01 <= lat <= 0.05
        assert lat == topo.latency(j, i)


def test_random_uniform_lazy_deterministic_per_seed():
    a = random_uniform(64, random.Random(9), lazy=True)
    b = random_uniform(64, random.Random(9), lazy=True)
    for i, j in [(0, 1), (10, 50), (63, 62)]:
        assert a.latency(i, j) == b.latency(i, j)


def test_random_uniform_eager_path_unchanged_by_lazy_flag_default():
    # lazy=False must keep the historical draw sequence byte-for-byte.
    a = random_uniform(6, random.Random(2))
    b = random_uniform(6, random.Random(2), lazy=False)
    for i in range(6):
        for j in range(6):
            assert a.latency(i, j) == b.latency(i, j)


def test_transit_stub_grouped_mode_scales_sparse():
    topo = transit_stub(rng=random.Random(7), n_stubs=32, stub_size=32)
    assert topo.n == 1024
    assert len(list(topo.pairs())) == 0
    # Same-stub pairs ride two access links; cross-stub pays the core.
    same = topo.latency(0, 1)
    cross = topo.latency(0, 1023)
    assert 0.0 < same < cross
    assert topo.latency(0, 1023) == topo.latency(1023, 0)


def test_transit_stub_grouped_mode_deterministic():
    a = transit_stub(rng=random.Random(8), n_stubs=8, stub_size=16)
    b = transit_stub(rng=random.Random(8), n_stubs=8, stub_size=16)
    for pair in [(0, 1), (5, 100), (127, 64)]:
        assert a.latency(*pair) == b.latency(*pair)


def test_transit_stub_grouped_mode_argument_validation():
    with pytest.raises(TopologyError):
        transit_stub(rng=random.Random(0), n_stubs=4)        # missing size
    with pytest.raises(TopologyError):
        transit_stub(rng=random.Random(0), stub_size=4)      # missing count
    with pytest.raises(TopologyError):
        transit_stub(rng=random.Random(0), n_stubs=0, stub_size=4)
    with pytest.raises(TopologyError):
        transit_stub(12, random.Random(0), n_stubs=4, stub_size=4)  # 16 != 12


def test_transit_stub_legacy_lazy_keeps_structure():
    eager = transit_stub(16, random.Random(6), n_transit=2)
    lazy = transit_stub(16, random.Random(6), n_transit=2, lazy=True)
    for i in range(16):
        for j in range(16):
            assert eager.latency(i, j) == lazy.latency(i, j)


def test_set_link_still_overrides_computed_topology():
    topo = star(100, center=0, spoke_latency=0.02)
    topo.set_link(3, 4, Link(latency=0.5))
    assert topo.latency(3, 4) == 0.5
    assert topo.latency(4, 3) == pytest.approx(0.04)   # computed fallback
