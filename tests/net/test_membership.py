"""Partial-view membership: bounds, convergence, and churn repair."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ViewConfig, make_membership_factory
from repro.statemachine import Cluster


def _overlay_connected(services):
    """True when the union of active views is one connected component."""
    adj = {s.node_id: set(s.active) for s in services}
    for nid, peers in list(adj.items()):
        for p in peers:
            adj.setdefault(p, set()).add(nid)
    start = next(iter(adj))
    seen = {start}
    frontier = [start]
    while frontier:
        nxt = frontier.pop()
        for p in adj[nxt]:
            if p not in seen:
                seen.add(p)
                frontier.append(p)
    return len(seen) == len(adj)


def _cluster(n, seed=3, **view_kwargs):
    cluster = Cluster(n, make_membership_factory(ViewConfig(**view_kwargs)), seed=seed)
    cluster.start_all()
    return cluster


def test_views_stay_within_bounds():
    cluster = _cluster(48, active_size=4, passive_size=12)
    cluster.run(until=8.0)
    for svc in cluster.services:
        assert len(svc.active) <= 4
        assert len(svc.passive) <= 12
        assert svc.node_id not in svc.active
        assert svc.node_id not in svc.passive
        assert not set(svc.active) & set(svc.passive)


def test_overlay_converges_connected():
    cluster = _cluster(64)
    cluster.run(until=8.0)
    services = cluster.services
    assert _overlay_connected(services)
    # Every node has found neighbors — no isolated joiner left behind.
    assert all(svc.active for svc in services)


def test_neighbors_mirrors_active_view():
    cluster = _cluster(16)
    cluster.run(until=5.0)
    for svc in cluster.services:
        assert svc.neighbors() == list(svc.active)


def test_views_are_checkpointable_state():
    cluster = _cluster(16)
    cluster.run(until=5.0)
    snap = cluster.service(3).checkpoint()
    for fld in ("active", "passive", "probe_missed"):
        assert fld in snap


def test_probe_detects_silent_failure():
    """A failed node stops answering probes and is dropped from every
    active view; survivors refill from their passive views."""
    cluster = _cluster(32, probe_period=0.25, probe_miss_limit=3)
    cluster.run(until=6.0)
    victim = 7
    cluster.network.liveness.fail(victim)
    cluster.run(until=16.0)
    survivors = [s for s in cluster.services if s.node_id != victim]
    assert all(victim not in s.active for s in survivors)
    assert _overlay_connected(survivors)
    assert all(s.active for s in survivors)


def test_repair_after_mass_failure():
    cluster = _cluster(48, probe_period=0.25)
    cluster.run(until=6.0)
    for victim in (3, 11, 19, 27, 35):
        cluster.network.liveness.fail(victim)
    cluster.run(until=20.0)
    dead = {3, 11, 19, 27, 35}
    survivors = [s for s in cluster.services if s.node_id not in dead]
    for svc in survivors:
        assert not set(svc.active) & dead
    assert _overlay_connected(survivors)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    victims=st.sets(st.integers(min_value=1, max_value=31), min_size=0, max_size=6),
)
def test_connectivity_property_under_churn(seed, victims):
    """Union of active views stays connected for arbitrary seeds and
    failure sets (node 0, the bootstrap contact, stays up)."""
    cluster = _cluster(32, seed=seed, probe_period=0.25)
    cluster.run(until=6.0)
    for victim in victims:
        cluster.network.liveness.fail(victim)
    cluster.run(until=18.0)
    survivors = [s for s in cluster.services if s.node_id not in victims]
    for svc in survivors:
        assert not set(svc.active) & victims
    assert _overlay_connected(survivors)


def test_membership_uses_named_stream_only():
    """Two same-seed runs produce identical view state — determinism of
    the "membership" stream end to end."""
    a = _cluster(24, seed=11)
    a.run(until=6.0)
    b = _cluster(24, seed=11)
    b.run(until=6.0)
    for sa, sb in zip(a.services, b.services):
        assert sa.active == sb.active
        assert sa.passive == sb.passive
