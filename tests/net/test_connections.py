"""TCP-like connection breaking (the steering primitive)."""

from repro.net import Network, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_net(n=3, latency=0.5):
    sim = Simulator(seed=5)
    net = Network(sim, full_mesh(n, latency=latency), LivenessRegistry())
    inboxes = {i: [] for i in range(n)}
    broken = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(
            i,
            lambda src, dst, payload, i=i: inboxes[i].append(payload),
            lambda peer, i=i: broken[i].append(peer),
        )
    return sim, net, inboxes, broken


def test_break_drops_inflight_messages():
    sim, net, inboxes, _ = make_net(latency=1.0)
    net.send(0, 1, "doomed")
    net.break_connection(0, 1)
    sim.run()
    assert inboxes[1] == []


def test_break_notifies_both_endpoints():
    sim, net, _, broken = make_net()
    net.break_connection(0, 1)
    assert broken[0] == [1]
    assert broken[1] == [0]


def test_break_does_not_notify_down_endpoint():
    sim, net, _, broken = make_net()
    net.liveness.fail(1)
    net.break_connection(0, 1)
    assert broken[0] == [1]
    assert broken[1] == []


def test_send_after_break_uses_fresh_connection():
    sim, net, inboxes, _ = make_net(latency=0.1)
    net.break_connection(0, 1)
    net.send(0, 1, "fresh")
    sim.run()
    assert inboxes[1] == ["fresh"]


def test_connection_epoch_counts_breaks():
    sim, net, _, _ = make_net()
    assert net.connection_epoch(0, 1) == 0
    net.break_connection(0, 1)
    net.break_connection(1, 0)  # same pair, either order
    assert net.connection_epoch(0, 1) == 2


def test_break_is_pairwise_only():
    sim, net, inboxes, _ = make_net(latency=1.0)
    net.send(0, 1, "a")
    net.send(0, 2, "b")
    net.break_connection(0, 1)
    sim.run()
    assert inboxes[1] == []
    assert inboxes[2] == ["b"]


def test_unreliable_messages_survive_break():
    # Datagram traffic has no connection to break.
    sim, net, inboxes, _ = make_net(latency=1.0)
    net.send(0, 1, "dgram", reliable=False)
    net.break_connection(0, 1)
    sim.run()
    assert inboxes[1] == ["dgram"]
