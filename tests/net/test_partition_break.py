"""Interactions between connection breaking and partitions.

Steering breaks connections while chaos plans partition the network;
the two mechanisms must compose: partitions drop at send time, breaks
invalidate in-flight traffic by epoch, and neither resets the other.
"""

from repro.net import Network, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_net(n=4, latency=0.5):
    sim = Simulator(seed=6)
    net = Network(sim, full_mesh(n, latency=latency), LivenessRegistry())
    inboxes = {i: [] for i in range(n)}
    broken = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(
            i,
            lambda src, dst, payload, i=i: inboxes[i].append(payload),
            lambda peer, i=i: broken[i].append(peer),
        )
    return sim, net, inboxes, broken


def drop_reasons(sim):
    return [r.data["reason"] for r in sim.trace.select("net.drop")]


def test_break_then_heal_partition_delivers_on_fresh_epoch():
    sim, net, inboxes, _ = make_net(latency=0.1)
    net.break_connection(0, 1)
    net.set_partition([{0}, {1, 2, 3}])
    net.send(0, 1, "walled")          # dropped: partition wins at send time
    net.clear_partition()
    net.send(0, 1, "after-heal")      # new epoch, no partition: delivered
    sim.run()
    assert inboxes[1] == ["after-heal"]
    assert drop_reasons(sim) == ["partition"]


def test_partition_drop_does_not_touch_connection_epoch():
    sim, net, _, _ = make_net()
    net.set_partition([{0}, {1, 2, 3}])
    net.send(0, 1, "walled")
    assert net.connection_epoch(0, 1) == 0


def test_break_while_partitioned_still_notifies_endpoints():
    # break_connection is a local action on both endpoints; the
    # partition blocks *messages*, not the teardown notification.
    sim, net, _, broken = make_net()
    net.set_partition([{0}, {1, 2, 3}])
    net.break_connection(0, 1)
    assert broken[0] == [1]
    assert broken[1] == [0]
    assert net.connection_epoch(0, 1) == 1


def test_inflight_message_survives_partition_but_not_break():
    # Partitions are enforced at send time only — a message already in
    # flight when the wall goes up still arrives (it already "left").
    # Breaking the connection, by contrast, kills in-flight traffic.
    sim, net, inboxes, _ = make_net(latency=1.0)
    net.send(0, 1, "in-flight")
    net.set_partition([{0}, {1, 2, 3}])
    sim.run()
    assert inboxes[1] == ["in-flight"]

    sim, net, inboxes, _ = make_net(latency=1.0)
    net.send(0, 1, "doomed")
    net.break_connection(0, 1)
    sim.run()
    assert inboxes[1] == []


def test_epoch_monotone_across_partition_cycles():
    sim, net, _, _ = make_net()
    epochs = [net.connection_epoch(0, 1)]
    net.break_connection(0, 1)
    epochs.append(net.connection_epoch(0, 1))
    net.set_partition([{0, 1}, {2, 3}])
    net.break_connection(1, 0)        # same pair, opposite order
    epochs.append(net.connection_epoch(0, 1))
    net.clear_partition()
    epochs.append(net.connection_epoch(0, 1))
    net.break_connection(0, 1)
    epochs.append(net.connection_epoch(0, 1))
    assert epochs == [0, 1, 2, 2, 3]  # never reset by partition changes
    assert net.connection_epoch(2, 3) == 0  # other pairs untouched


def test_breaks_are_per_pair_under_partition():
    sim, net, inboxes, _ = make_net(latency=0.1)
    net.set_partition([{0, 1, 2}, {3}])
    net.send(0, 1, "a")
    net.send(0, 2, "b")
    net.break_connection(0, 1)
    sim.run()
    assert inboxes[1] == []
    assert inboxes[2] == ["b"]


def test_nodes_outside_every_group_form_implicit_group():
    sim, net, inboxes, _ = make_net(latency=0.1)
    net.set_partition([{0, 1}])       # 2 and 3 are in the implicit rest
    net.send(2, 3, "rest-to-rest")
    net.send(0, 2, "cross")
    sim.run()
    assert inboxes[3] == ["rest-to-rest"]
    assert inboxes[2] == []
