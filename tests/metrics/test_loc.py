"""Logical LoC counting."""

from repro.metrics import logical_loc


def test_counts_code_lines():
    source = "x = 1\ny = 2\n"
    assert logical_loc(source) == 2


def test_blank_lines_ignored():
    source = "x = 1\n\n\ny = 2\n"
    assert logical_loc(source) == 2


def test_comments_ignored():
    source = "# a comment\nx = 1  # trailing\n# another\n"
    assert logical_loc(source) == 1


def test_module_docstring_ignored():
    source = '"""Module\ndocstring\nover lines."""\nx = 1\n'
    assert logical_loc(source) == 1


def test_function_docstring_ignored_body_counted():
    source = (
        "def f():\n"
        '    """Docs.\n'
        '    More docs."""\n'
        "    return 1\n"
    )
    assert logical_loc(source) == 2  # def line + return line


def test_multiline_statement_counts_each_line():
    source = "x = (1 +\n     2 +\n     3)\n"
    assert logical_loc(source) == 3


def test_string_literal_assignment_counts():
    # A string assigned to a variable is code, not a docstring.
    source = 's = """text\nmore"""\n'
    assert logical_loc(source) == 2


def test_class_docstring_ignored():
    source = (
        "class C:\n"
        '    """Doc."""\n'
        "    x = 1\n"
    )
    assert logical_loc(source) == 2


def test_empty_source():
    assert logical_loc("") == 0
