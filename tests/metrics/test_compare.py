"""The E1 comparison report on the real RandTree implementations."""

from repro.metrics import compare_randtree


def test_report_reproduces_paper_shape():
    """Section 4: exposing choices cut LoC by 43% and if-else per
    handler from 1.94 to 0.28.  The absolute numbers differ (Python vs
    Mace C++), but the direction and rough magnitude must hold."""
    report = compare_randtree()
    # LoC drops substantially.
    assert report.exposed.loc < report.baseline.loc
    assert report.loc_reduction > 0.20
    # Handler complexity drops by a large factor (paper: ~7x).
    assert report.baseline.branches_per_handler > 2.0
    assert report.exposed.branches_per_handler < 1.0
    ratio = report.baseline.branches_per_handler / report.exposed.branches_per_handler
    assert ratio > 3.0


def test_exposed_uses_guards_baseline_does_not():
    report = compare_randtree()
    assert report.baseline.complexity.guard_count == 0
    assert report.exposed.complexity.guard_count >= 4


def test_exposed_has_more_smaller_handlers():
    """The NFA rewrite splits one monolithic handler into several."""
    report = compare_randtree()
    assert report.exposed.complexity.handler_count > report.baseline.complexity.handler_count


def test_format_table_renders():
    table = compare_randtree().format_table()
    assert "lines of code" in table
    assert "if-else per handler" in table
    assert "LoC reduction" in table


def test_rows_structure():
    rows = compare_randtree().rows()
    names = [name for name, _, _ in rows]
    assert names == ["lines of code", "if-else per handler", "handlers", "guards"]
