"""Benchmark regression comparison: direction inference and verdicts."""

import json

from repro.metrics import compare_bench, compare_bench_files, metric_direction


def payload(**metrics):
    return {"bench": "T9", "wall_time_s": 1.0, "metrics": metrics}


def test_direction_inference():
    assert metric_direction("message-chaos.ops_per_sec_steering_on") == "higher"
    assert metric_direction("speedup") == "higher"
    assert metric_direction("policy.hit_rate") == "higher"
    assert metric_direction("checkpoint_bytes") == "lower"
    assert metric_direction("horizon_s") == "lower"
    assert metric_direction("score_wall_overhead") == "lower"
    assert metric_direction("seed") is None


def test_identical_payloads_pass():
    base = payload(ops_per_sec=100.0, repro_digest="abc", seed=1)
    cmp = compare_bench(base, json.loads(json.dumps(base)))
    assert cmp.ok
    assert not cmp.regressions


def test_throughput_drop_beyond_tolerance_fails():
    cmp = compare_bench(payload(ops_per_sec=100.0), payload(ops_per_sec=85.0))
    assert not cmp.ok
    (delta,) = cmp.regressions
    assert delta.verdict == "regressed"
    assert delta.change < -0.10
    assert "FAIL" in cmp.summary()


def test_throughput_drop_within_tolerance_passes():
    cmp = compare_bench(payload(ops_per_sec=100.0), payload(ops_per_sec=95.0))
    assert cmp.ok


def test_improvement_is_not_a_regression():
    cmp = compare_bench(payload(ops_per_sec=100.0), payload(ops_per_sec=200.0))
    assert cmp.ok
    assert cmp.deltas[0].verdict == "improved"


def test_cost_growth_fails():
    cmp = compare_bench(
        payload(checkpoint_bytes=1000), payload(checkpoint_bytes=1500)
    )
    assert not cmp.ok


def test_digest_flip_is_a_determinism_break():
    cmp = compare_bench(
        payload(repro_digest="aaaa", ops_per_sec=10.0),
        payload(repro_digest="bbbb", ops_per_sec=10.0),
    )
    assert not cmp.ok
    (delta,) = cmp.regressions
    assert delta.name == "repro_digest"
    assert delta.verdict == "changed"


def test_wall_time_and_quick_are_skipped():
    base = {"bench": "T9", "metrics": {"wall_time_s": 10.0, "quick": True,
                                       "ops_per_sec": 5.0}}
    cur = {"bench": "T9", "metrics": {"wall_time_s": 99.0, "quick": False,
                                      "ops_per_sec": 5.0}}
    cmp = compare_bench(base, cur)
    assert cmp.ok


def test_missing_baseline_metric_fails_new_metric_is_info():
    cmp = compare_bench(payload(ops_per_sec=10.0, extra=1.0),
                        payload(ops_per_sec=10.0, brand_new=2.0))
    assert cmp.missing == ["extra"]
    assert cmp.added == ["brand_new"]
    assert not cmp.ok


def test_nested_metrics_are_flattened():
    cmp = compare_bench(
        payload(steering={"policy": {"hit_rate": 0.9}}),
        payload(steering={"policy": {"hit_rate": 0.5}}),
    )
    assert not cmp.ok
    assert cmp.regressions[0].name == "steering.policy.hit_rate"


def test_compare_bench_files(tmp_path):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(payload(ops_per_sec=100.0)))
    cur.write_text(json.dumps(payload(ops_per_sec=100.0)))
    assert compare_bench_files(str(base), str(cur)).ok
