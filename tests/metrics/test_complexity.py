"""If-else-per-handler complexity metric."""

import textwrap

from repro.metrics import analyze_source, count_branches
import ast


def branches_of(code):
    return count_branches(ast.parse(textwrap.dedent(code)))


def test_plain_if_counts_one():
    assert branches_of("if x:\n    pass\n") == 1


def test_if_else_counts_two():
    assert branches_of("if x:\n    pass\nelse:\n    pass\n") == 2


def test_elif_chain():
    code = """
    if a:
        pass
    elif b:
        pass
    else:
        pass
    """
    # if (1) + elif (1, an If node) + final else (1) = 3
    assert branches_of(code) == 3


def test_ternary_counts():
    assert branches_of("x = 1 if a else 2\n") == 1


def test_nested_ifs_counted():
    code = """
    if a:
        if b:
            pass
    """
    assert branches_of(code) == 2


HANDLER_SOURCE = '''
from repro.statemachine import msg_handler, timer_handler

class S:
    @msg_handler(object)
    def complex_handler(self, src, msg):
        if msg:
            if src:
                pass
            else:
                pass
        return None

    @msg_handler(object, guard=lambda s, src, m: True)
    def guarded_handler(self, src, msg):
        pass

    @timer_handler("t")
    def timer_h(self, payload):
        if payload:
            pass

    def not_a_handler(self):
        if self:
            pass
'''


def test_analyze_source_finds_handlers_only():
    result = analyze_source(HANDLER_SOURCE)
    names = {h.name for h in result.handlers}
    assert names == {"complex_handler", "guarded_handler", "timer_h"}


def test_branches_per_handler_average():
    result = analyze_source(HANDLER_SOURCE)
    # complex_handler: if + inner if + else = 3; guarded: 0; timer: 1.
    assert result.total_branches == 4
    assert result.branches_per_handler == 4 / 3


def test_guard_counted():
    result = analyze_source(HANDLER_SOURCE)
    assert result.guard_count == 1
    guarded = [h for h in result.handlers if h.has_guard]
    assert [h.name for h in guarded] == ["guarded_handler"]


def test_empty_module_zero():
    result = analyze_source("x = 1\n")
    assert result.handler_count == 0
    assert result.branches_per_handler == 0.0
