"""The ``cli fuzz`` subcommand: campaigns, artifacts, corpus replay."""

import json
import os

import pytest

from repro.cli import build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
CORPUS_DIR = os.path.join(REPO_ROOT, "examples", "corpus")


def test_parser_defaults():
    args = build_parser().parse_args(["fuzz", "randtree"])
    assert args.budget == 2000
    assert args.seed == 1
    assert args.steering == "off"
    assert args.mode == "guided"
    assert args.shrink and args.forensics
    assert args.replay is None


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fuzz", "quicksort"])


def test_app_required_without_replay(capsys):
    assert main(["fuzz"]) == 2
    assert "an app is required" in capsys.readouterr().err


def test_small_campaign_prints_summary(capsys):
    assert main(["fuzz", "randtree", "--seed", "5", "--budget", "8",
                 "--no-shrink", "--no-forensics"]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out.splitlines()[0])
    assert summary["target"] == "randtree"
    assert summary["executions"] == 8
    assert summary["mode"] == "guided"


def test_campaign_with_violation_shrinks_and_writes(tmp_path, capsys):
    # Seed 1 on randtree finds its first violation at execution 140.
    assert main(["fuzz", "randtree", "--seed", "1", "--budget", "150",
                 "--stop-after", "1", "--no-forensics",
                 "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "violation:" in out
    assert "shrink:" in out
    assert "minimal plan:" in out
    artifact_path = tmp_path / "randtree-seed1.json"
    assert artifact_path.exists()
    artifact = json.loads(artifact_path.read_text())
    assert artifact["target"] == "randtree"
    assert artifact["violations"]
    # The written artifact immediately replays.
    assert main(["fuzz", "--replay", str(artifact_path)]) == 0
    assert "REPRODUCES" in capsys.readouterr().out


def test_replay_curated_corpus(capsys):
    assert main(["fuzz", "--replay", CORPUS_DIR]) == 0
    out = capsys.readouterr().out
    assert out.count("REPRODUCES") >= 2
    assert "DOES NOT REPRODUCE" not in out


def test_replay_empty_directory(tmp_path, capsys):
    assert main(["fuzz", "--replay", str(tmp_path)]) == 2
    assert "no artifacts" in capsys.readouterr().err
