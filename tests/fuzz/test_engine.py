"""Campaign engine: determinism, corpus policy, modes."""

import pytest

from repro.fuzz import FuzzCampaign, make_target


def _mini_campaign(**kwargs):
    defaults = dict(seed=5, budget=12, probes=False)
    defaults.update(kwargs)
    return FuzzCampaign(make_target("randtree"), **defaults)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown campaign mode"):
        _mini_campaign(mode="chaotic")


def test_unknown_target_rejected():
    with pytest.raises(ValueError, match="unknown fuzz target"):
        make_target("quicksort")


def test_same_seed_same_campaign():
    a = _mini_campaign().run()
    b = _mini_campaign().run()
    assert a.corpus_digests() == b.corpus_digests()
    assert a.coverage == b.coverage
    assert [(c.plan.digest(), c.seed, c.trace_digest) for c in a.counterexamples] \
        == [(c.plan.digest(), c.seed, c.trace_digest) for c in b.counterexamples]


def test_different_seed_different_campaign():
    a = _mini_campaign(seed=5).run()
    b = _mini_campaign(seed=6).run()
    assert a.corpus_digests() != b.corpus_digests()


def test_budget_is_execution_count():
    result = _mini_campaign(budget=9).run()
    assert result.executions == 9
    assert result.coverage["unique_traces"] <= 9


def test_random_mode_builds_no_corpus():
    result = _mini_campaign(mode="random").run()
    assert result.mode == "random"
    assert result.corpus == []
    # The baseline never consults plan-digest dedup.
    assert result.coverage["unique_plans"] == 0


def test_guided_mode_builds_corpus_and_dedups():
    result = _mini_campaign().run()
    assert result.corpus, "guided campaign admitted nothing to the corpus"
    assert result.coverage["unique_plans"] == result.executions
    for entry in result.corpus:
        assert entry.energy >= 1.0


def test_stop_after_halts_at_first_violation():
    # Seed/budget chosen so the campaign finds a violation (the bench
    # verifies this holds at full budget; here we only need stop_after
    # semantics when one appears).
    campaign = FuzzCampaign(make_target("randtree"), seed=1, budget=150,
                            probes=False, stop_after=1)
    result = campaign.run()
    if result.counterexamples:
        assert len(result.counterexamples) == 1
        assert result.executions <= 150
        assert result.first_violation_execution == result.counterexamples[0].execution


def test_stream_emits_progress_and_summary(tmp_path):
    from repro.obs.stream import read_stream

    path = str(tmp_path / "fuzz.jsonl")
    result = _mini_campaign(budget=12, stream=path, progress_every=5).run()
    records = read_stream(path)
    types = [r["type"] for r in records]
    assert types[0] == "header" and types[-1] == "summary"
    assert records[0]["kind"] == "fuzz"
    progress = [r for r in records if r["type"] == "event"
                and r["event"] == "fuzz.progress"]
    # One event every 5 executions plus the final one at budget end.
    assert [p["data"]["executions"] for p in progress] == [5, 10, 12]
    final = progress[-1]["data"]
    assert final["coverage_bits"] >= 0
    assert final["violations"] == result.summary()["violations"]
    assert records[-1]["data"]["executions"] == result.executions


def test_stream_does_not_change_campaign_results(tmp_path):
    baseline = _mini_campaign(budget=12).run()
    streamed = _mini_campaign(
        budget=12, stream=str(tmp_path / "fuzz.jsonl"), progress_every=3,
    ).run()
    assert streamed.summary() == baseline.summary()
