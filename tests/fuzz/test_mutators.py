"""Mutators: every output is a valid, in-range, bounded plan."""

import random

import pytest

from repro.chaos import CrashEvent, FaultPlan
from repro.fuzz.mutators import (
    MAX_EVENTS,
    MUTATORS,
    crossover,
    mutate_plan,
    random_event,
)

N_NODES = 6
HORIZON = 12.0


def _seed_plan(rng):
    return FaultPlan(events=[
        random_event(rng, N_NODES, HORIZON) for _ in range(rng.randint(1, 4))
    ])


def test_random_event_always_constructs():
    rng = random.Random(0)
    for _ in range(300):
        event = random_event(rng, N_NODES, HORIZON)
        FaultPlan(events=[event]).validate(N_NODES)


@pytest.mark.parametrize("mutator", MUTATORS, ids=lambda m: m.__name__)
def test_each_mutator_preserves_validity(mutator):
    rng = random.Random(7)
    for _ in range(60):
        plan = _seed_plan(rng)
        mutated = mutator(plan, rng, N_NODES, HORIZON)
        # Construction enforces per-event shape; validate() the rest.
        mutated.validate(N_NODES)
        assert len(mutated) <= MAX_EVENTS


def test_mutate_plan_fuzzes_validly_across_seeds():
    for seed in range(40):
        rng = random.Random(seed)
        plan = _seed_plan(rng)
        for _ in range(10):
            plan = mutate_plan(plan, rng, N_NODES, HORIZON)
            plan.validate(N_NODES)
            assert len(plan) <= MAX_EVENTS


def test_mutate_plan_deterministic():
    base = _seed_plan(random.Random(3))
    a = mutate_plan(base, random.Random(11), N_NODES, HORIZON)
    b = mutate_plan(base, random.Random(11), N_NODES, HORIZON)
    assert a.digest() == b.digest()


def test_mutate_plan_never_mutates_input():
    plan = _seed_plan(random.Random(5))
    before = plan.digest()
    mutate_plan(plan, random.Random(9), N_NODES, HORIZON)
    assert plan.digest() == before


def test_crossover_mixes_both_parents():
    rng = random.Random(2)
    a = FaultPlan(events=[CrashEvent(at=1.0, node=0, recover_at=2.0)])
    b = FaultPlan(events=[CrashEvent(at=3.0, node=1, recover_at=4.0)])
    seen_from_a = seen_from_b = False
    for _ in range(50):
        child = crossover(a, b, rng)
        child.validate(N_NODES)
        assert 1 <= len(child) <= MAX_EVENTS
        events = set(child.events)
        seen_from_a = seen_from_a or bool(events & set(a.events))
        seen_from_b = seen_from_b or bool(events & set(b.events))
    assert seen_from_a and seen_from_b
