"""Coverage signals: magnitude buckets, feature novelty, climb score."""

from repro.fuzz.coverage import (
    CoverageMap,
    chaos_features,
    magnitude,
    near_violation_score,
    prediction_features,
)


def test_magnitude_buckets():
    assert magnitude(0) == 0
    assert magnitude(1) == 1
    assert magnitude(3) == 2
    assert magnitude(4) == magnitude(7) == 3
    # Within-bucket changes are not novel; cross-bucket changes are.
    assert magnitude(80) == magnitude(96)
    assert magnitude(0) != magnitude(4)


def test_chaos_features_skip_zero_counts():
    features = chaos_features({"dropped": 5, "crashed": 0})
    assert features == {("chaos", "dropped", magnitude(5))}


def test_prediction_features_include_depth():
    features = prediction_features({"agreement": 3}, min_depth=2)
    assert ("pred", "agreement", magnitude(3)) in features
    assert ("pred-depth", 2) in features
    assert prediction_features({}, None) == set()


def test_coverage_map_novelty_is_first_seen_only():
    cov = CoverageMap()
    assert cov.observe(frozenset({("cat", "net.send", 3)})) == 1
    assert cov.observe(frozenset({("cat", "net.send", 3)})) == 0
    assert cov.observe(frozenset({("cat", "net.send", 3),
                                  ("cat", "net.deliver", 2)})) == 1
    assert len(cov) == 2


def test_coverage_map_digest_dedup():
    cov = CoverageMap()
    assert not cov.seen_trace("aaa")
    assert cov.seen_trace("aaa")
    assert not cov.seen_plan("bbb")
    assert cov.seen_plan("bbb")
    snap = cov.snapshot()
    assert snap["unique_traces"] == 1
    assert snap["unique_plans"] == 1


def test_near_violation_score_gradient():
    # No predicted violations -> no signal.
    assert near_violation_score({}, None, chain_depth=3) == 0.0
    # Closer predicted violations score strictly higher.
    far = near_violation_score({"agreement": 2}, min_depth=3, chain_depth=3)
    near = near_violation_score({"agreement": 2}, min_depth=1, chain_depth=3)
    assert near > far > 0.0
    # Breaking a second property's neighborhood adds signal.
    one = near_violation_score({"agreement": 4}, min_depth=2, chain_depth=3)
    two = near_violation_score({"agreement": 2, "coherence": 2},
                               min_depth=2, chain_depth=3)
    assert two > one
