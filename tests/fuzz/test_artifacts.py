"""Artifacts: round-trips, forensics, and the curated corpus replay."""

import os

import pytest

from repro.chaos import CrashEvent, FaultPlan, LinkFaultEvent
from repro.fuzz import (
    corpus_paths,
    counterexample_dict,
    forensics_for,
    load_counterexample,
    make_target,
    replay_counterexample,
    write_counterexample,
)
from repro.fuzz.artifacts import violation_nodes, violation_time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
CORPUS_DIR = os.path.join(REPO_ROOT, "examples", "corpus")

# The same known (plan, seed) paxos counterexample the shrinker tests
# use — see tests/fuzz/test_shrink.py.
KNOWN_PLAN = FaultPlan(events=[
    LinkFaultEvent(at=0.0, drop=0.34884797134928314,
                   reorder=0.009532294143417353, reorder_jitter=0.2),
    CrashEvent(at=1.7653531746583395, node=3, amnesia=True,
               recover_at=2.152004545156926),
])
KNOWN_SEED = 6


def test_violation_message_parsing():
    messages = ["t=7.5: randtree-invariant: inconsistent edge 2->1"]
    assert violation_nodes(messages) == [2, 1]
    assert violation_time(messages) == 7.5
    assert violation_time(["no timestamp here"]) is None


def test_artifact_round_trip(tmp_path):
    target = make_target("paxos")
    execution = target.execute(KNOWN_PLAN, KNOWN_SEED, probes=False)
    assert execution.violated
    artifact = counterexample_dict(
        target, KNOWN_PLAN, KNOWN_SEED, execution.violations,
        campaign_seed=1, execution=7, original_events=4,
        trace_digest=execution.trace_digest,
    )
    path = write_counterexample(str(tmp_path / "ce.json"), artifact)
    loaded = load_counterexample(path)
    assert loaded == artifact
    assert FaultPlan.from_dict(loaded["plan"]).digest() == KNOWN_PLAN.digest()
    # The grammar rendering in the artifact parses back to the plan.
    assert FaultPlan.parse(loaded["plan_text"]).digest() == KNOWN_PLAN.digest()


def test_replay_detects_reproduction(tmp_path):
    target = make_target("paxos")
    execution = target.execute(KNOWN_PLAN, KNOWN_SEED, probes=False)
    artifact = counterexample_dict(
        target, KNOWN_PLAN, KNOWN_SEED, execution.violations,
        trace_digest=execution.trace_digest,
    )
    _, reproduces = replay_counterexample(artifact)
    assert reproduces
    # A wrong recorded digest must fail the byte-determinism check.
    artifact["trace_digest"] = "0" * 64
    _, reproduces = replay_counterexample(artifact)
    assert not reproduces


def test_unsupported_version_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99}')
    with pytest.raises(ValueError, match="unsupported artifact version"):
        load_counterexample(str(path))


def test_forensics_explains_known_violation():
    target = make_target("paxos")
    explanation = forensics_for(target, KNOWN_PLAN, KNOWN_SEED)
    assert explanation is not None
    assert explanation.steps
    last = explanation.steps[-1]
    assert last.category == "net.deliver"
    # The chain ends at or before the violation instant.
    execution = target.execute(KNOWN_PLAN, KNOWN_SEED, probes=False)
    when = violation_time(execution.violations)
    assert when is not None and last.time <= when


def test_curated_corpus_exists():
    paths = corpus_paths(CORPUS_DIR)
    assert paths, f"no artifacts under {CORPUS_DIR}"
    targets = {load_counterexample(p)["target"] for p in paths}
    assert targets >= {"paxos", "randtree"}


@pytest.mark.parametrize(
    "path", corpus_paths(CORPUS_DIR),
    ids=[os.path.basename(p) for p in corpus_paths(CORPUS_DIR)],
)
def test_corpus_entry_replays(path):
    """The regression gate: every curated counterexample still
    reproduces its violation byte-for-byte."""
    artifact = load_counterexample(path)
    execution, reproduces = replay_counterexample(artifact)
    assert execution.violated, f"{path}: violation no longer reproduces"
    assert reproduces, f"{path}: trace digest drifted"


def test_corpus_paths_on_missing_directory():
    assert corpus_paths("/nonexistent/corpus/dir") == []
