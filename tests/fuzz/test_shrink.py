"""Shrinker: known counterexamples reduce to confirmed minimal plans."""

import pytest

from repro.chaos import CrashEvent, FaultPlan, LinkFaultEvent, SlowNodeEvent
from repro.fuzz import make_target, shrink_counterexample
from repro.fuzz.shrink import Shrinker

# A known Paxos agreement violation discovered by the seed-1 campaign:
# a lossy WAN plus one amnesia crash loses Learns, and the recovering
# node's gap-fill NOOP overwrites a decided slot.  Cluster seed 6.
VIOLATING_EVENTS = [
    LinkFaultEvent(at=0.0, drop=0.34884797134928314,
                   reorder=0.009532294143417353, reorder_jitter=0.2),
    CrashEvent(at=1.7653531746583395, node=3, amnesia=True,
               recover_at=2.152004545156926),
]
VIOLATING_SEED = 6


@pytest.fixture(scope="module")
def target():
    return make_target("paxos")


def _padded_plan():
    """The violating pair buried among irrelevant passenger events."""
    return FaultPlan(events=VIOLATING_EVENTS + [
        SlowNodeEvent(at=3.0, node=1, delay=0.05, until=5.0),
        CrashEvent(at=9.0, node=2, amnesia=False, recover_at=10.0),
    ])


def test_known_plan_still_violates(target):
    execution = target.execute(FaultPlan(events=list(VIOLATING_EVENTS)),
                               VIOLATING_SEED, probes=False)
    assert execution.violated
    assert any("agreement" in v for v in execution.violations)


def test_shrink_drops_passenger_events(target):
    result = shrink_counterexample(target, _padded_plan(), VIOLATING_SEED)
    assert result.confirmed
    assert result.violations
    assert len(result.shrunk) <= len(VIOLATING_EVENTS)
    assert result.ratio <= 0.5
    assert result.executions_used <= 200


def test_shrunk_plan_is_one_minimal(target):
    result = shrink_counterexample(target, _padded_plan(), VIOLATING_SEED)
    events = list(result.shrunk.events)
    if len(events) <= 1:
        return
    for index in range(len(events)):
        candidate = FaultPlan(events=events[:index] + events[index + 1:])
        execution = target.execute(candidate, VIOLATING_SEED, probes=False)
        assert not execution.violated, (
            f"dropping event {index} still violates - not 1-minimal"
        )


def test_shrink_is_deterministic(target):
    a = shrink_counterexample(target, _padded_plan(), VIOLATING_SEED)
    b = shrink_counterexample(target, _padded_plan(), VIOLATING_SEED)
    assert a.shrunk.digest() == b.shrunk.digest()
    assert a.horizon == b.horizon
    assert a.executions_used == b.executions_used


def test_horizon_trim_restores_target(target):
    before = target.horizon
    shrink_counterexample(target, _padded_plan(), VIOLATING_SEED)
    assert target.horizon == before


def test_non_violating_input_returns_unshrunk(target):
    plan = FaultPlan(events=[SlowNodeEvent(at=1.0, node=0, delay=0.01,
                                           until=2.0)])
    result = Shrinker(target).shrink(plan, VIOLATING_SEED)
    assert not result.confirmed
    assert result.shrunk is plan
    assert result.executions_used == 1
