"""Integration: the full Figure 1 loop on one cluster.

One scenario exercises every architectural component at once: services
as state machines over the simulated network, runtime interposition,
checkpoint exchange into state models, passive latency measurement into
network models, consequence prediction, predictive choice resolution,
and execution steering — and asserts on the *observable traces* each
component leaves.
"""

from dataclasses import dataclass

from repro.choice import PerformanceObjective
from repro.mc import SafetyProperty
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler

N = 4
FORBIDDEN = 3  # routing anything to node 3 violates safety


@dataclass
class Task(Message):
    work: int


class Router(Service):
    """Node 0 routes tasks to chosen peers; peers tally them."""

    state_fields = ("tally",)

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.tally = 0

    def on_init(self) -> None:
        if self.node_id == 0:
            self.set_timer("route", 0.6)

    @timer_handler("route")
    def on_route(self, payload) -> None:
        target = self.choose("route-target", [1, 2, 3])
        self.send(target, Task(work=1))
        self.set_timer("route", 0.6)

    @msg_handler(Task)
    def on_task(self, src: int, msg: Task) -> None:
        self.tally += msg.work


def total_tally(world):
    return float(sum(
        world.state_of(n).get("tally", 0)
        for n in world.live_nodes()
        if n != FORBIDDEN
    ))


def forbidden_untouched(world):
    if FORBIDDEN not in world.node_states:
        return True
    return world.state_of(FORBIDDEN).get("tally", 0) == 0


def build():
    cluster = Cluster(N, Router, seed=21)
    runtimes = install_crystalball(
        cluster, Router,
        objective=PerformanceObjective("tally", total_tally),
        properties=[SafetyProperty("forbidden-untouched", forbidden_untouched)],
        checkpoint_period=0.5,
        prediction_period=0.8,
        chain_depth=2,
        budget=400,
    )
    cluster.start_all()
    cluster.run(until=12.0)
    return cluster, runtimes


def test_full_loop():
    cluster, runtimes = build()

    # 1. Checkpoints flowed and built state models everywhere.
    for runtime in runtimes:
        assert set(runtime.state_model.known_nodes()) == set(range(N))

    # 2. Passive measurements populated the network model.
    model = runtimes[0].network_model
    assert 0.0 < model.latency(1, 0) < 1.0

    # 3. Predictions ran on schedule.
    assert all(r.stats["predictions"] > 0 for r in runtimes)

    # 4. Choices resolved predictively (scores traced).
    assert runtimes[0].stats["choices_resolved"] > 0
    assert len(cluster.sim.trace.select("runtime.choice_score")) > 0

    # 5. The objective was honoured: work went to allowed peers...
    assert cluster.service(1).tally + cluster.service(2).tally > 0
    # ...and the safety property kept node 3 untouched: the predictive
    # resolver never picks it (violating futures score -penalty).
    assert cluster.service(FORBIDDEN).tally == 0


def test_whole_scenario_deterministic():
    a_cluster, a_runtimes = build()
    b_cluster, b_runtimes = build()
    assert [s.tally for s in a_cluster.services] == [s.tally for s in b_cluster.services]
    assert [r.stats for r in a_runtimes] == [r.stats for r in b_runtimes]
    assert a_cluster.sim.events_dispatched == b_cluster.sim.events_dispatched


def test_trace_category_inventory():
    cluster, _ = build()
    trace = cluster.sim.trace
    assert trace.count("node.start") == N
    assert len(trace.select("net.send")) > 0
    assert len(trace.select("net.deliver")) > 0
    assert len(trace.select("choice.resolve")) > 0
