"""CrystalBall runtime over layered service stacks.

Composition must be transparent to the runtime: stacks checkpoint as
aggregates, so checkpoint exchange, state models, and predictive choice
resolution work unchanged over multi-layer nodes.
"""

from dataclasses import dataclass

from repro.choice import PerformanceObjective
from repro.runtime import install_crystalball
from repro.statemachine import (
    Cluster,
    Message,
    Service,
    make_stack_factory,
    msg_handler,
    timer_handler,
)

N = 3


@dataclass
class Credit(Message):
    amount: int


class LedgerLayer(Service):
    """Lower layer: receives credits."""

    state_fields = ("balance",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.balance = 0

    @msg_handler(Credit)
    def on_credit(self, src, msg):
        self.balance += msg.amount


class SpenderLayer(Service):
    """Upper layer: periodically credits a *chosen* peer's ledger."""

    state_fields = ("sent",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.sent = 0

    def on_init(self):
        if self.node_id == 0:
            self.set_timer("spend", 1.0)

    @timer_handler("spend")
    def on_spend(self, payload):
        target = self.choose("credit-target", [1, 2])
        # Cross-layer downcall: route through the ledger layer's context
        # so the message arrives addressed to the ledger.
        self.stack.layer("ledger").send(target, Credit(amount=1))
        self.sent += 1
        self.set_timer("spend", 1.0)


def factory_for(n=N):
    return make_stack_factory([
        ("ledger", lambda nid: LedgerLayer(nid)),
        ("spender", lambda nid: SpenderLayer(nid)),
    ])


def node2_weighted(world):
    total = 0.0
    for node_id in world.live_nodes():
        layered = world.state_of(node_id)
        weight = 3.0 if node_id == 2 else 1.0
        total += weight * layered.get("ledger", {}).get("balance", 0)
    return total


def test_runtime_over_stacks():
    factory = factory_for()
    cluster = Cluster(N, factory, seed=2)
    runtimes = install_crystalball(
        cluster, factory,
        objective=PerformanceObjective("weighted", node2_weighted),
        checkpoint_period=0.5, chain_depth=2, budget=200,
    )
    cluster.start_all()
    cluster.run(until=5.5)
    # Checkpoint exchange carried layered state.
    model = runtimes[0].state_model
    assert set(model.known_nodes()) == {0, 1, 2}
    assert "ledger" in model.get(1).state
    # Predictive resolution learned node 2's triple weight (the choice
    # is made in the spender layer, the payoff lands in the ledger layer
    # of a *different* node — lookahead crosses both boundaries).
    assert cluster.service(2).layer("ledger").balance == 5
    assert cluster.service(1).layer("ledger").balance == 0


def test_stack_replay_determinism():
    def run():
        factory = factory_for()
        cluster = Cluster(N, factory, seed=4)
        install_crystalball(
            cluster, factory,
            objective=PerformanceObjective("weighted", node2_weighted),
            checkpoint_period=0.5, chain_depth=2, budget=200,
        )
        cluster.start_all()
        cluster.run(until=4.5)
        return [s.layer("ledger").balance for s in cluster.services]

    assert run() == run()
