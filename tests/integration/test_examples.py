"""Example scripts run end-to-end (they assert their own invariants)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str) -> None:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, f"{name}.py"))
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # Examples import each other (shared_models reuses quickstart).
    sys.path.insert(0, os.path.abspath(EXAMPLES_DIR))
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.path.pop(0)


@pytest.mark.slow
def test_quickstart_example():
    run_example("quickstart")


@pytest.mark.slow
def test_safety_steering_example():
    run_example("safety_steering")


@pytest.mark.slow
def test_layered_overlay_example():
    run_example("layered_overlay")


@pytest.mark.slow
def test_model_checking_example():
    run_example("model_checking")


@pytest.mark.slow
def test_paxos_wan_example():
    run_example("paxos_wan")


@pytest.mark.slow
def test_shared_models_example():
    run_example("shared_models")
