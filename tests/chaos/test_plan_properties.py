"""Property tests: validation rejections and exact grammar round-trips.

Hypothesis generates arbitrary valid plans over all six event kinds and
asserts the three serializations — the line grammar (``to_text`` /
``parse``), JSON, and dicts — reconstruct an *equal* plan, floats
included (``to_text`` renders floats with ``repr``, which round-trips
exactly).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ChaosError,
    ClockSkewEvent,
    CrashEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    SlowNodeEvent,
)

# ----------------------------------------------------------------------
# Validation rejections (construction-time and world-level)
# ----------------------------------------------------------------------


class TestConstructionRejections:
    def test_end_before_start(self):
        with pytest.raises(ChaosError, match="ends before it starts"):
            CrashEvent(at=5.0, node=0, recover_at=1.0)
        with pytest.raises(ChaosError, match="ends before it starts"):
            PartitionEvent(at=5.0, groups=((0,), (1,)), heal_at=2.0)

    def test_negative_node(self):
        with pytest.raises(ChaosError, match="negative node"):
            CrashEvent(at=1.0, node=-3)

    def test_probability_out_of_range(self):
        with pytest.raises(ChaosError, match="outside \\[0, 1\\]"):
            LinkFaultEvent(at=0.0, drop=1.5)
        with pytest.raises(ChaosError, match="outside \\[0, 1\\]"):
            FlapEvent(at=0.0, a=0, b=1, period=1.0, duty=-0.1)

    def test_self_loop_link(self):
        with pytest.raises(ChaosError, match="self-loop"):
            FlapEvent(at=0.0, a=2, b=2, period=1.0)

    def test_empty_partition_group(self):
        with pytest.raises(ChaosError, match="group is empty"):
            PartitionEvent(at=0.0, groups=((0, 1), ()))

    def test_overlapping_partition_groups(self):
        with pytest.raises(ChaosError, match="two partition groups"):
            PartitionEvent(at=0.0, groups=((0, 1), (1, 2)))

    def test_nonpositive_flap_period(self):
        with pytest.raises(ChaosError, match="period must be positive"):
            FlapEvent(at=0.0, a=0, b=1, period=0.0)

    def test_negative_slow_delay(self):
        with pytest.raises(ChaosError, match="delay=-0.1 is negative"):
            SlowNodeEvent(at=0.0, node=1, delay=-0.1)


class TestWorldLevelValidation:
    def test_node_out_of_range(self):
        plan = FaultPlan(events=[CrashEvent(at=1.0, node=7)])
        plan.validate()                 # fine without world knowledge
        plan.validate(n_nodes=8)        # in range
        with pytest.raises(ChaosError, match="outside the 5-node world"):
            plan.validate(n_nodes=5)

    def test_partition_member_out_of_range(self):
        plan = FaultPlan(events=[
            PartitionEvent(at=0.0, groups=((0, 1), (2, 9)), heal_at=1.0),
        ])
        with pytest.raises(ChaosError, match="targets node 9"):
            plan.validate(n_nodes=5)

    def test_require_recovery(self):
        plan = FaultPlan(events=[CrashEvent(at=1.0, node=0)])
        plan.validate(n_nodes=3)
        with pytest.raises(ChaosError, match="recover"):
            plan.validate(n_nodes=3, require_recovery=True)
        recovered = FaultPlan(events=[CrashEvent(at=1.0, node=0,
                                                 recover_at=2.0)])
        recovered.validate(n_nodes=3, require_recovery=True)


# ----------------------------------------------------------------------
# Hypothesis round-trip over arbitrary valid plans
# ----------------------------------------------------------------------

times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                  allow_infinity=False)
probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                  allow_infinity=False)
nodes = st.integers(min_value=0, max_value=31)


def _with_end(start_strategy, optional=True):
    """(at, end) pairs where the end never precedes the start."""
    base = st.tuples(start_strategy, times).map(
        lambda pair: (pair[0], pair[0] + pair[1]))
    if optional:
        return st.tuples(start_strategy, st.none()) | base
    return base


@st.composite
def partition_events(draw):
    at, heal_at = draw(_with_end(times))
    members = draw(st.lists(nodes, min_size=2, max_size=8, unique=True))
    cut = draw(st.integers(min_value=1, max_value=len(members) - 1))
    return PartitionEvent(
        at=at,
        groups=(tuple(sorted(members[:cut])), tuple(sorted(members[cut:]))),
        heal_at=heal_at,
    )


@st.composite
def flap_events(draw):
    at, until = draw(_with_end(times))
    a, b = draw(st.lists(nodes, min_size=2, max_size=2, unique=True))
    return FlapEvent(at=at, a=a, b=b,
                     period=draw(st.floats(min_value=1e-3, max_value=60.0,
                                           allow_nan=False)),
                     duty=draw(probs), until=until)


@st.composite
def crash_events(draw):
    at, recover_at = draw(_with_end(times))
    return CrashEvent(at=at, node=draw(nodes),
                      amnesia=draw(st.booleans()), recover_at=recover_at)


@st.composite
def link_events(draw):
    if draw(st.booleans()):
        a, b = None, None
    else:
        a, b = draw(st.lists(nodes, min_size=2, max_size=2, unique=True))
    return LinkFaultEvent(at=draw(times), a=a, b=b,
                          drop=draw(probs), duplicate=draw(probs),
                          reorder=draw(probs), reorder_jitter=draw(probs),
                          corrupt=draw(probs))


@st.composite
def slow_events(draw):
    at, until = draw(_with_end(times))
    return SlowNodeEvent(at=at, node=draw(nodes),
                         delay=draw(st.floats(min_value=0.0, max_value=10.0,
                                              allow_nan=False)),
                         until=until)


@st.composite
def skew_events(draw):
    return ClockSkewEvent(at=draw(times), node=draw(nodes),
                          offset=draw(st.floats(min_value=-60.0, max_value=60.0,
                                                allow_nan=False)))


fault_events = st.one_of(partition_events(), flap_events(), crash_events(),
                         link_events(), slow_events(), skew_events())

fault_plans = st.builds(
    lambda events, name: FaultPlan(events=events, name=name),
    st.lists(fault_events, max_size=8),
    st.text(alphabet=st.characters(whitelist_categories=("L", "N")),
            max_size=12),
)


@settings(max_examples=200, deadline=None)
@given(fault_plans)
def test_text_grammar_round_trip(plan):
    clone = FaultPlan.parse(plan.to_text())
    assert clone.events == plan.events


@settings(max_examples=200, deadline=None)
@given(fault_plans)
def test_json_round_trip(plan):
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.events == plan.events
    assert clone.name == plan.name
    assert clone.digest() == plan.digest()


@settings(max_examples=200, deadline=None)
@given(fault_plans)
def test_dict_round_trip(plan):
    assert FaultPlan.from_dict(plan.to_dict()).events == plan.events


@settings(max_examples=100, deadline=None)
@given(fault_plans)
def test_validate_passes_for_generated_plans(plan):
    # Every generated node id is < 32 by construction.
    assert plan.validate(n_nodes=32) is plan
