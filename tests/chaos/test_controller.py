"""ChaosController: arming fault plans against a live cluster."""

from dataclasses import dataclass

from repro.chaos import (
    ChaosController,
    ClockSkewEvent,
    CrashEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    SlowNodeEvent,
)
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Tick(Message):
    k: int


class TickerService(Service):
    """Counts local ticks and peer ticks — state that evolves over time."""

    state_fields = ("count", "heard")

    def __init__(self, node_id: int, n: int = 3) -> None:
        super().__init__(node_id)
        self.n = n
        self.count = 0
        self.heard = 0

    def on_init(self) -> None:
        self.set_timer("tick", 0.1)

    @timer_handler("tick")
    def on_tick(self, payload) -> None:
        self.count += 1
        self.send((self.node_id + 1) % self.n, Tick(k=self.count))
        self.set_timer("tick", 0.1)

    @msg_handler(Tick)
    def on_peer_tick(self, src: int, msg: Tick) -> None:
        self.heard += 1


def make_cluster(n=3, seed=4):
    return Cluster(n, lambda nid: TickerService(nid, n), seed=seed)


def run_with(plan, n=3, until=5.0, checkpoint_period=0.0):
    cluster = make_cluster(n=n)
    controller = ChaosController(cluster, plan,
                                 checkpoint_period=checkpoint_period)
    controller.arm()
    cluster.start_all()
    cluster.run(until=until)
    return cluster, controller


def test_partition_blocks_then_heals():
    plan = FaultPlan(events=[
        PartitionEvent(at=1.0, groups=((0,), (1, 2)), heal_at=2.0),
    ])
    cluster, _ = run_with(plan, until=4.0)
    drops = cluster.sim.trace.select("net.drop")
    partition_drops = [r for r in drops if r.data.get("reason") == "partition"]
    assert partition_drops
    assert all(1.0 <= r.time < 2.0 for r in partition_drops)
    # Traffic flows again after the heal.
    assert any(r.time > 2.0 for r in cluster.sim.trace.select("net.deliver"))


def test_crash_with_amnesia_recovers_fresh():
    plan = FaultPlan(events=[
        CrashEvent(at=1.05, node=1, amnesia=True, recover_at=2.05),
    ])
    cluster, _ = run_with(plan, until=2.1)
    service = cluster.service(1)
    # ~10 ticks happened before the crash; amnesia wiped them.
    assert service.count <= 1


def test_crash_without_checkpointing_keeps_crash_time_state():
    # No periodic checkpoints configured: non-amnesia recovery models
    # perfect stable storage (resume from the crash-time state).
    plan = FaultPlan(events=[
        CrashEvent(at=1.05, node=1, amnesia=False, recover_at=2.05),
    ])
    cluster, _ = run_with(plan, until=2.1)
    assert cluster.service(1).count >= 9


def test_crash_recovery_restores_last_checkpoint():
    plan = FaultPlan(events=[
        CrashEvent(at=2.05, node=1, amnesia=False, recover_at=3.05),
    ])
    cluster, controller = run_with(plan, until=3.1, checkpoint_period=1.0)
    saved = controller.saved_checkpoint(1)
    assert saved is not None
    # Recovery rolled back to the t=2.0 checkpoint: the recovered count
    # matches what was persisted, not the crash-time value.
    assert cluster.service(1).count == saved["count"]


def test_checkpoints_skip_down_nodes():
    plan = FaultPlan(events=[
        CrashEvent(at=0.5, node=2, amnesia=False, recover_at=4.5),
    ])
    cluster, controller = run_with(plan, until=4.0, checkpoint_period=1.0)
    assert controller.saved_checkpoint(0) is not None
    assert controller.saved_checkpoint(2) is None  # down at every tick


def test_flap_and_link_profile_installed():
    plan = FaultPlan(events=[
        FlapEvent(at=0.0, a=0, b=1, period=1.0, duty=0.5, until=3.0),
        LinkFaultEvent(at=1.0, drop=0.2),
    ])
    cluster, controller = run_with(plan, until=4.0)
    assert controller.stats()["flap_dropped"] > 0
    assert controller.stats()["dropped"] > 0
    assert controller.link_chaos.profile_for(0, 2).drop == 0.2


def test_slow_and_skew_events_apply():
    plan = FaultPlan(events=[
        SlowNodeEvent(at=0.5, node=1, delay=0.3, until=2.0),
        ClockSkewEvent(at=1.0, node=2, offset=5.0),
    ])
    cluster, controller = run_with(plan, until=3.0)
    assert cluster.node(2).clock_skew == 5.0
    # The service-visible clock is skewed; the simulator clock is not.
    assert cluster.service(2).now() == cluster.sim.now + 5.0
    assert controller.link_chaos.slow_delay(1) == 0.0  # cleared at until


def test_arm_is_idempotent():
    plan = FaultPlan(events=[
        CrashEvent(at=1.0, node=1, amnesia=True, recover_at=2.0),
    ])
    cluster = make_cluster()
    controller = ChaosController(cluster, plan)
    controller.arm()
    controller.arm()
    cluster.start_all()
    cluster.run(until=3.0)
    # One crash, one recovery — not doubled.
    assert cluster.sim.trace.count("chaos.crash") == 1
    assert cluster.sim.trace.count("chaos.recover") == 1


def test_crash_of_already_down_node_is_noop():
    plan = FaultPlan(events=[
        CrashEvent(at=1.0, node=1, amnesia=True, recover_at=3.0),
        CrashEvent(at=1.5, node=1, amnesia=True, recover_at=2.0),
    ])
    cluster, _ = run_with(plan, until=4.0)
    assert cluster.sim.trace.count("chaos.crash") == 1
    assert cluster.node(1).is_up
