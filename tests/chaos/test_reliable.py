"""At-least-once delivery layer: ack/retry/dedup over a lossy net."""

import pytest

from repro.chaos import (
    LinkChaos,
    LinkFaultProfile,
    ReliabilityConfig,
    ReliableLayer,
)
from repro.net import Network, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_layer(n=3, seed=9, config=None, profile=None):
    sim = Simulator(seed=seed)
    net = Network(sim, full_mesh(n, latency=0.02), LivenessRegistry())
    if profile is not None:
        chaos = LinkChaos(sim)
        chaos.set_profile(profile)
        net.add_fault_interposer(chaos)
    layer = ReliableLayer(net, config)
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        layer.attach(i, lambda src, dst, payload, i=i: inboxes[i].append(payload))
    return sim, net, layer, inboxes


def test_config_validated():
    with pytest.raises(ValueError):
        ReliabilityConfig(timeout=0.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ReliabilityConfig(max_retries=-1)


def test_clean_link_delivers_unwrapped_payload():
    sim, net, layer, inboxes = make_layer()
    layer.send(0, 1, "hello")
    sim.run()
    assert inboxes[1] == ["hello"]
    assert layer.stats["acked"] == 1
    assert layer.pending_count == 0


def test_delegates_to_raw_network():
    sim, net, layer, _ = make_layer()
    assert layer.liveness is net.liveness
    assert layer.topology is net.topology


def test_unreliable_sends_pass_through_as_datagrams():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(drop=0.9))
    for _ in range(20):
        layer.send(0, 1, "dgram", reliable=False)
    sim.run()
    assert 0 < len(inboxes[1]) < 20          # lossy — no retries
    assert layer.stats["sent"] == 0          # never entered the protocol


def test_all_messages_delivered_under_heavy_loss():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(drop=0.3, duplicate=0.1))
    for k in range(100):
        layer.send(0, 1, k)
    sim.run()
    assert sorted(inboxes[1]) == list(range(100))   # exactly once, in some order
    assert layer.stats["retransmissions"] > 0
    assert layer.stats["duplicates_suppressed"] > 0


def test_duplicate_copies_suppressed_but_acked():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(duplicate=0.99))
    layer.send(0, 1, "once")
    sim.run()
    assert inboxes[1] == ["once"]


def test_gives_up_after_max_retries():
    sim, net, layer, inboxes = make_layer(
        config=ReliabilityConfig(timeout=0.1, backoff=1.0, max_retries=2),
        profile=LinkFaultProfile(drop=0.999))
    layer.send(0, 1, "doomed")
    sim.run()
    assert inboxes[1] == []
    assert layer.stats["gave_up"] == 1
    assert layer.pending_count == 0


def test_sender_crash_abandons_outbox():
    sim, net, layer, inboxes = make_layer(
        config=ReliabilityConfig(timeout=0.5),
        profile=LinkFaultProfile(drop=0.999))
    layer.send(0, 1, "orphaned")
    sim.schedule_at(0.25, lambda: net.liveness.fail(0))
    sim.run(until=3.0)
    assert layer.pending_count == 0
    assert sim.trace.count("reliable.abandoned") == 1


def test_dedup_survives_receiver_amnesia():
    # Dedup state lives in the layer (the "NIC"), below the service, so
    # a recovered node does not re-deliver an already-seen message.
    sim, net, layer, inboxes = make_layer(
        config=ReliabilityConfig(timeout=0.3))

    def drop_acks_once():
        # Force one retransmission window by crashing/recovering the
        # receiver between the copies.
        net.liveness.fail(1)

    layer.send(0, 1, "m")
    sim.schedule_at(0.001, drop_acks_once)
    sim.schedule_at(0.2, lambda: net.liveness.recover(1))
    sim.run()
    assert inboxes[1] == ["m"]


def test_deterministic_given_seed():
    outcomes = []
    for _ in range(2):
        sim, net, layer, inboxes = make_layer(
            seed=13, profile=LinkFaultProfile(drop=0.4))
        for k in range(30):
            layer.send(0, 1, k)
        sim.run()
        outcomes.append((inboxes[1], dict(layer.stats)))
    assert outcomes[0] == outcomes[1]


def test_ack_cancels_pending_retry_timer():
    # Regression: every acked send used to leave its retry event live
    # in the simulator queue until the timeout expired — an unbounded
    # queue of dead events on busy clean links.
    sim, net, layer, inboxes = make_layer()
    for k in range(20):
        layer.send(0, 1, k)
    sim.run(until=0.1)  # acks arrive ~0.04s; retries were due at 0.3s
    assert layer.stats["acked"] == 20
    assert layer.pending_count == 0
    assert len(sim.queue) == 0


def test_reliable_stats_are_registry_backed():
    sim, net, layer, inboxes = make_layer()
    layer.send(0, 1, "hello")
    sim.run()
    assert dict(layer.stats) == {
        "sent": 1, "acked": 1, "retransmissions": 0,
        "duplicates_suppressed": 0, "gave_up": 0,
    }
    assert layer.metrics.counter("reliable.acked").value == 1
