"""At-least-once delivery layer: ack/retry/dedup over a lossy net."""

import pytest

from repro.chaos import (
    LinkChaos,
    LinkFaultProfile,
    ReliabilityConfig,
    ReliableLayer,
)
from repro.net import Network, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_layer(n=3, seed=9, config=None, profile=None):
    sim = Simulator(seed=seed)
    net = Network(sim, full_mesh(n, latency=0.02), LivenessRegistry())
    if profile is not None:
        chaos = LinkChaos(sim)
        chaos.set_profile(profile)
        net.add_fault_interposer(chaos)
    layer = ReliableLayer(net, config)
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        layer.attach(i, lambda src, dst, payload, i=i: inboxes[i].append(payload))
    return sim, net, layer, inboxes


def test_config_validated():
    with pytest.raises(ValueError):
        ReliabilityConfig(timeout=0.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ReliabilityConfig(max_retries=-1)


def test_clean_link_delivers_unwrapped_payload():
    sim, net, layer, inboxes = make_layer()
    layer.send(0, 1, "hello")
    sim.run()
    assert inboxes[1] == ["hello"]
    assert layer.stats["acked"] == 1
    assert layer.pending_count == 0


def test_delegates_to_raw_network():
    sim, net, layer, _ = make_layer()
    assert layer.liveness is net.liveness
    assert layer.topology is net.topology


def test_unreliable_sends_pass_through_as_datagrams():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(drop=0.9))
    for _ in range(20):
        layer.send(0, 1, "dgram", reliable=False)
    sim.run()
    assert 0 < len(inboxes[1]) < 20          # lossy — no retries
    assert layer.stats["sent"] == 0          # never entered the protocol


def test_all_messages_delivered_under_heavy_loss():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(drop=0.3, duplicate=0.1))
    for k in range(100):
        layer.send(0, 1, k)
    sim.run()
    assert sorted(inboxes[1]) == list(range(100))   # exactly once, in some order
    assert layer.stats["retransmissions"] > 0
    assert layer.stats["duplicates_suppressed"] > 0


def test_duplicate_copies_suppressed_but_acked():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(duplicate=0.99))
    layer.send(0, 1, "once")
    sim.run()
    assert inboxes[1] == ["once"]


def test_gives_up_after_max_retries():
    sim, net, layer, inboxes = make_layer(
        config=ReliabilityConfig(timeout=0.1, backoff=1.0, max_retries=2),
        profile=LinkFaultProfile(drop=0.999))
    layer.send(0, 1, "doomed")
    sim.run()
    assert inboxes[1] == []
    assert layer.stats["gave_up"] == 1
    assert layer.pending_count == 0


def test_sender_crash_abandons_outbox():
    sim, net, layer, inboxes = make_layer(
        config=ReliabilityConfig(timeout=0.5),
        profile=LinkFaultProfile(drop=0.999))
    layer.send(0, 1, "orphaned")
    sim.schedule_at(0.25, lambda: net.liveness.fail(0))
    sim.run(until=3.0)
    assert layer.pending_count == 0
    assert sim.trace.count("reliable.abandoned") == 1


def test_dedup_survives_receiver_amnesia():
    # Dedup state lives in the layer (the "NIC"), below the service, so
    # a recovered node does not re-deliver an already-seen message.
    sim, net, layer, inboxes = make_layer(
        config=ReliabilityConfig(timeout=0.3))

    def drop_acks_once():
        # Force one retransmission window by crashing/recovering the
        # receiver between the copies.
        net.liveness.fail(1)

    layer.send(0, 1, "m")
    sim.schedule_at(0.001, drop_acks_once)
    sim.schedule_at(0.2, lambda: net.liveness.recover(1))
    sim.run()
    assert inboxes[1] == ["m"]


def test_deterministic_given_seed():
    outcomes = []
    for _ in range(2):
        sim, net, layer, inboxes = make_layer(
            seed=13, profile=LinkFaultProfile(drop=0.4))
        for k in range(30):
            layer.send(0, 1, k)
        sim.run()
        outcomes.append((inboxes[1], dict(layer.stats)))
    assert outcomes[0] == outcomes[1]


def test_ack_cancels_pending_retry_timer():
    # Regression: every acked send used to leave its retry event live
    # in the simulator queue until the timeout expired — an unbounded
    # queue of dead events on busy clean links.
    sim, net, layer, inboxes = make_layer()
    for k in range(20):
        layer.send(0, 1, k)
    sim.run(until=0.1)  # acks arrive ~0.04s; retries were due at 0.3s
    assert layer.stats["acked"] == 20
    assert layer.pending_count == 0
    assert len(sim.queue) == 0


def test_reliable_stats_are_registry_backed():
    sim, net, layer, inboxes = make_layer()
    layer.send(0, 1, "hello")
    sim.run()
    assert dict(layer.stats) == {
        "sent": 1, "acked": 1, "retransmissions": 0,
        "duplicates_suppressed": 0, "gave_up": 0,
    }
    assert layer.metrics.counter("reliable.acked").value == 1


# ----------------------------------------------------------------------
# Causal attribution of retransmissions and duplicates
# ----------------------------------------------------------------------


def make_causal_layer(n=2, seed=9, profile=None, config=None):
    from repro.obs import enable_causal_tracing

    sim, net, layer, inboxes = make_layer(n=n, seed=seed, config=config,
                                          profile=profile)
    tracer = enable_causal_tracing(sim)
    return sim, net, layer, inboxes, tracer


def send_in_dispatch(sim, layer, tracer, src, dst, payload):
    """Send from inside an (artificial) dispatch scope, the way a
    service handler would — so the pending send has a causal cause."""
    root = tracer.local_event(src, "app.op", root=True)
    sim.trace.record(sim.now, "app.op", node=src)
    with tracer.executing(root):
        layer.send(src, dst, payload)
    return root


def test_retransmissions_record_net_retry():
    sim, net, layer, inboxes = make_layer(
        profile=LinkFaultProfile(drop=0.99),
        config=ReliabilityConfig(timeout=0.1, max_retries=3))
    layer.send(0, 1, "m")
    sim.run(until=2.0)
    retries = sim.trace.select("net.retry")
    assert len(retries) == 3
    assert retries[0].node == 0
    assert retries[0].data == {"dst": 1, "seq": 0, "attempt": 2}
    assert layer.stats["retransmissions"] == 3


def test_net_retry_records_identical_with_causal_on():
    def run(causal):
        if causal:
            sim, net, layer, inboxes, tracer = make_causal_layer(
                profile=LinkFaultProfile(drop=0.99),
                config=ReliabilityConfig(timeout=0.1, max_retries=3))
        else:
            sim, net, layer, inboxes = make_layer(
                profile=LinkFaultProfile(drop=0.99),
                config=ReliabilityConfig(timeout=0.1, max_retries=3))
        layer.send(0, 1, "m")
        sim.run(until=2.0)
        return [(r.time, r.node, dict(r.data))
                for r in sim.trace.select("net.retry")]

    assert run(causal=True) == run(causal=False)


def test_retry_attempts_share_the_original_trace():
    sim, net, layer, inboxes, tracer = make_causal_layer(
        profile=LinkFaultProfile(drop=0.99),
        config=ReliabilityConfig(timeout=0.1, max_retries=2))
    root = send_in_dispatch(sim, layer, tracer, 0, 1, "m")
    sim.run(until=2.0)
    root_trace = tracer.trace_of(root)
    retries = sim.trace.select("net.retry")
    assert len(retries) == 2
    for rec in retries:
        # each retransmission re-entered the original dispatch scope
        assert rec.causal["in"] == root
        assert rec.causal["trace"] == root_trace
    # every dropped attempt still chains back to the original trace
    drops = [r for r in sim.trace.select("net.drop")
             if r.data.get("kind") == "DataEnvelope"]
    assert drops
    assert {r.causal["trace"] for r in drops} == {root_trace}


def test_duplicate_delivery_attributable_to_original_send():
    from repro.obs import HappensBeforeGraph

    sim, net, layer, inboxes, tracer = make_causal_layer(
        profile=LinkFaultProfile(duplicate=0.99))
    send_in_dispatch(sim, layer, tracer, 0, 1, "m")
    sim.run(until=2.0)
    assert inboxes[1] == ["m"]  # the layer suppressed the duplicate
    graph = HappensBeforeGraph.from_trace(sim.trace)
    dups = [e for e in graph.by_category("net.deliver") if e.dup]
    assert dups
    originals = [e for e in graph.by_category("net.deliver") if not e.dup]
    for dup in dups:
        parent = graph.event(dup.parent)
        assert parent is not None and parent.category == "net.send"
        # the duplicate's cause is the same send as some real delivery
        assert any(o.parent == dup.parent for o in originals)


def test_retry_delivery_carries_attempt_number():
    # Drop the first transmission deterministically (and nothing else):
    # the delivery that finally lands must be stamped attempt=2 and
    # still chain back to the originating dispatch.
    sim, net, layer, inboxes, tracer = make_causal_layer(
        config=ReliabilityConfig(timeout=0.1, max_retries=3))
    chaos = LinkChaos(sim)
    chaos.set_profile(LinkFaultProfile(drop=0.99))
    net.add_fault_interposer(chaos)
    root = send_in_dispatch(sim, layer, tracer, 0, 1, "m")
    sim.run(until=0.05)          # first attempt dropped
    chaos.set_profile(LinkFaultProfile())
    sim.run(until=2.0)           # retry goes through
    assert inboxes[1] == ["m"]
    delivers = [r for r in sim.trace.select("net.deliver")
                if r.data.get("src") == 0]
    assert delivers
    landed = delivers[-1]
    assert landed.causal.get("attempt") == 2
    from repro.obs import HappensBeforeGraph
    graph = HappensBeforeGraph.from_trace(sim.trace)
    chain = graph.chain(landed.causal["ev"])
    assert chain[0].id == root  # back to the dispatch that sent it
