"""Link-level fault injection: profiles, flaps, the interposer hook."""

import pytest

from repro.chaos import (
    ChaosError,
    CorruptedPayload,
    FaultDecision,
    FlapSpec,
    LinkChaos,
    LinkFaultProfile,
    NULL_PROFILE,
)
from repro.net import Network, full_mesh
from repro.sim import LivenessRegistry, Simulator


def make_net(n=3, seed=7, latency=0.05):
    sim = Simulator(seed=seed)
    net = Network(sim, full_mesh(n, latency=latency), LivenessRegistry())
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(i, lambda src, dst, payload, i=i: inboxes[i].append(payload))
    return sim, net, inboxes


class TestLinkFaultProfile:
    def test_probabilities_validated(self):
        with pytest.raises(ChaosError):
            LinkFaultProfile(drop=1.0)
        with pytest.raises(ChaosError):
            LinkFaultProfile(corrupt=-0.1)
        with pytest.raises(ChaosError):
            LinkFaultProfile(reorder=0.1, reorder_jitter=0.0)

    def test_null_profile(self):
        assert NULL_PROFILE.is_null
        assert not LinkFaultProfile(drop=0.1).is_null


class TestFlapSpec:
    def test_down_during_duty_fraction(self):
        flap = FlapSpec(a=0, b=1, start=2.0, period=2.0, duty=0.5, until=10.0)
        assert not flap.is_down(1.9)      # before start
        assert flap.is_down(2.5)          # first down-phase
        assert not flap.is_down(3.5)      # up-phase
        assert flap.is_down(4.1)          # next period's down-phase
        assert not flap.is_down(10.0)     # expired

    def test_is_pure_function_of_time(self):
        flap = FlapSpec(a=0, b=1, period=1.0, duty=0.3)
        assert [flap.is_down(t / 10) for t in range(20)] == \
               [flap.is_down(t / 10) for t in range(20)]

    def test_invalid_specs_rejected(self):
        with pytest.raises(ChaosError):
            FlapSpec(a=0, b=1, period=0.0)
        with pytest.raises(ChaosError):
            FlapSpec(a=0, b=1, duty=1.0)


class TestLinkChaos:
    def test_null_by_default(self):
        sim, net, _ = make_net()
        chaos = LinkChaos(sim)
        assert chaos.apply(0, 1, "m", 0.0) is None

    def test_drop_probability_applies(self):
        sim, net, inboxes = make_net()
        chaos = LinkChaos(sim)
        chaos.set_profile(LinkFaultProfile(drop=0.5))
        net.add_fault_interposer(chaos)
        for _ in range(100):
            net.send(0, 1, "m", reliable=False)
        sim.run()
        assert 0 < len(inboxes[1]) < 100
        assert chaos.stats["dropped"] == 100 - len(inboxes[1])

    def test_drop_applies_to_reliable_sends_too(self):
        # Chaos drops model adversarial loss the TCP abstraction cannot
        # mask — unlike link.loss, they hit reliable traffic as well.
        sim, net, inboxes = make_net()
        chaos = LinkChaos(sim)
        chaos.set_profile(LinkFaultProfile(drop=0.9))
        net.add_fault_interposer(chaos)
        for _ in range(50):
            net.send(0, 1, "m", reliable=True)
        sim.run()
        assert len(inboxes[1]) < 50

    def test_duplicate_delivers_extra_copy(self):
        sim, net, inboxes = make_net()
        chaos = LinkChaos(sim)
        chaos.set_profile(LinkFaultProfile(duplicate=0.99))
        net.add_fault_interposer(chaos)
        net.send(0, 1, "m", reliable=False)
        sim.run()
        assert len(inboxes[1]) == 2
        assert net.messages_duplicated == 1

    def test_corrupt_replaces_payload_with_marker(self):
        sim, net, inboxes = make_net()
        chaos = LinkChaos(sim)
        chaos.set_profile(LinkFaultProfile(corrupt=0.99))
        net.add_fault_interposer(chaos)
        net.send(0, 1, "precious", reliable=False)
        sim.run()
        [received] = inboxes[1]
        assert isinstance(received, CorruptedPayload)
        assert received.original_type == "str"

    def test_reorder_lets_later_send_overtake(self):
        sim, net, inboxes = make_net(latency=0.05)
        chaos = LinkChaos(sim)
        # First message displaced by ~0.5s, second untouched.
        class OneShot:
            fired = False
            def apply(self, src, dst, payload, now):
                if not self.fired:
                    self.fired = True
                    return FaultDecision(extra_delay=0.5)
                return None
        net.add_fault_interposer(OneShot())
        net.send(0, 1, "first", reliable=True)
        net.send(0, 1, "second", reliable=True)
        sim.run()
        assert inboxes[1] == ["second", "first"]

    def test_per_pair_profile_overrides_default(self):
        sim, net, _ = make_net()
        chaos = LinkChaos(sim)
        chaos.set_profile(LinkFaultProfile(drop=0.1))
        chaos.set_profile(LinkFaultProfile(drop=0.5), 0, 2)
        assert chaos.profile_for(0, 1).drop == 0.1
        assert chaos.profile_for(2, 0).drop == 0.5  # unordered pair

    def test_flap_drops_while_down(self):
        sim, net, inboxes = make_net()
        chaos = LinkChaos(sim)
        chaos.add_flap(FlapSpec(a=0, b=1, start=0.0, period=2.0, duty=0.5))
        net.add_fault_interposer(chaos)
        net.send(0, 1, "down-phase", reliable=False)   # t=0: down
        sim.schedule_at(1.5, lambda: net.send(0, 1, "up-phase", reliable=False))
        sim.run()
        assert inboxes[1] == ["up-phase"]
        assert chaos.stats["flap_dropped"] == 1

    def test_slow_node_delays_inbound(self):
        sim, net, inboxes = make_net(latency=0.05)
        chaos = LinkChaos(sim)
        chaos.set_slow(1, 1.0)
        net.add_fault_interposer(chaos)
        arrivals = []
        net.attach(1, lambda src, dst, payload: arrivals.append(sim.now))
        net.send(0, 1, "m", reliable=False)
        net.send(0, 2, "m", reliable=False)
        sim.run()
        assert arrivals[0] > 1.0
        chaos.set_slow(1, None)
        assert chaos.slow_delay(1) == 0.0

    def test_same_seed_same_fault_pattern(self):
        outcomes = []
        for _ in range(2):
            sim, net, inboxes = make_net(seed=11)
            chaos = LinkChaos(sim)
            chaos.set_profile(LinkFaultProfile(drop=0.3, duplicate=0.2,
                                               reorder=0.2))
            net.add_fault_interposer(chaos)
            for _ in range(50):
                net.send(0, 1, "m", reliable=False)
            sim.run()
            outcomes.append((len(inboxes[1]), dict(chaos.stats)))
        assert outcomes[0] == outcomes[1]
