"""FaultPlan DSL: grammar, round-trips, randomized generation."""

import random

import pytest

from repro.chaos import (
    ChaosError,
    ClockSkewEvent,
    CrashEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    SlowNodeEvent,
    random_fault_plan,
)

GRAMMAR_SAMPLE = """
# The full grammar, one verb per line.
at 5 partition 0,1,2 | 3,4 heal 9
at 0 flap 3-7 period 2 duty 0.5 until 20
at 4 crash 12 amnesia recover 8
at 3 crash 9
at 0 link * drop 0.1 dup 0.05 reorder 0.2 jitter 0.5 corrupt 0.01
at 1 link 2-6 drop 0.3
at 2 slow 3 delay 0.2 until 10
at 0 skew 5 offset 1.5
"""


def test_parse_full_grammar():
    plan = FaultPlan.parse(GRAMMAR_SAMPLE, name="sample")
    kinds = sorted(e.kind for e in plan.events)
    assert kinds == ["crash", "crash", "flap", "link", "link",
                     "partition", "skew", "slow"]
    partition = next(e for e in plan.events if isinstance(e, PartitionEvent))
    assert partition.groups == ((0, 1, 2), (3, 4))
    assert partition.heal_at == 9.0
    flap = next(e for e in plan.events if isinstance(e, FlapEvent))
    assert (flap.a, flap.b, flap.period, flap.until) == (3, 7, 2.0, 20.0)
    amnesiac = next(e for e in plan.events
                    if isinstance(e, CrashEvent) and e.amnesia)
    assert (amnesiac.node, amnesiac.recover_at) == (12, 8.0)
    durable = next(e for e in plan.events
                   if isinstance(e, CrashEvent) and not e.amnesia)
    assert durable.recover_at is None
    wildcard = next(e for e in plan.events
                    if isinstance(e, LinkFaultEvent) and e.a is None)
    assert (wildcard.drop, wildcard.duplicate, wildcard.corrupt) == (0.1, 0.05, 0.01)


def test_events_sorted_by_time():
    plan = FaultPlan.parse(GRAMMAR_SAMPLE)
    times = [e.at for e in plan.events]
    assert times == sorted(times)


def test_parse_error_reports_line():
    with pytest.raises(ChaosError, match="line 2"):
        FaultPlan.parse("at 1 crash 3\nat 2 explode 7")


def test_negative_time_rejected():
    with pytest.raises(ChaosError):
        FaultPlan(events=[CrashEvent(at=-1.0, node=0)])


def test_json_round_trip_preserves_plan():
    plan = FaultPlan.parse(GRAMMAR_SAMPLE, name="sample")
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.name == "sample"
    assert clone.events == plan.events


def test_dict_round_trip_all_event_kinds():
    plan = FaultPlan(name="every-kind", events=[
        PartitionEvent(at=1.0, groups=((0,), (1, 2)), heal_at=2.0),
        FlapEvent(at=0.0, a=0, b=1, period=1.0),
        CrashEvent(at=1.0, node=2, amnesia=True, recover_at=3.0),
        LinkFaultEvent(at=0.5, a=0, b=2, drop=0.2),
        SlowNodeEvent(at=0.0, node=1, delay=0.1, until=4.0),
        ClockSkewEvent(at=2.0, node=0, offset=-0.5),
    ])
    assert FaultPlan.from_dict(plan.to_dict()).events == plan.events


def test_unknown_kind_rejected():
    with pytest.raises(ChaosError, match="unknown fault event kind"):
        FaultPlan.from_dict({"events": [{"kind": "meteor", "at": 1.0}]})


def test_horizon_covers_heal_and_recovery():
    plan = FaultPlan(events=[
        CrashEvent(at=1.0, node=0, recover_at=8.0),
        PartitionEvent(at=2.0, groups=((0,), (1,)), heal_at=5.0),
    ])
    assert plan.horizon == 8.0
    assert FaultPlan().horizon == 0.0


class TestRandomFaultPlan:
    def test_deterministic_from_rng_seed(self):
        a = random_fault_plan(random.Random(3), 10, 20.0)
        b = random_fault_plan(random.Random(3), 10, 20.0)
        assert a.events == b.events

    def test_protected_nodes_never_crash(self):
        plan = random_fault_plan(random.Random(1), 8, 20.0, crashes=5,
                                 protect=(0, 1))
        for event in plan.events:
            if isinstance(event, CrashEvent):
                assert event.node not in (0, 1)

    def test_amnesia_prob_zero_means_stable_storage(self):
        plan = random_fault_plan(random.Random(1), 8, 20.0, crashes=6,
                                 amnesia_prob=0.0)
        assert all(not e.amnesia for e in plan.events
                   if isinstance(e, CrashEvent))

    def test_everything_heals_before_duration(self):
        plan = random_fault_plan(random.Random(5), 10, 20.0)
        assert plan.horizon <= 0.7 * 20.0
