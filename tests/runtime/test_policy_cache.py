"""PolicyCache and CachedResolver: the fast path off the critical path."""

import pytest

from repro.choice import ChoicePoint, ChoiceResolver
from repro.runtime import CachedResolver, PolicyCache, scenario_key


class CountingResolver(ChoiceResolver):
    """Returns the last candidate; counts invocations."""

    def __init__(self):
        self.calls = 0

    def resolve(self, point, node=None):
        self.calls += 1
        return point.candidates[-1]


def point(candidates=(1, 2, 3), label="l"):
    return ChoicePoint(label=label, candidates=list(candidates), node_id=0)


def test_cache_put_get():
    cache = PolicyCache()
    cache.put(("k",), "v", now=1.0)
    assert cache.get(("k",), now=2.0) == (True, "v")


def test_cache_miss():
    cache = PolicyCache()
    assert cache.get(("nope",), now=0.0) is None
    assert cache.misses == 1


def test_ttl_expiry():
    cache = PolicyCache(ttl=1.0)
    cache.put(("k",), "v", now=0.0)
    assert cache.get(("k",), now=0.5) is not None
    assert cache.get(("k",), now=2.0) is None


def test_ttl_boundary_entry_still_hits():
    """An entry stored at exactly ``now - ttl`` is a hit.

    The timestamps are compared directly (``stored_at < now - ttl``):
    the double-subtraction form ``now - stored_at > ttl`` drifts under
    floating point (e.g. 0.3 - 0.2 > 0.1) and evicted live entries."""
    cache = PolicyCache(ttl=0.1)
    cache.put(("k",), "v", now=0.2)
    assert cache.get(("k",), now=0.3) == (True, "v")
    assert cache.expirations == 0
    # Strictly older than the window does expire.
    assert cache.get(("k",), now=0.3000001 + 0.1) is None
    assert cache.expirations == 1


def test_expired_entry_deleted_without_lru_bookkeeping():
    cache = PolicyCache(ttl=1.0, max_entries=4)
    cache.put(("old",), 1, now=0.0)
    cache.put(("new",), 2, now=5.0)
    assert cache.get(("old",), now=5.0) is None
    assert ("old",) not in cache._entries  # deleted outright
    assert cache.expirations == 1
    assert cache.misses == 1


def test_snapshot_reports_counters():
    cache = PolicyCache(ttl=1.0, max_entries=2)
    cache.put(("a",), 1, now=0.0)
    cache.put(("b",), 2, now=0.0)
    cache.put(("c",), 3, now=0.0)  # evicts a
    cache.get(("b",), now=0.5)  # hit
    cache.get(("x",), now=0.5)  # miss
    cache.get(("c",), now=9.0)  # expired
    snap = cache.snapshot()
    assert snap == {
        "entries": 1,
        "max_entries": 2,
        "ttl": 1.0,
        "hits": 1,
        "misses": 2,
        "hit_rate": 1 / 3,
        "expirations": 1,
        "evictions": 1,
        "stale": 0,
        "keys": {
            "b": {"hits": 1, "misses": 0, "stale": 0},
            "x": {"hits": 0, "misses": 1, "stale": 0},
            "c": {"hits": 0, "misses": 1, "stale": 0},
        },
    }


def test_per_key_counters_track_stale_and_overflow():
    """Satellite: per-scenario-key hit/miss/stale tallies in snapshot().

    Lookup keys get their own counters; beyond ``max_tracked_keys`` the
    tail aggregates under ``<other>`` so an adversarial key stream can't
    grow the snapshot without bound."""
    cache = PolicyCache(ttl=10.0, max_tracked_keys=2)
    cache.put(("a",), 1, now=0.0)
    cache.get(("a",), now=0.0)          # hit on key "a"
    cache.get(("b",), now=0.0)          # miss on key "b"
    cache.get(("c",), now=0.0)          # overflow -> "<other>"
    keys = cache.key_stats()
    assert keys["a"] == {"hits": 1, "misses": 0, "stale": 0}
    assert keys["b"] == {"hits": 0, "misses": 1, "stale": 0}
    assert keys["<other>"] == {"hits": 0, "misses": 1, "stale": 0}
    # mark_stale reclassifies the last lookup's hit as a stale miss on
    # that same key (mirrors the global counters).
    cache.get(("a",), now=0.0)
    cache.mark_stale()
    assert cache.key_stats()["a"] == {"hits": 1, "misses": 1, "stale": 1}


def test_cached_resolver_stats_delegates_to_snapshot():
    resolver = CachedResolver(CountingResolver())
    resolver.resolve(point())
    resolver.resolve(point())
    stats = resolver.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1


def test_lru_eviction():
    cache = PolicyCache(max_entries=2)
    cache.put(("a",), 1, now=0.0)
    cache.put(("b",), 2, now=0.0)
    cache.get(("a",), now=0.0)  # refresh a
    cache.put(("c",), 3, now=0.0)  # evicts b
    assert cache.get(("b",), now=0.0) is None
    assert cache.get(("a",), now=0.0) is not None


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        PolicyCache(max_entries=0)


def test_hit_rate():
    cache = PolicyCache()
    cache.put(("k",), "v", now=0.0)
    cache.get(("k",), now=0.0)
    cache.get(("x",), now=0.0)
    assert cache.hit_rate == 0.5


def test_invalidate():
    cache = PolicyCache()
    cache.put(("k",), "v", now=0.0)
    cache.invalidate()
    assert len(cache) == 0


def test_cached_resolver_avoids_recompute():
    inner = CountingResolver()
    resolver = CachedResolver(inner)
    assert resolver.resolve(point()) == 3
    assert resolver.resolve(point()) == 3
    assert inner.calls == 1


def test_cached_resolver_distinguishes_labels():
    inner = CountingResolver()
    resolver = CachedResolver(inner)
    resolver.resolve(point(label="a"))
    resolver.resolve(point(label="b"))
    assert inner.calls == 2


def test_cached_value_no_longer_candidate_recomputes():
    inner = CountingResolver()
    resolver = CachedResolver(inner, key_fn=lambda p, n: (p.label,))
    assert resolver.resolve(point((1, 2, 3))) == 3
    # Same key but 3 vanished from candidates: must recompute.
    assert resolver.resolve(point((1, 2))) == 2
    assert inner.calls == 2


def test_stale_candidate_counts_as_miss_not_hit():
    """A cached value no longer among the candidates ran the slow path;
    counting it as a hit inflated hit_rate."""
    inner = CountingResolver()
    resolver = CachedResolver(inner, key_fn=lambda p, n: (p.label,))
    resolver.resolve(point((1, 2, 3)))  # miss, caches 3
    resolver.resolve(point((1, 2)))     # stale: 3 not a candidate
    cache = resolver.cache
    assert cache.stale == 1
    assert cache.hits == 0
    assert cache.misses == 2
    assert cache.hit_rate == 0.0
    assert cache.snapshot()["stale"] == 1
    # A genuine hit afterwards still counts as one.
    resolver.resolve(point((1, 2)))
    assert cache.hits == 1
    assert cache.stale == 1


def test_scenario_key_uses_state_digest():
    class FakeService:
        def __init__(self, digest):
            self._digest = digest

        def state_digest(self):
            return self._digest

    class FakeNode:
        def __init__(self, digest):
            self.service = FakeService(digest)

    a = scenario_key(point(), FakeNode("d1"))
    b = scenario_key(point(), FakeNode("d2"))
    assert a != b
    assert scenario_key(point(), FakeNode("d1")) == a


def test_cached_resolver_speeds_up_predictive(tick=None):
    """Integration: cached predictive resolution hits after first call."""
    from repro.choice import PerformanceObjective
    from repro.runtime import PredictiveResolver, install_crystalball
    from repro.statemachine import Cluster

    from .test_resolver import GiverService, factory, weighted_wealth

    cluster = Cluster(3, factory, seed=1)
    install_crystalball(
        cluster, factory,
        objective=PerformanceObjective("wealth", weighted_wealth),
        checkpoint_period=0.5, chain_depth=2, budget=200,
        set_resolver=False,
    )
    cache = PolicyCache(ttl=100.0)
    for node in cluster.nodes:
        node.choice_resolver = CachedResolver(PredictiveResolver(), cache=cache)
    cluster.start_all()
    cluster.run(until=6.5)
    # Same scenario recurs only when node 0's full state digest repeats;
    # the giver's state never changes (only receivers'), so after the
    # first resolution the rest are hits.
    assert cache.hits >= 4
    assert cluster.service(2).wealth >= 5  # predictive quality retained
