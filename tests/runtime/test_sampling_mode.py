"""Sampling-based prediction backend for choice resolution."""

import pytest

from repro.choice import PerformanceObjective
from repro.runtime import install_crystalball
from repro.statemachine import Cluster

from .test_resolver import factory, weighted_wealth


def test_invalid_mode_rejected():
    cluster = Cluster(3, factory, seed=1)
    with pytest.raises(ValueError):
        install_crystalball(cluster, factory, prediction_mode="oracle")


def test_sampling_mode_resolves_toward_objective():
    cluster = Cluster(3, factory, seed=1)
    runtimes = install_crystalball(
        cluster, factory,
        objective=PerformanceObjective("wealth", weighted_wealth),
        checkpoint_period=0.5,
        prediction_mode="sampling", sampling_walks=12, sampling_steps=4,
    )
    cluster.start_all()
    cluster.run(until=5.5)
    # Node 2's wealth is worth double; sampling must find that too.
    assert cluster.service(2).wealth == 5
    assert cluster.service(1).wealth == 0
    assert runtimes[0].stats["states_explored"] > 0


def test_sampling_mode_deterministic():
    def run():
        cluster = Cluster(3, factory, seed=9)
        install_crystalball(
            cluster, factory,
            objective=PerformanceObjective("wealth", weighted_wealth),
            checkpoint_period=0.5,
            prediction_mode="sampling", sampling_walks=8, sampling_steps=4,
        )
        cluster.start_all()
        cluster.run(until=4.5)
        return [s.wealth for s in cluster.services]

    assert run() == run()
