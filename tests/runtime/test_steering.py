"""Event filters and the steering module."""

from dataclasses import dataclass

from repro.runtime import EventFilter, SteeringModule
from repro.statemachine import Message
from repro.statemachine.serialization import freeze


@dataclass
class Evil(Message):
    n: int


def exact_filter(src=1, msg=None, expires=10.0):
    msg = msg if msg is not None else Evil(n=1)
    return EventFilter(
        src=src, msg_key=freeze(msg), msg_type=None,
        installed_at=0.0, expires_at=expires, reason="test",
    )


def test_exact_filter_matches_same_payload():
    module = SteeringModule()
    module.install(exact_filter())
    assert module.matches(1, Evil(n=1), now=5.0) is not None


def test_exact_filter_rejects_different_payload():
    module = SteeringModule()
    module.install(exact_filter())
    assert module.matches(1, Evil(n=2), now=5.0) is None


def test_filter_is_per_source():
    module = SteeringModule()
    module.install(exact_filter(src=1))
    assert module.matches(2, Evil(n=1), now=5.0) is None


def test_expired_filter_does_not_match():
    module = SteeringModule()
    module.install(exact_filter(expires=1.0))
    assert module.matches(1, Evil(n=1), now=2.0) is None


def test_prune_drops_expired():
    module = SteeringModule()
    module.install(exact_filter(expires=1.0))
    module.prune(now=2.0)
    assert len(module) == 0


def test_type_filter_matches_any_payload():
    module = SteeringModule()
    module.install(EventFilter(
        src=1, msg_key=None, msg_type="Evil",
        installed_at=0.0, expires_at=10.0,
    ))
    assert module.matches(1, Evil(n=1), now=5.0) is not None
    assert module.matches(1, Evil(n=99), now=5.0) is not None


def test_duplicate_install_refreshes_expiry():
    module = SteeringModule()
    module.install(exact_filter(expires=5.0))
    module.install(exact_filter(expires=9.0))
    assert len(module) == 1
    assert module.active_filters[0].expires_at == 9.0


def test_filtered_count_increments():
    module = SteeringModule()
    module.install(exact_filter())
    module.matches(1, Evil(n=1), now=1.0)
    module.matches(1, Evil(n=1), now=2.0)
    assert module.filtered_count == 2


def test_install_reports_new_vs_refresh():
    # Regression: a duplicate install only refreshes the TTL — the
    # return value distinguishes that so callers don't overcount
    # installations.
    module = SteeringModule()
    assert module.install(exact_filter(expires=5.0)) is True
    assert module.install(exact_filter(expires=9.0)) is False
    assert len(module) == 1
    assert module.active_filters[0].expires_at == 9.0
    assert module.metrics.counter("steering.installed").value == 1
    assert module.metrics.counter("steering.refreshed").value == 1


def test_filtered_count_backed_by_registry():
    module = SteeringModule()
    module.install(exact_filter())
    assert module.matches(1, Evil(n=1), now=1.0) is not None
    assert module.filtered_count == 1
    assert module.metrics.counter("steering.filtered").value == 1
