"""CrystalBall runtime: checkpoint exchange, models, prediction, steering."""

from dataclasses import dataclass

from repro.mc import DeliverAction, SafetyProperty
from repro.runtime import CheckpointMsg, CrystalBallRuntime, install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Bump(Message):
    amount: int


class CounterService(Service):
    state_fields = ("value",)

    def __init__(self, node_id: int, n: int = 3) -> None:
        super().__init__(node_id)
        self.n = n
        self.value = 0

    def on_init(self) -> None:
        self.set_timer("bump", 1.0)

    @timer_handler("bump")
    def on_bump_timer(self, payload) -> None:
        peer = (self.node_id + 1) % self.n
        self.send(peer, Bump(amount=1))
        self.set_timer("bump", 1.0)

    @msg_handler(Bump)
    def on_bump(self, src: int, msg: Bump) -> None:
        self.value += msg.amount


def factory(node_id):
    return CounterService(node_id, 3)


def make_cluster(**runtime_kwargs):
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(cluster, factory, **runtime_kwargs)
    return cluster, runtimes


def test_checkpoints_reach_neighbors():
    cluster, runtimes = make_cluster(checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=3.0)
    for runtime in runtimes:
        assert set(runtime.state_model.known_nodes()) == {0, 1, 2}
        assert runtime.stats["checkpoints_received"] > 0


def test_checkpoint_messages_hidden_from_service():
    cluster, _ = make_cluster(checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=3.0)
    assert cluster.sim.trace.count("service.unhandled") == 0


def test_passive_latency_measurement():
    cluster, runtimes = make_cluster(checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=3.0)
    model = runtimes[1].network_model
    # Full-mesh default latency is 0.05s; measured should be near it.
    assert 0.01 < model.latency(0, 1) < 0.2


def test_probe_measures_rtt():
    cluster, runtimes = make_cluster(checkpoint_period=0.0)
    cluster.start_all()
    runtimes[0].probe(1)
    cluster.run(until=1.0)
    assert 0.05 < runtimes[0].network_model.rtt(0, 1) < 0.3


def test_current_world_includes_fresh_self():
    cluster, runtimes = make_cluster(checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=2.2)
    world = runtimes[0].current_world()
    assert world.state_of(0) == cluster.service(0).checkpoint()


def test_current_world_marks_down_nodes():
    cluster, runtimes = make_cluster(checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=2.0)
    cluster.node(2).crash()
    world = runtimes[0].current_world()
    assert 2 in world.down


def test_run_prediction_counts_states():
    cluster, runtimes = make_cluster(checkpoint_period=0.5, chain_depth=2, budget=100)
    cluster.start_all()
    cluster.run(until=2.0)
    report = runtimes[0].run_prediction()
    assert runtimes[0].stats["predictions"] == 1
    assert runtimes[0].stats["states_explored"] >= report.total_states


def test_steering_installs_filter_and_breaks_connection():
    # Property: node 0's value must stay below 1 — any Bump delivery to
    # node 0 violates it, so prediction must install a filter.
    prop = SafetyProperty(
        "node0-low",
        lambda w: w.state_of(0).get("value", 0) < 1 if 0 in w.node_states else True,
    )
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, properties=[prop],
        checkpoint_period=0.5, prediction_period=0.9, chain_depth=2, budget=300,
    )
    cluster.start_all()
    cluster.run(until=6.0)
    runtime = runtimes[0]
    assert runtime.stats["filters_installed"] > 0
    assert runtime.stats["steered_messages"] > 0
    assert cluster.service(0).value == 0  # steering kept the property
    assert cluster.network.connection_epoch(0, 2) > 0  # connection broken
    assert cluster.sim.trace.count("runtime.steer") > 0


def test_no_steering_when_everything_safe():
    cluster, runtimes = make_cluster(
        checkpoint_period=0.5, prediction_period=1.0, chain_depth=2, budget=200,
    )
    cluster.start_all()
    cluster.run(until=4.0)
    assert all(r.stats["filters_installed"] == 0 for r in runtimes)


def test_neighbors_default_all_topology_nodes():
    cluster, runtimes = make_cluster(checkpoint_period=0.0)
    assert runtimes[0].neighbors() == [1, 2]


def test_neighbors_fn_override():
    cluster = Cluster(3, factory, seed=3)
    runtime = CrystalBallRuntime(
        cluster.node(0), factory, neighbors_fn=lambda node: [2],
    )
    assert runtime.neighbors() == [2]


def test_broadcast_checkpoints_service_exactly_once():
    # Regression: broadcast_checkpoint used to call service.checkpoint()
    # twice per broadcast — once for the local state model and once for
    # the wire message.
    cluster, runtimes = make_cluster(checkpoint_period=0.0)
    cluster.start_all()
    cluster.run(until=0.5)
    service = cluster.service(0)
    calls = []
    original = service.checkpoint

    def counting_checkpoint():
        calls.append(1)
        return original()

    service.checkpoint = counting_checkpoint
    runtimes[0].broadcast_checkpoint()
    assert len(calls) == 1
    # The snapshot still reached both consumers: the state model holds
    # the new epoch and the neighbors got a checkpoint message.
    assert runtimes[0].state_model.get(0).epoch == runtimes[0].epoch
    assert runtimes[0].stats["checkpoints_sent"] == 2


def test_filters_installed_not_inflated_by_ttl_refresh():
    # Regression: re-predicting the same violation refreshes the
    # existing filter's TTL; the installation counter must not grow.
    from repro.mc import ActionOutcome, PredictionReport, Violation

    cluster, runtimes = make_cluster(checkpoint_period=0.0)
    cluster.start_all()
    cluster.run(until=0.5)
    runtime = runtimes[0]
    world = runtime.current_world()
    action = DeliverAction(src=1, dst=0, msg=Bump(amount=1), handler="on_bump")
    outcome = ActionOutcome(
        action=action,
        violations=[Violation(property_name="p", path=(action,), world=world)],
    )
    report = PredictionReport(outcomes=[outcome], total_states=1)
    runtime._apply_steering(report, world)
    runtime._apply_steering(report, world)
    assert runtime.stats["filters_installed"] == 1
    assert len(runtime.steering) == 1


def test_runtime_metrics_registry_backs_stats():
    cluster, runtimes = make_cluster(checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=2.0)
    runtime = runtimes[0]
    counters = runtime.metrics.counters()
    assert counters["runtime.checkpoints_sent{node=0}"] == \
        runtime.stats["checkpoints_sent"]
    # The checkpoint-broadcast span timed every broadcast on this node.
    span = runtime.metrics.span_stats("runtime.checkpoint_broadcast", node=0)
    assert span is not None and span.count > 0
