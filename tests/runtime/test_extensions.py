"""Runtime extensions: change-triggered checkpoints, model sharing,
generic-node exploration, staleness gating."""

from repro.choice import FixedResolver
from repro.model import GenericNode
from repro.runtime import install_crystalball
from repro.statemachine import Cluster

from .test_controller import Bump, CounterService, factory


def test_broadcast_on_change_sends_fresh_checkpoints():
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0,
        broadcast_on_change=True, min_broadcast_interval=0.0,
    )
    cluster.start_all()
    cluster.run(until=3.0)
    # Every Bump delivery changes the receiver's value -> broadcast.
    receiver_runtime = runtimes[1]
    assert receiver_runtime.stats["change_broadcasts"] > 0
    # Peers therefore know node 1's state despite no periodic exchange.
    assert 1 in runtimes[2].state_model.known_nodes()


def test_broadcast_on_change_rate_limited():
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0,
        broadcast_on_change=True, min_broadcast_interval=10.0,
    )
    cluster.start_all()
    cluster.run(until=5.0)
    assert all(r.stats["change_broadcasts"] <= 1 for r in runtimes)


def test_no_change_no_broadcast():
    # Timer fires but state digest unchanged at node 0 (it only sends).
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0,
        broadcast_on_change=True, min_broadcast_interval=0.0,
    )
    cluster.start_all()
    cluster.run(until=0.5)  # before any Bump arrives anywhere
    assert all(r.stats["change_broadcasts"] == 0 for r in runtimes)


def test_model_sharing_propagates_estimates():
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0, model_share_period=1.0,
    )
    # Only node 0 has a measurement for the (1, 2) pair.
    runtimes[0].network_model.observe_latency(1, 2, 0.123, now=0.0)
    cluster.start_all()
    cluster.run(until=3.0)
    assert runtimes[1].network_model.latency(1, 2) == 0.123
    assert runtimes[2].network_model.latency(1, 2) == 0.123
    assert runtimes[0].stats["model_shares_sent"] > 0
    assert runtimes[1].stats["model_entries_adopted"] > 0


def test_model_sharing_keeps_fresher_local_estimate():
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0, model_share_period=1.0,
    )
    runtimes[0].network_model.observe_latency(1, 2, 0.9, now=0.0)
    cluster.start_all()
    cluster.run(until=0.5)
    # Node 1 measures the same pair *later* than node 0 did.
    runtimes[1].network_model.observe_latency(1, 2, 0.1, now=cluster.sim.now)
    cluster.run(until=4.0)
    assert runtimes[1].network_model.latency(1, 2) == 0.1


def test_generic_node_included_in_prediction():
    generic = GenericNode()
    generic.add_template(lambda target: Bump(amount=1))
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.5,
        generic_node=generic, chain_depth=1, budget=500,
    )
    cluster.start_all()
    cluster.run(until=1.2)
    report = runtimes[0].run_prediction()
    from repro.mc import InjectAction

    assert any(isinstance(o.action, InjectAction) for o in report.outcomes)


def test_stale_snapshot_falls_back():
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0,  # never exchange
        max_snapshot_age=1.0, stale_fallback=FixedResolver(0),
    )
    del runtimes
    # Replace the service with one that makes a choice.
    from .test_resolver import factory as giver_factory

    cluster = Cluster(3, giver_factory, seed=3)
    runtimes = install_crystalball(
        cluster, giver_factory, checkpoint_period=0.0,
        max_snapshot_age=1.0, stale_fallback=FixedResolver(0),
    )
    cluster.start_all()
    cluster.run(until=3.5)
    # No checkpoints ever collected -> every predictive resolution
    # degrades to the fallback (index 0 => candidate node 1).
    assert runtimes[0].stats["choices_fallback"] == 3
    assert cluster.service(1).wealth == 3


def test_fresh_snapshot_no_fallback():
    from .test_resolver import factory as giver_factory

    cluster = Cluster(3, giver_factory, seed=3)
    runtimes = install_crystalball(
        cluster, giver_factory, checkpoint_period=0.2,
        max_snapshot_age=5.0,
    )
    cluster.start_all()
    cluster.run(until=3.5)
    assert runtimes[0].stats["choices_fallback"] == 0
    assert runtimes[0].stats["choices_resolved"] == 3
