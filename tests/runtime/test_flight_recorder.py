"""Flight recorder wired into the CrystalBall runtime.

The recorder is the crash-safe ring the controller feeds: steering
decisions land as causal-stamped events, live violations and prediction
exceptions trigger a dump of the last-N-seconds postmortem.
"""

from dataclasses import dataclass

import pytest

from repro.mc import ActionOutcome, DeliverAction, PredictionReport, SafetyProperty, Violation
from repro.obs import FlightRecorder
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Bump(Message):
    amount: int


class CounterService(Service):
    state_fields = ("value",)

    def __init__(self, node_id: int, n: int = 3) -> None:
        super().__init__(node_id)
        self.n = n
        self.value = 0

    def on_init(self) -> None:
        self.set_timer("bump", 1.0)

    @timer_handler("bump")
    def on_bump_timer(self, payload) -> None:
        self.send((self.node_id + 1) % self.n, Bump(amount=1))
        self.set_timer("bump", 1.0)

    @msg_handler(Bump)
    def on_bump(self, src: int, msg: Bump) -> None:
        self.value += msg.amount


def factory(node_id):
    return CounterService(node_id, 3)


NODE0_LOW = SafetyProperty(
    "node0-low",
    lambda w: w.state_of(0).get("value", 0) < 1 if 0 in w.node_states else True,
)


def run_steering_scenario(recorder, causal=False):
    cluster = Cluster(3, factory, seed=3, causal=causal)
    runtimes = install_crystalball(
        cluster, factory, properties=[NODE0_LOW],
        checkpoint_period=0.5, prediction_period=0.9, chain_depth=2,
        budget=300, flight_recorder=recorder,
    )
    cluster.start_all()
    cluster.run(until=6.0)
    return cluster, runtimes


def events_of(recorder, kind):
    return [e for e in recorder.events if e["event"] == kind]


def test_steering_scenario_records_filter_and_steer_events():
    recorder = FlightRecorder(window=60.0)
    cluster, runtimes = run_steering_scenario(recorder)
    assert runtimes[0].stats["steered_messages"] > 0

    installed = events_of(recorder, "runtime.filter_installed")
    assert installed, "no filter_installed events recorded"
    assert installed[0]["data"]["node"] == 0
    assert installed[0]["data"]["reason"] == "node0-low"
    assert installed[0]["data"]["predicted"]  # the violating path

    steered = events_of(recorder, "runtime.steer")
    assert steered, "no steer events recorded"
    assert steered[0]["data"]["msg"] == "Bump"
    assert steered[0]["data"]["reason"] == "node0-low"
    # Event counts match the runtime's own accounting.
    assert len(steered) == runtimes[0].stats["steered_messages"]


def test_steer_events_carry_causal_stamps_when_tracing():
    recorder = FlightRecorder(window=60.0)
    run_steering_scenario(recorder, causal=True)
    steered = events_of(recorder, "runtime.steer")
    assert steered
    assert all("causal" in e for e in steered)
    assert all(e["causal"] for e in steered)


def test_no_recorder_events_when_everything_safe():
    recorder = FlightRecorder(window=60.0)
    cluster = Cluster(3, factory, seed=3)
    install_crystalball(
        cluster, factory, checkpoint_period=0.5, prediction_period=1.0,
        chain_depth=2, budget=200, flight_recorder=recorder,
    )
    cluster.start_all()
    cluster.run(until=4.0)
    assert not recorder.events
    assert recorder.dumps_written == 0


def test_live_violation_dumps_postmortem(tmp_path):
    # A world that already violates the property cannot be steered away
    # from it; the recorder must dump the ring at that moment.
    dump_path = str(tmp_path / "postmortem.json")
    recorder = FlightRecorder(window=60.0, dump_path=dump_path)
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory,
        properties=[SafetyProperty("always-bad", lambda w: False)],
        checkpoint_period=0.0, flight_recorder=recorder,
    )
    cluster.start_all()
    cluster.run(until=0.5)
    runtime = runtimes[0]
    world = runtime.current_world()
    action = DeliverAction(src=1, dst=0, msg=Bump(amount=1), handler="on_bump")
    report = PredictionReport(
        outcomes=[ActionOutcome(
            action=action,
            violations=[Violation(property_name="always-bad",
                                  path=(action,), world=world)],
        )],
        total_states=1,
    )
    runtime._apply_steering(report, world)

    assert recorder.dumps_written == 1
    doc = recorder.last_dump["flight_recorder"]
    assert "live violation at node 0" in doc["reason"]
    violation = events_of(recorder, "runtime.violation_live")[0]
    assert violation["data"]["properties"] == ["always-bad"]
    # The dump also landed on disk at the configured path.
    import json
    with open(dump_path, encoding="utf-8") as handle:
        assert json.load(handle)["flight_recorder"]["reason"] == doc["reason"]
    # No filter was installed: steering away was impossible.
    assert runtime.stats["filters_installed"] == 0


def test_prediction_exception_dumps_before_propagating():
    recorder = FlightRecorder(window=60.0)
    cluster = Cluster(3, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.0, flight_recorder=recorder,
    )
    cluster.start_all()
    cluster.run(until=0.5)
    runtime = runtimes[0]

    def boom():
        raise RuntimeError("checkpoint decode failed")

    runtime.current_world = boom
    with pytest.raises(RuntimeError, match="checkpoint decode failed"):
        runtime.run_prediction()

    assert recorder.dumps_written == 1
    assert "prediction exception at node 0" in \
        recorder.last_dump["flight_recorder"]["reason"]
    event = events_of(recorder, "runtime.prediction_exception")[0]
    assert "checkpoint decode failed" in event["data"]["error"]
