"""Amortized prediction-driven steering: policy, coalescing, scheduler.

The hypothesis properties at the bottom pin the two contracts the T2
bench relies on:

* **Equivalence when fresh** — with a live policy entry, the amortized
  scheduler returns exactly what a per-choice prediction round would
  have picked (the best-ranked candidate still offered), for any
  candidate set and scores.
* **Never stale-silently** — once a policy entry has aged past
  ``max_age`` (or was invalidated), resolution comes from the static
  fallback, never from the dead ranking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.choice import ChoicePoint, ConfigurationError
from repro.choice.resolvers import FirstResolver
from repro.runtime import (
    AmortizedSteering,
    SteeringPolicy,
    identity_key,
    merge_steering_snapshots,
    scenario_signature,
)


def point(candidates=(1, 2, 3), label="l", **info):
    return ChoicePoint(label=label, candidates=list(candidates), node_id=0, info=info)


class LastResolver:
    """Distinguishable from FirstResolver: picks the last candidate."""

    def __init__(self):
        self.calls = 0

    def resolve(self, p, node=None):
        self.calls += 1
        return p.candidates[-1]


def scored_by(scores):
    """A deterministic ScoreFn ranking candidates by a score table."""

    def score_fn(p, node):
        ranking = sorted(
            ((c, float(scores.get(c, 0.0))) for c in p.candidates),
            key=lambda pair: pair[1], reverse=True,
        )
        return tuple(ranking), len(p.candidates)

    return score_fn


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------

def test_identity_key_distinguishes_info():
    assert identity_key(point(queue=3)) != identity_key(point(queue=4))
    assert identity_key(point(queue=3)) == identity_key(point(queue=3))


def test_scenario_signature_buckets_queue_depth():
    # 5..7 share a log2 bucket; 8 starts the next one.
    assert scenario_signature(point(queue=5)) == scenario_signature(point(queue=7))
    assert scenario_signature(point(queue=7)) != scenario_signature(point(queue=8))


def test_scenario_signature_clamps_conflicts():
    assert scenario_signature(point(conflicts=9.0)) == scenario_signature(point(conflicts=4.0))
    assert scenario_signature(point(conflicts=1.0)) != scenario_signature(point(conflicts=2.0))


def test_scenario_signature_separates_labels_and_candidates():
    assert scenario_signature(point(label="a")) != scenario_signature(point(label="b"))
    assert scenario_signature(point((1, 2))) != scenario_signature(point((1, 2, 3)))


# ----------------------------------------------------------------------
# SteeringPolicy
# ----------------------------------------------------------------------

def test_policy_install_and_lookup():
    policy = SteeringPolicy(max_age=5.0)
    p = point()
    sig = scenario_signature(p)
    policy.install(sig, ((2, 1.0), (1, 0.5), (3, 0.1)), now=0.0)
    assert policy.lookup(sig, p, now=1.0) == 2


def test_policy_entry_ages_out():
    policy = SteeringPolicy(max_age=2.0)
    p = point()
    sig = scenario_signature(p)
    policy.install(sig, ((2, 1.0),), now=0.0)
    assert policy.lookup(sig, p, now=2.0) == 2
    assert policy.lookup(sig, p, now=2.1) is None


def test_policy_skips_candidates_no_longer_offered():
    policy = SteeringPolicy(max_age=5.0)
    sig = ("s",)
    policy.install(sig, ((9, 1.0), (2, 0.5)), now=0.0)
    assert policy.lookup(sig, point((1, 2, 3)), now=0.0) == 2


def test_policy_all_candidates_gone_is_a_stale_miss():
    policy = SteeringPolicy(max_age=5.0)
    sig = ("s",)
    policy.install(sig, ((9, 1.0),), now=0.0)
    assert policy.lookup(sig, point((1, 2)), now=0.0) is None
    assert policy.cache.stale == 1


def test_policy_invalidate_counts_reasons():
    policy = SteeringPolicy(max_age=5.0)
    policy.install(("s",), ((1, 1.0),), now=0.0)
    policy.invalidate("liveness")
    policy.invalidate("liveness")
    policy.invalidate("topology:link")
    assert policy.lookup(("s",), point(), now=0.0) is None
    snap = policy.snapshot()
    assert snap["invalidations"] == {"liveness": 2, "topology:link": 1}
    assert snap["refreshed_at"] is None


def test_policy_rejects_nonpositive_max_age():
    with pytest.raises(ConfigurationError):
        SteeringPolicy(max_age=0.0)


# ----------------------------------------------------------------------
# AmortizedSteering
# ----------------------------------------------------------------------

def test_missing_fallback_raises_at_install_time():
    with pytest.raises(ConfigurationError):
        AmortizedSteering(fallback=None)
    with pytest.raises(ConfigurationError):
        AmortizedSteering(fallback=object())  # no .resolve


def test_scored_round_installs_policy_for_scenario():
    sched = AmortizedSteering(
        fallback=FirstResolver(), score_fn=scored_by({1: 0.0, 2: 1.0, 3: 0.5}),
        coalesce_window=0.0,
    )
    value, source = sched.resolve_explain(point(queue=4), now=0.0)
    assert (value, source) == (2, "scored")
    # Same scenario bucket (queue 4..7), different exact info: policy hit.
    value, source = sched.resolve_explain(point(queue=6), now=1.0)
    assert (value, source) == (2, "policy")
    assert sched.counters["scored_rounds"] == 1
    assert sched.counters["policy_hits"] == 1


def test_coalescing_shares_one_resolution():
    sched = AmortizedSteering(
        fallback=FirstResolver(), score_fn=scored_by({3: 1.0}),
        coalesce_window=0.25,
    )
    assert sched.resolve_explain(point(queue=4), now=0.0) == (3, "scored")
    assert sched.resolve_explain(point(queue=4), now=0.2) == (3, "coalesced")
    # Outside the window the coalesced answer is gone (policy answers).
    assert sched.resolve_explain(point(queue=4), now=1.0) == (3, "policy")


def test_budget_exhaustion_defers_to_fallback():
    fallback = LastResolver()
    sched = AmortizedSteering(
        fallback=fallback, score_fn=scored_by({1: 1.0}),
        coalesce_window=0.0, rate_budget=1.0, initial_allowance=3.0,
    )
    # First round costs 3 states (three candidates) and exhausts the
    # t=0 allowance; a different scenario at t=0 must not score.
    assert sched.resolve_explain(point(queue=1), now=0.0)[1] == "scored"
    value, source = sched.resolve_explain(point(queue=100), now=0.0)
    assert (value, source) == (3, "fallback")
    assert fallback.calls == 1
    # Sim time passing replenishes the rate budget deterministically.
    assert sched.resolve_explain(point(queue=100), now=10.0)[1] == "scored"


def test_admission_denies_unaffordable_rounds_and_disarms_capture():
    class FakeNode:
        capture_dispatch = True
        network = None

    node = FakeNode()
    calls = []
    inner = scored_by({2: 1.0})

    def counting_score(p, n):
        calls.append(p)
        return inner(p, n)

    sched = AmortizedSteering(
        fallback=LastResolver(), score_fn=counting_score,
        cost_fn=lambda p, n: 1_000, coalesce_window=0.0,
        rate_budget=1.0, initial_allowance=10.0,
    )
    # Projected cost (1000) exceeds the allowance: the round is denied
    # *before* score_fn runs, and capture is disarmed so the node stops
    # paying for pre-dispatch snapshots it cannot use.
    value, source = sched.resolve_explain(point(), node=node, now=0.0)
    assert (value, source) == (3, "fallback")
    assert calls == []
    assert sched.counters["denied"] == 1
    assert node.capture_dispatch is False
    # Once the accruing allowance covers the projection, scoring resumes.
    assert sched.resolve_explain(point(), node=node, now=2_000.0)[1] == "scored"
    assert len(calls) == 1


def test_unknown_cost_admits_scoring():
    sched = AmortizedSteering(
        fallback=LastResolver(), score_fn=scored_by({2: 1.0}),
        cost_fn=lambda p, n: None, coalesce_window=0.0,
        rate_budget=1.0, initial_allowance=3.0,
    )
    # cost_fn returning None (no captured dispatch to size) admits.
    assert sched.resolve_explain(point(), now=0.0)[1] == "scored"
    assert sched.counters["denied"] == 0


def test_deferred_scoring_arms_capture():
    class FakeNode:
        capture_dispatch = False
        network = None

    node = FakeNode()
    sched = AmortizedSteering(
        fallback=FirstResolver(), score_fn=lambda p, n: None,
        coalesce_window=0.0,
    )
    value, source = sched.resolve_explain(point(), node=node, now=0.0)
    assert source == "fallback"
    assert node.capture_dispatch is True  # hungry for a checkpoint
    assert sched.counters["deferred"] == 1
    sched.score_fn = scored_by({2: 1.0})
    assert sched.resolve_explain(point(), node=node, now=1.0)[1] == "scored"
    assert node.capture_dispatch is False  # fed, disarmed


def test_invalidate_drops_policy_and_coalesced_answers():
    sched = AmortizedSteering(
        fallback=LastResolver(), score_fn=scored_by({1: 1.0}),
        coalesce_window=10.0, rate_budget=0.0, initial_allowance=3.0,
    )
    assert sched.resolve_explain(point(), now=0.0)[1] == "scored"
    sched.invalidate("liveness")
    # Budget spent and caches cleared: only the fallback remains.
    value, source = sched.resolve_explain(point(), now=0.1)
    assert (value, source) == (3, "fallback")
    assert sched.policy.snapshot()["invalidations"] == {"liveness": 1}


def test_merge_steering_snapshots_aggregates():
    a = AmortizedSteering(fallback=FirstResolver(), score_fn=scored_by({2: 1.0}))
    b = AmortizedSteering(fallback=FirstResolver(), score_fn=scored_by({2: 1.0}))
    a.resolve_explain(point(queue=4), now=0.0)
    a.resolve_explain(point(queue=4), now=10.0)  # policy aged out: rescored
    b.resolve_explain(point(queue=4), now=0.0)
    merged = merge_steering_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"]["scored_rounds"] == 3
    assert merged["policy"]["installs"] == 3
    assert merged["spent_states"] == a.spent_states + b.spent_states
    assert 0.0 <= merged["policy"]["hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# Properties (satellite: amortized == per-choice when fresh; stale
# policies always fall back)
# ----------------------------------------------------------------------

candidate_sets = st.lists(
    st.integers(min_value=0, max_value=9), min_size=1, max_size=6, unique=True
)
score_tables = st.dictionaries(
    st.integers(min_value=0, max_value=9),
    st.floats(min_value=-10, max_value=10, allow_nan=False),
)


@settings(max_examples=120, deadline=None)
@given(candidates=candidate_sets, scores=score_tables, queue=st.integers(0, 500))
def test_fresh_policy_equals_per_choice_prediction(candidates, scores, queue):
    """With a fresh policy, amortized resolution == one-shot prediction.

    The per-choice path picks the strict-improvement argmax over
    candidate scores in application order; the amortized path installs
    the stable-sorted ranking and answers from it.  They must agree on
    every candidate set, score table, and scenario."""
    score_fn = scored_by(scores)
    p = point(tuple(candidates), queue=queue)

    # Reference: what a per-choice prediction round would return.
    best = max(candidates, key=lambda c: (scores.get(c, 0.0), -candidates.index(c)))

    sched = AmortizedSteering(
        fallback=LastResolver(), score_fn=score_fn,
        coalesce_window=0.0, rate_budget=None,
    )
    value, source = sched.resolve_explain(p, now=0.0)
    assert source == "scored"
    assert value == best
    # And every policy answer within max_age agrees with the round.
    value, source = sched.resolve_explain(p, now=1.0)
    assert (value, source) == (best, "policy")


@settings(max_examples=120, deadline=None)
@given(
    candidates=candidate_sets,
    scores=score_tables,
    age=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    max_age=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)
def test_stale_policy_always_falls_back_never_stale_silently(
    candidates, scores, age, max_age
):
    """Past max_age a policy entry never answers: the resolution is the
    fallback's (or a fresh scored round's), not the dead ranking's."""
    p = point(tuple(candidates))
    fallback = LastResolver()
    sched = AmortizedSteering(
        fallback=fallback, score_fn=scored_by(scores),
        coalesce_window=0.0, max_policy_age=max_age,
        rate_budget=1.0, initial_allowance=float(len(candidates)),
    )
    assert sched.resolve_explain(p, now=0.0)[1] == "scored"
    value, source = sched.resolve_explain(p, now=age)
    if age <= max_age:
        # age == 0.0 can re-hit the zero-width coalesce entry instead.
        assert source in ("policy", "coalesced")
    else:
        # Aged out.  The budget replenished with sim time, so a fresh
        # scored round is legitimate; otherwise only the fallback is —
        # never the stale ranking presented as live.
        assert source in ("scored", "fallback")
        if source == "fallback":
            assert value == p.candidates[-1]
            assert fallback.calls >= 1


@settings(max_examples=60, deadline=None)
@given(candidates=candidate_sets, scores=score_tables)
def test_invalidated_policy_never_answers(candidates, scores):
    p = point(tuple(candidates))
    fallback = LastResolver()
    sched = AmortizedSteering(
        fallback=fallback, score_fn=scored_by(scores),
        coalesce_window=0.0, rate_budget=1.0,
        initial_allowance=float(len(candidates)),
    )
    assert sched.resolve_explain(p, now=0.0)[1] == "scored"
    sched.invalidate("steering")
    value, source = sched.resolve_explain(p, now=0.0)
    assert (value, source) == (p.candidates[-1], "fallback")
