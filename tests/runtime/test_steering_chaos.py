"""Event filters vs chaos: steering must drop *every* copy.

The chaos layer duplicates and reorders inbound messages; an installed
event filter has to suppress each arriving copy (filters are consulted
per delivery, and the broken connection kills what is still in
flight) — a single-shot filter would let a duplicate through.
"""

from dataclasses import dataclass

from repro.chaos import FaultDecision
from repro.runtime import EventFilter, install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler
from repro.statemachine.serialization import freeze


@dataclass
class Evil(Message):
    n: int


@dataclass
class Benign(Message):
    n: int


class SinkService(Service):
    state_fields = ("evil_seen", "benign_seen")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.evil_seen = 0
        self.benign_seen = 0

    @msg_handler(Evil)
    def on_evil(self, src: int, msg: Evil) -> None:
        self.evil_seen += 1

    @msg_handler(Benign)
    def on_benign(self, src: int, msg: Benign) -> None:
        self.benign_seen += 1


class DuplicateEverything:
    """Deterministic chaos: every send yields two extra copies."""

    def apply(self, src, dst, payload, now):
        return FaultDecision(duplicates=2, duplicate_delays=(0.05, 0.4))


class DisplaceFirst:
    """Deterministic reorder: delay only the first send ever seen."""

    def __init__(self) -> None:
        self.fired = False

    def apply(self, src, dst, payload, now):
        if not self.fired:
            self.fired = True
            return FaultDecision(extra_delay=0.5)
        return None


def make_cluster():
    cluster = Cluster(3, lambda nid: SinkService(nid), seed=8)
    runtimes = install_crystalball(
        cluster, lambda nid: SinkService(nid),
        checkpoint_period=0.0, prediction_period=0.0,
    )
    cluster.start_all()
    return cluster, runtimes


def install_type_filter(runtime, src=1, msg_type="Evil", ttl=100.0):
    runtime.steering.install(EventFilter(
        src=src, msg_key=None, msg_type=msg_type,
        installed_at=0.0, expires_at=ttl, reason="test",
    ))


def test_all_duplicated_copies_dropped():
    cluster, runtimes = make_cluster()
    install_type_filter(runtimes[0])
    cluster.network.add_fault_interposer(DuplicateEverything())
    cluster.network.send(1, 0, Evil(n=1), reliable=False)
    cluster.run(until=2.0)
    assert cluster.service(0).evil_seen == 0
    # Every arriving copy was individually steered away.
    assert cluster.sim.trace.count("node.filtered_in") == 3
    assert runtimes[0].stats["steered_messages"] == 3


def test_exact_match_filter_drops_duplicates_of_same_payload():
    cluster, runtimes = make_cluster()
    evil = Evil(n=7)
    runtimes[0].steering.install(EventFilter(
        src=1, msg_key=freeze(evil), msg_type=None,
        installed_at=0.0, expires_at=100.0, reason="exact",
    ))
    cluster.network.add_fault_interposer(DuplicateEverything())
    cluster.network.send(1, 0, Evil(n=7), reliable=False)
    cluster.network.send(1, 0, Evil(n=8), reliable=False)   # different payload
    cluster.run(until=2.0)
    assert cluster.service(0).evil_seen == 3   # only the n=8 copies land
    assert runtimes[0].stats["steered_messages"] == 3


def test_reordered_copy_still_filtered():
    cluster, runtimes = make_cluster()
    install_type_filter(runtimes[0])
    cluster.network.add_fault_interposer(DisplaceFirst())
    cluster.network.send(1, 0, Evil(n=1), reliable=False)    # displaced +0.5s
    cluster.network.send(1, 0, Benign(n=2), reliable=False)  # overtakes it
    cluster.run(until=2.0)
    assert cluster.service(0).benign_seen == 1
    assert cluster.service(0).evil_seen == 0
    steers = [r for r in cluster.sim.trace.select("runtime.steer")
              if r.category == "runtime.steer"]  # not .explain
    benigns = cluster.sim.trace.select("net.deliver", node=0)
    assert len(steers) == 1
    # The benign message arrived before the displaced evil one.
    assert benigns[0].time < steers[0].time


def test_break_connection_kills_inflight_reliable_duplicates():
    # Reliable traffic: the first steered copy breaks the connection,
    # so later in-flight duplicates die by epoch instead of by filter —
    # either way the service never sees a single copy.
    cluster, runtimes = make_cluster()
    install_type_filter(runtimes[0])
    cluster.network.add_fault_interposer(DuplicateEverything())
    epoch_before = cluster.network.connection_epoch(0, 1)
    cluster.network.send(1, 0, Evil(n=1), reliable=True)
    cluster.run(until=2.0)
    assert cluster.service(0).evil_seen == 0
    assert cluster.network.connection_epoch(0, 1) > epoch_before
    reasons = [r.data["reason"] for r in cluster.sim.trace.select("net.drop")]
    assert "connection-broken" in reasons


def test_expired_filter_lets_copies_through():
    cluster, runtimes = make_cluster()
    install_type_filter(runtimes[0], ttl=0.01)
    cluster.network.add_fault_interposer(DuplicateEverything())
    cluster.sim.schedule_at(
        1.0, lambda: cluster.network.send(1, 0, Evil(n=1), reliable=False),
    )
    cluster.run(until=3.0)
    assert cluster.service(0).evil_seen == 3
    assert runtimes[0].stats["steered_messages"] == 0
