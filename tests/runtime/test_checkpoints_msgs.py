"""Runtime wire messages: classification and sizes."""

from repro.runtime import (
    CheckpointMsg,
    ModelShareMsg,
    ProbeMsg,
    ProbeReplyMsg,
    is_runtime_message,
)
from repro.statemachine import Message
from dataclasses import dataclass


@dataclass
class AppMsg(Message):
    x: int


def test_runtime_messages_classified():
    assert is_runtime_message(CheckpointMsg(sender=0, epoch=1, taken_at=0.0,
                                            sent_at=0.0, state={}))
    assert is_runtime_message(ProbeMsg(sender=0, sent_at=0.0))
    assert is_runtime_message(ProbeReplyMsg(sender=0, orig_sent_at=0.0))
    assert is_runtime_message(ModelShareMsg(sender=0))


def test_app_messages_not_runtime():
    assert not is_runtime_message(AppMsg(x=1))
    assert not is_runtime_message("just a string")


def test_checkpoint_size_grows_with_state():
    small = CheckpointMsg(sender=0, epoch=1, taken_at=0.0, sent_at=0.0,
                          state={"a": 1})
    big = CheckpointMsg(sender=0, epoch=1, taken_at=0.0, sent_at=0.0,
                        state={f"k{i}": list(range(10)) for i in range(20)})
    assert big.wire_size() > small.wire_size()


def test_model_share_size_scales_with_entries():
    empty = ModelShareMsg(sender=0, entries=[])
    full = ModelShareMsg(sender=0, entries=[(0, 1, 0.1, 1e6, 0.0, 0.0, 3)] * 50)
    assert full.wire_size() >= empty.wire_size() + 49 * 48


def test_checkpoint_carries_timers():
    msg = CheckpointMsg(sender=2, epoch=3, taken_at=1.0, sent_at=1.0,
                        state={}, timers=[("hb", 0.5, None)])
    assert msg.timers == [("hb", 0.5, None)]
    assert msg.frozen() == msg.frozen()
