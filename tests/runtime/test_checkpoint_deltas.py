"""Checkpoint delta encoding: correctness, resync, and bytes saved."""

from repro.runtime import install_crystalball
from repro.statemachine import Cluster

from .test_controller import CounterService, factory


def make_cluster(deltas: bool, **kwargs):
    cluster = Cluster(3, factory, seed=5)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.5,
        checkpoint_deltas=deltas, **kwargs,
    )
    cluster.start_all()
    return cluster, runtimes


def assert_models_match_reality(cluster, runtimes, max_staleness=1.0):
    """Every state model entry equals some recent true state.

    With per-field deltas the patched state must exactly equal the
    sender's checkpoint at broadcast time; comparing to the current
    live state works because CounterService state only grows."""
    for runtime in runtimes:
        for peer in runtime.state_model.known_nodes():
            if peer == runtime.node.node_id:
                continue
            model_value = runtime.state_model.get(peer).state["value"]
            live_value = cluster.service(peer).value
            assert model_value <= live_value
            # Staleness bounded: at most a couple of broadcasts behind.
            assert live_value - model_value <= 3


def test_delta_patched_states_correct():
    cluster, runtimes = make_cluster(deltas=True)
    cluster.run(until=10.0)
    assert_models_match_reality(cluster, runtimes)
    # Deltas actually flowed.
    assert all(r.stats["delta_checkpoints_sent"] > 0 for r in runtimes)
    assert all(r.stats["full_checkpoints_sent"] > 0 for r in runtimes)


def test_full_checkpoint_cadence():
    cluster, runtimes = make_cluster(deltas=True, full_checkpoint_every=3)
    cluster.run(until=10.0)
    runtime = runtimes[0]
    fulls = runtime.stats["full_checkpoints_sent"]
    deltas = runtime.stats["delta_checkpoints_sent"]
    assert fulls >= deltas / 3  # at least one full per 3 deltas


def test_deltas_save_bytes():
    """Deltas pay off when most of the state is stable.

    A service with a large static field (the common case: routing
    tables, file maps, peer lists) plus one hot counter: full
    checkpoints re-send everything, deltas only the counter.
    """
    from repro.statemachine import Service, timer_handler

    class BigStateService(Service):
        state_fields = ("blob", "counter")

        def __init__(self, node_id):
            super().__init__(node_id)
            self.blob = {f"entry{i}": list(range(8)) for i in range(40)}
            self.counter = 0

        def on_init(self):
            self.set_timer("bump", 0.4)

        @timer_handler("bump")
        def on_bump(self, payload):
            self.counter += 1
            self.set_timer("bump", 0.4)

    def run(deltas):
        cluster = Cluster(3, BigStateService, seed=5)
        runtimes = install_crystalball(
            cluster, BigStateService, checkpoint_period=0.5,
            checkpoint_deltas=deltas,
        )
        cluster.start_all()
        cluster.run(until=10.0)
        return sum(r.stats["checkpoint_bytes_sent"] for r in runtimes)

    bytes_deltas = run(True)
    bytes_full = run(False)
    assert bytes_deltas < 0.5 * bytes_full


def test_missed_base_resyncs_at_next_full():
    cluster, runtimes = make_cluster(deltas=True, full_checkpoint_every=2)
    cluster.run(until=2.2)
    # Partition node 2 away so it misses some broadcasts (deltas with
    # unseen bases).
    cluster.network.set_partition([{0, 1}, {2}])
    cluster.run(until=4.2)
    cluster.network.clear_partition()
    cluster.run(until=10.0)
    # After healing, node 2's view of node 0 catches up via a full.
    model_value = runtimes[2].state_model.get(0)
    assert model_value is not None
    assert cluster.service(0).value - model_value.state["value"] <= 3
    assert_models_match_reality(cluster, runtimes)


def test_deltas_ignored_counted_when_base_missing():
    cluster, runtimes = make_cluster(deltas=True, full_checkpoint_every=10)
    # Node 2 misses the start: wipe its state model mid-run to force
    # base mismatches.
    cluster.run(until=1.2)
    runtimes[2].state_model.forget(0)
    cluster.run(until=2.2)
    assert runtimes[2].stats["deltas_ignored"] > 0
