"""Delta checkpoints under chaos: the resync protocol earns its keep.

A7 fault plans drop, duplicate, and reorder the checkpoint stream.
Ack-anchored deltas must never leave a state model wedged on a stale
baseline: a delta is only diffed against a full the peer acknowledged,
and a missing/stale baseline degrades to fulls until an ack lands.
After the faults clear, every model must converge to exactly the
contents a full-broadcast-only run converges to.
"""

from repro.chaos import ChaosController, FaultPlan
from repro.chaos.plan import LinkFaultEvent, PartitionEvent
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Service, timer_handler

CHURN_UNTIL = 6.0
RUN_UNTIL = 14.0


class PhasedCounter(Service):
    """Mutates state until ``CHURN_UNTIL``, then holds still.

    The quiet tail lets the run end with every node's state static for
    several checkpoint rounds, so converged state models are exactly
    comparable across delta and full-broadcast modes.
    """

    state_fields = ("value", "table")

    def __init__(self, node_id):
        super().__init__(node_id)
        self.value = 0
        self.table = {f"slot{i}": 0 for i in range(10)}

    def on_init(self):
        self.set_timer("bump", 0.4)

    @timer_handler("bump")
    def on_bump(self, payload):
        if self.now() < CHURN_UNTIL:
            self.value += 1
            self.table[f"slot{self.value % 10}"] = self.value
        self.set_timer("bump", 0.4)


def lossy_link_plan():
    """Heavy message chaos on every link, healed well before the end."""
    return FaultPlan(events=[
        LinkFaultEvent(at=0.5, drop=0.3, duplicate=0.2, reorder=0.5,
                       reorder_jitter=0.3),
        LinkFaultEvent(at=8.0),  # replaces the profile: clean links
    ], name="lossy-links")


def partition_plan():
    return FaultPlan(events=[
        PartitionEvent(at=1.5, groups=((0, 1), (2,)), heal_at=5.0),
        LinkFaultEvent(at=0.5, drop=0.15, reorder=0.4, reorder_jitter=0.3),
        LinkFaultEvent(at=8.0),
    ], name="partition-plus-loss")


def run_cluster(plan, deltas, seed=7):
    cluster = Cluster(3, PhasedCounter, seed=seed)
    runtimes = install_crystalball(
        cluster, PhasedCounter, checkpoint_period=0.5,
        checkpoint_deltas=deltas, full_checkpoint_every=4,
    )
    ChaosController(cluster, plan).arm()
    cluster.start_all()
    cluster.run(until=RUN_UNTIL)
    return cluster, runtimes


def model_contents(runtimes):
    """(observer, peer) -> the patched NeighborCheckpoint's state."""
    return {
        (r.node.node_id, peer): r.state_model.get(peer).state
        for r in runtimes for peer in r.state_model.known_nodes()
        if peer != r.node.node_id
    }


def assert_converged_to_reality(cluster, runtimes):
    for (_, peer), state in model_contents(runtimes).items():
        live = cluster.service(peer)
        assert state["value"] == live.value
        assert state["table"] == live.table


def _converged_cases(plan):
    delta_cluster, delta_runtimes = run_cluster(plan, deltas=True)
    full_cluster, full_runtimes = run_cluster(plan, deltas=False)
    # Both modes converged to the senders' true (static) states...
    assert_converged_to_reality(delta_cluster, delta_runtimes)
    assert_converged_to_reality(full_cluster, full_runtimes)
    # ...and therefore to each other, checkpoint for checkpoint.
    assert model_contents(delta_runtimes) == model_contents(full_runtimes)
    return delta_runtimes


def test_lossy_links_resync_converges():
    runtimes = _converged_cases(lossy_link_plan())
    # The chaos actually stressed the protocol: deltas flowed, and at
    # least one baseline went missing or stale along the way.
    assert sum(r.stats["delta_checkpoints_sent"] for r in runtimes) > 0
    stressed = sum(
        r.stats["deltas_ignored"] + r.stats["resync_fulls_sent"]
        for r in runtimes
    )
    assert stressed > 0


def test_partition_resync_converges():
    runtimes = _converged_cases(partition_plan())
    assert sum(r.stats["delta_checkpoints_sent"] for r in runtimes) > 0
    # The partitioned node missed fulls: it must have forced resyncs
    # (fulls re-sent to an unacked peer) or ignored unpatchable deltas.
    stressed = sum(
        r.stats["deltas_ignored"] + r.stats["resync_fulls_sent"]
        for r in runtimes
    )
    assert stressed > 0


def test_duplicated_and_reordered_acks_never_regress_baseline():
    """Duplicate/reordered acks must not let a *stale* full be adopted
    as baseline (epoch monotonicity in ``_peer_acked`` and
    ``set_baseline``)."""
    _, runtimes = run_cluster(lossy_link_plan(), deltas=True)
    for r in runtimes:
        for peer in r.state_model.known_nodes():
            base = r.state_model.baseline(peer)
            latest = r.state_model.get(peer)
            if base is not None and latest is not None:
                assert base.epoch <= latest.epoch
