"""Predictive choice resolution via dispatch replay."""

from dataclasses import dataclass

from repro.choice import FirstResolver, PerformanceObjective
from repro.runtime import PredictiveResolver, install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Gift(Message):
    amount: int


class GiverService(Service):
    """Node 0 periodically gives to a chosen peer; peers differ in how
    much the objective values them receiving."""

    state_fields = ("wealth",)

    def __init__(self, node_id: int, n: int = 3) -> None:
        super().__init__(node_id)
        self.n = n
        self.wealth = 0

    def on_init(self) -> None:
        if self.node_id == 0:
            self.set_timer("give", 1.0)

    @timer_handler("give")
    def on_give(self, payload) -> None:
        target = self.choose("gift-target", [p for p in range(self.n) if p != 0])
        self.send(target, Gift(amount=1))
        self.set_timer("give", 1.0)

    @msg_handler(Gift)
    def on_gift(self, src: int, msg: Gift) -> None:
        self.wealth += msg.amount


def factory(node_id):
    return GiverService(node_id, 3)


def weighted_wealth(world):
    # Node 2's wealth is worth double: the predictive resolver should
    # learn to always give to node 2.
    total = 0.0
    for node_id in world.node_ids:
        weight = 2.0 if node_id == 2 else 1.0
        total += weight * world.state_of(node_id).get("wealth", 0)
    return total


def test_predictive_resolver_maximizes_objective():
    cluster = Cluster(3, factory, seed=1)
    install_crystalball(
        cluster, factory,
        objective=PerformanceObjective("wealth", weighted_wealth),
        checkpoint_period=0.5, chain_depth=2, budget=200,
    )
    cluster.start_all()
    cluster.run(until=5.5)
    assert cluster.service(2).wealth == 5
    assert cluster.service(1).wealth == 0


def test_fallback_used_without_runtime():
    cluster = Cluster(3, factory, seed=1)
    for node in cluster.nodes:
        node.choice_resolver = PredictiveResolver(fallback=FirstResolver())
    cluster.start_all()
    cluster.run(until=3.5)
    # First candidate is node 1.
    assert cluster.service(1).wealth == 3
    assert cluster.service(2).wealth == 0


def test_choice_scores_traced():
    cluster = Cluster(3, factory, seed=1)
    install_crystalball(
        cluster, factory,
        objective=PerformanceObjective("wealth", weighted_wealth),
        checkpoint_period=0.5, chain_depth=2, budget=200,
    )
    cluster.start_all()
    cluster.run(until=2.5)
    records = cluster.sim.trace.select("runtime.choice_score")
    assert len(records) >= 2  # two candidates scored per resolution
    assert records[0].data["label"] == "gift-target"


def test_missing_fallback_is_a_configuration_error():
    """fallback=None used to blow up mid-run at the first runtime-less
    resolve(); now the wiring itself refuses."""
    import pytest

    from repro.choice import ConfigurationError

    with pytest.raises(ConfigurationError) as err:
        PredictiveResolver(fallback=None)
    assert "fallback" in str(err.value)
    with pytest.raises(ConfigurationError):
        PredictiveResolver(fallback=object())  # no .resolve method
    # Omitting the argument still means FirstResolver.
    assert isinstance(PredictiveResolver().fallback, FirstResolver)


def test_choices_resolved_counted():
    cluster = Cluster(3, factory, seed=1)
    runtimes = install_crystalball(
        cluster, factory,
        objective=PerformanceObjective("wealth", weighted_wealth),
        checkpoint_period=0.5, chain_depth=2, budget=200,
    )
    cluster.start_all()
    cluster.run(until=3.5)
    assert runtimes[0].stats["choices_resolved"] == 3
