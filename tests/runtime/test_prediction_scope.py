"""Neighborhood-scoped prediction: worlds built from view slices."""

import pytest

from repro.apps.gossip import GossipConfig, make_view_gossip_factory
from repro.choice import RandomResolver
from repro.net import ViewConfig
from repro.runtime import CrystalBallRuntime, install_crystalball
from repro.statemachine import Cluster


def _view_cluster(n=24, seed=6):
    config = GossipConfig(n=n, rumor_count=3, publish_interval=0.1)
    factory = make_view_gossip_factory(config, ViewConfig(shuffle_period=1.0))
    cluster = Cluster(n, factory, seed=seed,
                      resolver_factory=lambda nid: RandomResolver(seed))
    return cluster, factory


def test_invalid_scope_rejected():
    cluster, factory = _view_cluster(n=4)
    with pytest.raises(ValueError):
        CrystalBallRuntime(cluster.node(0), factory, prediction_scope="county")


def test_neighborhood_world_is_a_slice():
    cluster, factory = _view_cluster()
    cluster.start_all()
    cluster.run(until=6.0)          # let the overlay converge first
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.5, prediction_period=0.0,
        set_resolver=False, prediction_scope="neighborhood",
    )
    cluster.run(until=10.0)
    runtime = runtimes[0]
    world = runtime.current_world()
    expected = set(runtime.neighbors()) | {0}
    assert set(world.node_states) <= expected
    assert 0 in world.node_states
    # The slice is strictly smaller than the full membership.
    assert len(world.node_states) < 24


def test_global_scope_still_covers_all_collected_states():
    cluster, factory = _view_cluster(n=12)
    cluster.start_all()
    cluster.run(until=6.0)
    runtimes = install_crystalball(
        cluster, factory, checkpoint_period=0.5, prediction_period=0.0,
        set_resolver=False, prediction_scope="global",
    )
    cluster.run(until=10.0)
    runtime = runtimes[0]
    world = runtime.current_world()
    # Global scope keeps every state the model has collected.
    assert set(world.node_states) == set(runtime.state_model.latest_states())


def test_neighborhood_scope_bounds_world_size_at_scale():
    """At n=96 a neighborhood world stays O(active_size), not O(n)."""
    cluster, factory = _view_cluster(n=96)
    cluster.start_all()
    cluster.run(until=6.0)
    node = cluster.node(0)
    runtime = CrystalBallRuntime(
        node, factory, checkpoint_period=0.5, prediction_period=0.0,
        prediction_scope="neighborhood",
    )
    runtime.start()
    for peer in cluster.service(0).active:
        CrystalBallRuntime(
            cluster.node(peer), factory, checkpoint_period=0.5,
            prediction_period=0.0, prediction_scope="neighborhood",
        ).start()
    cluster.run(until=10.0)
    world = runtime.current_world()
    assert len(world.node_states) <= ViewConfig().active_size + 1
    assert len(world.node_states) < 96 // 4
