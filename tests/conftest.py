"""Shared fixtures: a small echo/counter service and cluster builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Ping(Message):
    """Test message: a hop-counted ping."""

    hops: int


@dataclass
class Note(Message):
    """Test message: an opaque payload."""

    text: str


class EchoService(Service):
    """Bounces pings back until a hop budget runs out."""

    state_fields = ("received", "log")

    def __init__(self, node_id: int, peers: int = 2, max_hops: int = 6) -> None:
        super().__init__(node_id)
        self.peers = peers
        self.max_hops = max_hops
        self.received = 0
        self.log: List[str] = []

    def on_init(self) -> None:
        if self.node_id == 0:
            self.send(1 % self.peers, Ping(hops=1))

    @msg_handler(Ping)
    def on_ping(self, src: int, msg: Ping) -> None:
        self.received += 1
        self.log.append(f"ping{msg.hops}")
        if msg.hops < self.max_hops:
            self.send(src, Ping(hops=msg.hops + 1))

    @msg_handler(Note)
    def on_note(self, src: int, msg: Note) -> None:
        self.log.append(msg.text)


class TickService(Service):
    """Counts periodic timer firings."""

    state_fields = ("ticks",)

    def __init__(self, node_id: int, period: float = 1.0) -> None:
        super().__init__(node_id)
        self.period = period
        self.ticks = 0

    def on_init(self) -> None:
        self.set_timer("tick", self.period)

    @timer_handler("tick")
    def on_tick(self, payload) -> None:
        self.ticks += 1
        self.set_timer("tick", self.period)


@pytest.fixture
def echo_cluster():
    """Two-node echo cluster (seeded, full mesh)."""
    return Cluster(2, lambda nid: EchoService(nid, peers=2), seed=7)


@pytest.fixture
def tick_cluster():
    """Three-node periodic-timer cluster."""
    return Cluster(3, lambda nid: TickService(nid), seed=7)
