"""Continuous-churn scenario harness (small/short for speed)."""

import pytest

from repro.eval import run_churn_experiment


def run_small(variant, seed=1):
    return run_churn_experiment(
        variant, n=11, seed=seed, warmup=8.0, duration=15.0,
        churn_period=3.0, downtime=3.0,
    )


@pytest.mark.parametrize("variant", ["baseline", "choice-random"])
def test_churn_scenario_runs(variant):
    result = run_small(variant)
    assert result.samples == 15
    assert result.churn_events >= 3
    assert result.mean_depth > 0
    assert 0.5 < result.mean_attached_fraction <= 1.0


def test_churn_deterministic():
    a = run_small("baseline", seed=4)
    b = run_small("baseline", seed=4)
    assert a.mean_depth == b.mean_depth
    assert a.max_depth == b.max_depth
    assert a.mean_attached_fraction == b.mean_attached_fraction


def test_churn_crystalball_variant_runs():
    result = run_churn_experiment(
        "choice-crystalball", n=9, seed=1, warmup=6.0, duration=10.0,
        churn_period=3.0, downtime=3.0, chain_depth=4, budget=100,
    )
    assert result.samples == 10
    assert result.mean_attached_fraction > 0.5
