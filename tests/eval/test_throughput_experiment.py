"""T1/T2 throughput experiment: steering modes and digest discipline."""

import pytest

from repro.eval import run_throughput_experiment, steering_mode

SMALL = dict(seed=3, total_requests=300, horizon=6.0)


def test_steering_mode_normalization():
    assert steering_mode(False) == "off"
    assert steering_mode(True) == "static"
    assert steering_mode("amortized") == "amortized"
    with pytest.raises(ValueError):
        steering_mode("turbo")


def test_bool_steering_keeps_legacy_behaviour():
    r = run_throughput_experiment(True, **SMALL)
    assert r.mode == "static"
    assert r.steering is True
    r = run_throughput_experiment(False, **SMALL)
    assert r.mode == "off"
    assert r.steering is False


def test_amortized_mode_runs_safely_and_reports_steering_metrics():
    r = run_throughput_experiment("amortized", **SMALL)
    assert r.mode == "amortized"
    assert r.steering is True
    assert r.safe
    assert r.committed > 0
    steering = r.metrics["steering"]
    # The whole point: far fewer scored rounds than resolved choices.
    resolved = sum(steering["counters"].values())
    assert steering["counters"]["scored_rounds"] >= 1
    assert steering["counters"]["scored_rounds"] < resolved
    assert steering["policy"]["installs"] >= 1
    assert "hit_rate" in steering["policy"]


def test_amortized_mode_is_seed_deterministic():
    a = run_throughput_experiment("amortized", **SMALL)
    b = run_throughput_experiment("amortized", **SMALL)
    assert a.state_digest == b.state_digest
    assert a.committed == b.committed


def test_modes_off_and_static_unaffected_by_amortized_machinery():
    """Amortized-off must reproduce the pre-amortization digests: the
    static and off paths install no runtime, capture no dispatches, and
    resolve exactly as before this feature existed."""
    off = run_throughput_experiment("off", **SMALL)
    static = run_throughput_experiment("static", **SMALL)
    assert "steering" not in off.metrics
    assert "steering" not in static.metrics
    # Static steering dominates off (it batches); both digests are
    # reproducible run-over-run.
    assert static.committed > off.committed
    assert run_throughput_experiment("off", **SMALL).state_digest == off.state_digest
    assert (
        run_throughput_experiment("static", **SMALL).state_digest
        == static.state_digest
    )
