"""Smoke tests for the E4/E5/E6 experiment runners (small configs)."""

import pytest

from repro.eval import (
    run_gossip_experiment,
    run_paxos_experiment,
    run_swarm_experiment,
)
from repro.eval.dissemination_experiment import setting_config
from repro.eval.gossip_experiment import heterogeneous_topology


def test_gossip_runner_small():
    result = run_gossip_experiment(
        "baseline-random", n=8, seed=1, rumor_count=4,
        round_period=0.2, publish_interval=0.3, max_time=30.0,
    )
    assert result.coverage == 1.0
    assert result.mean_latency is not None and result.mean_latency > 0
    assert result.app_messages > 0


def test_gossip_choice_model_small():
    result = run_gossip_experiment(
        "choice-model", n=8, seed=1, rumor_count=4,
        round_period=0.2, publish_interval=0.3, max_time=30.0,
    )
    assert result.coverage == 1.0


def test_gossip_unknown_variant():
    with pytest.raises(ValueError):
        run_gossip_experiment("nope")


def test_heterogeneous_topology_has_slow_links():
    topo = heterogeneous_topology(8, seed=1, slow_fraction=0.25, slow_latency=0.4)
    latencies = [topo.latency(i, j) for i in range(8) for j in range(8) if i != j]
    assert max(latencies) > 0.4
    assert min(latencies) < 0.05


def test_swarm_runner_small():
    result = run_swarm_experiment(
        "baseline-rarest", setting="scarce", n=6, seed=1,
        block_count=12, max_time=120.0,
    )
    assert result.finished == result.leechers
    assert result.mean_completion is not None


def test_swarm_settings():
    scarce = setting_config("scarce", 17, 48)
    abundant = setting_config("abundant", 17, 48)
    assert len(scarce.seeds) == 1
    assert len(abundant.seeds) >= 2
    with pytest.raises(ValueError):
        setting_config("luxurious", 17, 48)


def test_swarm_unknown_variant():
    with pytest.raises(ValueError):
        run_swarm_experiment("nope")


@pytest.mark.parametrize("variant", ["fixed", "mencius", "choice"])
def test_paxos_runner_commits_everything(variant):
    result = run_paxos_experiment(variant, seed=1, requests_per_node=4, max_time=40.0)
    assert result.committed == result.expected
    assert result.mean_latency > 0


def test_paxos_shape_fixed_worst():
    fixed = run_paxos_experiment("fixed", seed=1, requests_per_node=5)
    mencius = run_paxos_experiment("mencius", seed=1, requests_per_node=5)
    choice = run_paxos_experiment("choice", seed=1, requests_per_node=5)
    assert fixed.mean_latency > mencius.mean_latency
    assert choice.mean_latency <= mencius.mean_latency


def test_paxos_unknown_variant():
    with pytest.raises(ValueError):
        run_paxos_experiment("nope")
