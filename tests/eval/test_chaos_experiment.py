"""A7 chaos harness (small n / short horizons for speed)."""

import pytest

from repro.apps.randtree import RandTreeConfig
from repro.chaos import CrashEvent, FaultPlan, LinkFaultEvent
from repro.eval import (
    check_randtree_invariants,
    run_chaos_paxos_experiment,
    run_chaos_tree_experiment,
    run_reliable_join_comparison,
    standard_plans,
)

CFG = RandTreeConfig()


def _state(parent=None, children=(), joined=True):
    return {"parent": parent, "children": list(children), "joined": joined}


class TestInvariantChecker:
    def test_clean_tree_has_no_violations(self):
        states = {
            0: _state(children=[1, 2]),
            1: _state(parent=0, children=[3]),
            2: _state(parent=0),
            3: _state(parent=1),
        }
        assert check_randtree_invariants(states, CFG) == []

    def test_self_parent_and_self_child_flagged(self):
        states = {0: _state(children=[1]), 1: _state(parent=1, children=[1])}
        violations = check_randtree_invariants(states, CFG)
        assert any("own parent" in v for v in violations)
        assert any("own child" in v for v in violations)

    def test_duplicate_child_entry_flagged(self):
        states = {0: _state(children=[1, 1]), 1: _state(parent=0)}
        violations = check_randtree_invariants(states, CFG)
        assert any("twice" in v for v in violations)

    def test_degree_bound_flagged(self):
        states = {0: _state(children=[1, 2, 3])}
        states.update({i: _state(parent=0) for i in (1, 2, 3)})
        violations = check_randtree_invariants(states, CFG)
        assert any("degree bound" in v for v in violations)

    def test_consistent_edge_cycle_flagged(self):
        # 1 and 2 mutually agree on both edges: a real cycle.
        states = {
            0: _state(),
            1: _state(parent=2, children=[2]),
            2: _state(parent=1, children=[1]),
        }
        violations = check_randtree_invariants(states, CFG)
        assert any("cycle" in v for v in violations)

    def test_one_sided_stale_belief_is_not_a_violation(self):
        # 0 still lists 2, but 2 moved under 1: a legitimate transient.
        states = {
            0: _state(children=[1, 2]),
            1: _state(parent=0, children=[2]),
            2: _state(parent=1),
        }
        assert check_randtree_invariants(states, CFG) == []


class TestStandardPlans:
    def test_three_named_plans(self):
        plans = standard_plans(9, horizon=10.0)
        assert sorted(p.name for p in plans) == [
            "crash-recovery", "flap-partition", "message-chaos",
        ]

    def test_amnesia_flag_respected(self):
        for plan in standard_plans(9, horizon=10.0, amnesia=False):
            for event in plan.events:
                if isinstance(event, CrashEvent):
                    assert not event.amnesia

    def test_protected_nodes_never_crash(self):
        for plan in standard_plans(9, horizon=10.0, protect=(0,)):
            for event in plan.events:
                if isinstance(event, CrashEvent):
                    assert event.node != 0

    def test_plans_heal_before_horizon(self):
        for plan in standard_plans(9, horizon=10.0):
            assert plan.horizon <= 10.0


class TestChaosTreeExperiment:
    def test_safe_under_message_chaos(self):
        plan = standard_plans(9, horizon=6.0)[0]
        result = run_chaos_tree_experiment(
            "baseline", seed=2, n=9, plan=plan, settle=5.0,
        )
        assert result.safe
        assert result.probes > 0
        assert result.joined == 9
        assert result.chaos_stats["dropped"] > 0

    def test_deterministic_trace_digest(self):
        plan = standard_plans(9, horizon=6.0)[0]
        a = run_chaos_tree_experiment("baseline", seed=3, n=9, plan=plan,
                                      settle=4.0)
        b = run_chaos_tree_experiment("baseline", seed=3, n=9, plan=plan,
                                      settle=4.0)
        assert a.trace_digest == b.trace_digest
        assert a.final_depth == b.final_depth

    def test_different_seeds_diverge(self):
        plan = standard_plans(9, horizon=6.0)[0]
        a = run_chaos_tree_experiment("baseline", seed=3, n=9, plan=plan,
                                      settle=4.0)
        b = run_chaos_tree_experiment("baseline", seed=4, n=9, plan=plan,
                                      settle=4.0)
        assert a.trace_digest != b.trace_digest

    def test_default_plan_is_randomized_from_seed(self):
        result = run_chaos_tree_experiment("baseline", seed=5, n=9, settle=4.0)
        assert result.plan_name == "random"
        assert result.safe


class TestChaosPaxosExperiment:
    def test_amnesia_plan_rejected(self):
        plan = FaultPlan(events=[
            CrashEvent(at=1.0, node=1, amnesia=True, recover_at=2.0),
        ])
        with pytest.raises(ValueError, match="amnesia"):
            run_chaos_paxos_experiment("mencius", plan=plan)

    def test_agreement_holds_under_chaos(self):
        plan = FaultPlan(name="msg", events=[
            LinkFaultEvent(at=0.0, drop=0.05, duplicate=0.05, reorder=0.1),
        ])
        result = run_chaos_paxos_experiment(
            "mencius", seed=2, plan=plan, requests_per_node=3, max_time=15.0,
        )
        assert result.safe
        assert result.committed > 0


class TestReliableJoinComparison:
    def test_reliability_recovers_loss_free_outcome(self):
        comparison = run_reliable_join_comparison(seed=2, n=9, loss=0.10,
                                                  settle=8.0)
        assert comparison.joined_reliable == 9
        assert comparison.recovered
        assert comparison.reliable_stats.get("retransmissions", 0) > 0
