"""Report generation (quick scope and section rendering)."""

import pytest

from repro.eval.report import ReportSection, e1_section, generate_report


def test_section_markdown_rendering():
    section = ReportSection(
        experiment="EX", title="demo", headers=("a", "b"),
        rows=[(1, 2), (3, 4)], note="a note",
    )
    md = section.to_markdown()
    assert "## EX — demo" in md
    assert "| a | b |" in md
    assert "| 3 | 4 |" in md
    assert "a note" in md


def test_e1_section_values():
    section = e1_section()
    assert section.experiment == "E1"
    metric_names = [row[0] for row in section.rows]
    assert "lines of code" in metric_names
    assert "LoC reduction" in metric_names


def test_invalid_scope_rejected():
    with pytest.raises(ValueError):
        generate_report(scope="enormous")


@pytest.mark.slow
def test_quick_report_generates():
    report = generate_report(scope="quick")
    for experiment in ("E1", "E2", "E3", "E4", "E5", "E6"):
        assert f"## {experiment}" in report
    assert "Scope: **quick**" in report
