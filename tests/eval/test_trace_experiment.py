"""E6/A7 causal-forensics sessions: end-to-end steering explanations."""

import pytest

from repro.eval import run_trace_session


@pytest.fixture(scope="module")
def e6():
    return run_trace_session("e6", seed=1)


@pytest.fixture(scope="module")
def a7():
    return run_trace_session("a7", seed=1)


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_trace_session("zzz")


def test_e6_steers_and_explains(e6):
    assert e6.filtered > 0
    assert e6.steering
    assert e6.events > 0


def test_e6_explanations_root_at_the_resolved_choice(e6):
    # The acceptance property: every steering explanation's chain is
    # rooted at the resolved choice point (the proposer choice) and
    # runs through real messages to the steered delivery.
    for explanation in e6.steering:
        assert explanation.root is not None
        assert explanation.root.category == "choice.resolve"
        assert "proposer" in explanation.root.label
        cats = explanation.categories()
        assert "net.send" in cats
        assert "net.deliver" in cats
        assert cats[-1] == "runtime.steer"


def test_e6_chain_contains_every_message_on_the_causal_path(e6):
    # Between the choice root and the steered delivery, each hop must
    # be a send immediately followed by its delivery — no message on
    # the violation's live causal path is missing from the chain.
    for explanation in e6.steering:
        cats = explanation.categories()
        body = cats[1:-1]  # between choice.resolve and runtime.steer
        sends = [i for i, c in enumerate(body) if c == "net.send"]
        assert sends
        for i in sends:
            assert body[i + 1] == "net.deliver"


def test_e6_predicted_continuation_attached(e6):
    for explanation in e6.steering:
        assert explanation.predicted
        assert any("Accept" in step for step in explanation.predicted)


def test_e6_violation_forensics_carry_predicted_paths(e6):
    assert e6.violations
    best = e6.violations[0]
    assert best.reason.startswith("canary-quiet-acceptor")
    assert best.predicted


def test_a7_violation_forensics_anchor_live_sends(a7):
    # Under chaos the retry sweeps put Prepare traffic on the wire, so
    # the preferred predicted violation has live message anchors: its
    # explanation carries a causal prefix ending in anchored sends.
    assert a7.violations
    best = a7.violations[0]
    assert any(s.category == "net.send" for s in best.steps)


def test_a7_explanations_survive_message_chaos(a7):
    assert a7.plan_name == "message-chaos"
    assert a7.steering
    for explanation in a7.steering:
        assert explanation.root.category == "choice.resolve"


def test_a7_duplicates_attributable_to_original_sends(a7):
    assert a7.duplicate_deliveries > 0
    graph = a7.graph
    dups = [e for e in graph.by_category("net.deliver") if e.dup]
    for dup in dups:
        parent = graph.event(dup.parent)
        assert parent is not None
        assert parent.category == "net.send"
        assert parent.data["dst"] == dup.node


def test_a7_violation_explanation_contains_chaos_touched_message(a7):
    # The predicted violation's causal prefix must mention a message
    # that chaos interfered with (dropped or duplicated) — the whole
    # point of forensics under fault injection.
    assert a7.violations
    best = a7.violations[0]
    kinds_on_chain = {
        s.label.split()[1].split("→")[0]
        for s in best.steps if s.category == "net.send"
    }
    graph = a7.graph
    chaos_touched = set()
    for event in graph.by_category("net.deliver"):
        if event.dup:
            parent = graph.event(event.parent)
            if parent is not None:
                chaos_touched.add(parent.data.get("kind"))
    for event in graph.by_category("net.drop"):
        chaos_touched.add(event.data.get("kind"))
    assert kinds_on_chain & chaos_touched


def test_sessions_are_deterministic():
    first = run_trace_session("e6", seed=2)
    second = run_trace_session("e6", seed=2)
    assert first.trace_digest == second.trace_digest
    assert len(first.steering) == len(second.steering)
    assert first.summary() == second.summary()
