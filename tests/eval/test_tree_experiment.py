"""Case-study scenario harness (small n for speed)."""

import pytest

from repro.apps.randtree import RandTreeConfig
from repro.eval import failed_subtree, optimal_depth, run_tree_experiment


def test_optimal_depth_values():
    assert optimal_depth(1, 2) == 1
    assert optimal_depth(3, 2) == 2
    assert optimal_depth(7, 2) == 3
    assert optimal_depth(31, 2) == 5
    assert optimal_depth(32, 2) == 6
    assert optimal_depth(13, 3) == 3


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        run_tree_experiment("nonsense", n=3)


@pytest.mark.parametrize("variant", ["baseline", "choice-random"])
def test_small_scenario_completes(variant):
    result = run_tree_experiment(variant, n=15, seed=2)
    assert result.joined_after_join == 15
    assert result.joined_after_rejoin == 15
    assert result.depth_after_join >= optimal_depth(15, 2)
    assert result.failed_nodes  # a subtree was actually failed


def test_failed_subtree_is_proper_subset():
    result = run_tree_experiment("baseline", n=15, seed=2)
    assert 0 not in result.failed_nodes
    assert 1 <= len(result.failed_nodes) < 15


def test_crystalball_variant_small():
    result = run_tree_experiment(
        "choice-crystalball", n=9, seed=2, chain_depth=4, budget=120,
    )
    assert result.joined_after_join == 9
    assert result.joined_after_rejoin == 9


def test_deterministic_given_seed():
    a = run_tree_experiment("baseline", n=11, seed=5)
    b = run_tree_experiment("baseline", n=11, seed=5)
    assert a.depth_after_join == b.depth_after_join
    assert a.depth_after_rejoin == b.depth_after_rejoin
    assert a.failed_nodes == b.failed_nodes
