"""EventQueue ordering, cancellation, and bookkeeping."""

import pytest

from repro.sim import EventQueue


def test_pop_returns_earliest():
    queue = EventQueue()
    queue.push(2.0, lambda: None, tag="late")
    queue.push(1.0, lambda: None, tag="early")
    time, tag, _ = queue.pop()
    assert (time, tag) == (1.0, "early")


def test_ties_broken_by_insertion_order():
    queue = EventQueue()
    queue.push(1.0, lambda: None, tag="first")
    queue.push(1.0, lambda: None, tag="second")
    assert queue.pop()[1] == "first"
    assert queue.pop()[1] == "second"


def test_len_counts_live_events():
    queue = EventQueue()
    handles = [queue.push(float(i), lambda: None) for i in range(3)]
    assert len(queue) == 3
    queue.cancel(handles[1])
    assert len(queue) == 2


def test_cancel_returns_true_once():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    assert queue.cancel(handle) is True
    assert queue.cancel(handle) is False


def test_cancelled_event_not_popped():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, tag="gone")
    queue.push(2.0, lambda: None, tag="kept")
    queue.cancel(handle)
    assert queue.pop()[1] == "kept"


def test_cancel_after_pop_returns_false():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.pop()
    assert queue.cancel(handle) is False


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    queue.cancel(handle)
    assert queue.peek_time() == 5.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    handle = queue.push(1.0, lambda: None)
    assert queue
    queue.cancel(handle)
    assert not queue


def test_callbacks_preserved():
    queue = EventQueue()
    fired = []
    queue.push(1.0, lambda: fired.append("a"))
    _, _, callback = queue.pop()
    callback()
    assert fired == ["a"]
