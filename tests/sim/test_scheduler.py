"""Simulator dispatch, cancellation, and run bounds."""

import pytest

from repro.sim import SimulationError, Simulator


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.run(until=1.5)
    assert fired == [1.0]
    assert sim.now == 1.5


def test_run_advances_clock_to_until_even_when_idle():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_drains_queue_without_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(3.0, lambda: fired.append(3))
    dispatched = sim.run()
    assert dispatched == 2
    assert sim.now == 3.0


def test_events_scheduled_during_dispatch_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_max_events_bounds_dispatch():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.run(max_events=4) == 4
    assert len(sim.queue) == 6


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_dispatch():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    assert sim.cancel(handle) is True
    sim.run()
    assert fired == []


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_events_dispatched_counter():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.events_dispatched == 2


def test_identical_seeds_identical_orderings():
    def run_one(seed):
        sim = Simulator(seed=seed)
        order = []
        rng = sim.rng.stream("workload")
        for i in range(20):
            sim.schedule(rng.random(), lambda i=i: order.append(i))
        sim.run()
        return order

    assert run_one(3) == run_one(3)
    assert run_one(3) != run_one(4)
