"""Trace JSONL export."""

import json

from repro.sim import TraceLog
from repro.sim.trace import TraceRecord


def seeded_log():
    log = TraceLog()
    log.record(0.5, "net.send", node=1, dst=2, kind="Ping")
    log.record(1.0, "choice.resolve", node=2, label="x", value=(1, 2))
    log.record(2.0, "runtime.steer", node=2, reason="bad", peers={3, 1})
    return log


def test_dump_all_records(tmp_path):
    path = tmp_path / "trace.jsonl"
    count = seeded_log().dump_jsonl(str(path))
    assert count == 3
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows[0]["category"] == "net.send"
    assert rows[0]["dst"] == 2
    assert rows[1]["value"] == [1, 2]       # tuples become lists
    assert rows[2]["peers"] == [1, 3]       # sets become sorted lists


def test_dump_filtered_by_category(tmp_path):
    path = tmp_path / "net.jsonl"
    count = seeded_log().dump_jsonl(str(path), category="net")
    assert count == 1
    row = json.loads(path.read_text())
    assert row["category"] == "net.send"


def test_dump_preserves_colliding_data_fields(tmp_path):
    # Regression: data fields named like the envelope fields (time,
    # category, node) used to silently overwrite them — or be dropped,
    # depending on insertion order.  They must survive under a
    # ``data_`` prefix with the envelope untouched.
    log = TraceLog()
    log._records.append(TraceRecord(
        time=1.5, category="app.event", node=7,
        data={"time": 99.0, "category": "inner", "node_count": 3},
    ))
    path = tmp_path / "collide.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert row["time"] == 1.5
    assert row["category"] == "app.event"
    assert row["node"] == 7
    assert row["data_time"] == 99.0
    assert row["data_category"] == "inner"
    assert row["node_count"] == 3  # non-colliding fields keep their names


def test_dump_handles_odd_values(tmp_path):
    log = TraceLog()
    log.record(0.0, "x", obj=object())
    path = tmp_path / "odd.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert "object" in row["obj"]  # repr fallback
