"""Trace JSONL export."""

import json

from repro.sim import TraceLog
from repro.sim.trace import TraceRecord


def seeded_log():
    log = TraceLog()
    log.record(0.5, "net.send", node=1, dst=2, kind="Ping")
    log.record(1.0, "choice.resolve", node=2, label="x", value=(1, 2))
    log.record(2.0, "runtime.steer", node=2, reason="bad", peers={3, 1})
    return log


def test_dump_all_records(tmp_path):
    path = tmp_path / "trace.jsonl"
    count = seeded_log().dump_jsonl(str(path))
    assert count == 3
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows[0]["category"] == "net.send"
    assert rows[0]["dst"] == 2
    assert rows[1]["value"] == [1, 2]       # tuples become lists
    assert rows[2]["peers"] == [1, 3]       # sets become sorted lists


def test_dump_filtered_by_category(tmp_path):
    path = tmp_path / "net.jsonl"
    count = seeded_log().dump_jsonl(str(path), category="net")
    assert count == 1
    row = json.loads(path.read_text())
    assert row["category"] == "net.send"


def test_dump_preserves_colliding_data_fields(tmp_path):
    # Regression: data fields named like the envelope fields (time,
    # category, node) used to silently overwrite them — or be dropped,
    # depending on insertion order.  They must survive under a
    # ``data_`` prefix with the envelope untouched.
    log = TraceLog()
    log._records.append(TraceRecord(
        time=1.5, category="app.event", node=7,
        data={"time": 99.0, "category": "inner", "node_count": 3},
    ))
    path = tmp_path / "collide.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert row["time"] == 1.5
    assert row["category"] == "app.event"
    assert row["node"] == 7
    assert row["data_time"] == 99.0
    assert row["data_category"] == "inner"
    assert row["node_count"] == 3  # non-colliding fields keep their names


def test_dump_handles_odd_values(tmp_path):
    log = TraceLog()
    log.record(0.0, "x", obj=object())
    path = tmp_path / "odd.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert "object" in row["obj"]  # repr fallback


def test_dump_renders_message_dataclasses_as_typed_objects(tmp_path):
    # Regression: records carrying a Message used to serialize as its
    # repr string — unqueryable downstream.  They must round-trip
    # through json.loads as {"type": <msg_type>, **fields}.
    from dataclasses import dataclass

    from repro.statemachine import Message

    @dataclass
    class Ping(Message):
        seq: int
        path: tuple

    log = TraceLog()
    log.record(0.0, "app.sent", node=1, msg=Ping(seq=7, path=(1, 2)))
    path = tmp_path / "msg.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert row["msg"] == {"type": "Ping", "seq": 7, "path": [1, 2]}


def test_dump_message_field_name_collision_is_preserved(tmp_path):
    from dataclasses import dataclass

    from repro.statemachine import Message

    @dataclass
    class Odd(Message):
        type: str  # collides with the synthesized "type" key

    log = TraceLog()
    log.record(0.0, "app.sent", msg=Odd(type="inner"))
    path = tmp_path / "odd_msg.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert row["msg"]["type"] == "Odd"
    assert row["msg"]["field_type"] == "inner"


def test_dump_includes_causal_stamp(tmp_path):
    log = TraceLog()
    log._records.append(TraceRecord(
        time=0.25, category="net.send", node=1, data={"dst": 2},
        causal={"ev": 4, "trace": 1, "cause": 3, "lc": 2, "vc": {1: 2}},
    ))
    path = tmp_path / "stamped.jsonl"
    log.dump_jsonl(str(path))
    row = json.loads(path.read_text())
    assert row["causal"]["ev"] == 4
    assert row["causal"]["vc"] == {"1": 2}  # json keys become strings
