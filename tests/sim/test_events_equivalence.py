"""The reworked EventQueue must behave exactly like the seed queue.

``SeedEventQueue`` below is the pre-rework implementation (ordered
dataclass entries + a ``(time, seq)`` side dict).  The hypothesis
property drives both queues through the same random schedule of
push/cancel/pop operations and asserts identical observable behaviour:
pop order, cancel return values, lengths, and peek times.  The new
``pop_if`` fast path is checked against peek+pop on the seed.
"""

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import EventQueue


# ----------------------------------------------------------------------
# The seed implementation, embedded verbatim (modulo docstrings)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeedEventHandle:
    time: float
    seq: int
    tag: str


@dataclass(order=True)
class _SeedEntry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class SeedEventQueue:
    def __init__(self) -> None:
        self._heap: List[_SeedEntry] = []
        self._entries: Dict[Tuple[float, int], _SeedEntry] = {}
        self._next_seq = 0
        self._live = 0

    def push(self, time: float, callback: Callable[[], None], tag: str = "") -> SeedEventHandle:
        seq = self._next_seq
        self._next_seq += 1
        entry = _SeedEntry(time=float(time), seq=seq, callback=callback, tag=tag)
        heapq.heappush(self._heap, entry)
        self._entries[(entry.time, seq)] = entry
        self._live += 1
        return SeedEventHandle(time=entry.time, seq=seq, tag=tag)

    def cancel(self, handle: SeedEventHandle) -> bool:
        entry = self._entries.get((handle.time, handle.seq))
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        self._live -= 1
        return True

    def peek_time(self) -> Optional[float]:
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Tuple[float, str, Callable[[], None]]:
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        entry = heapq.heappop(self._heap)
        del self._entries[(entry.time, entry.seq)]
        self._live -= 1
        return entry.time, entry.tag, entry.callback

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            entry = heapq.heappop(self._heap)
            del self._entries[(entry.time, entry.seq)]

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


# ----------------------------------------------------------------------
# Random-schedule equivalence
# ----------------------------------------------------------------------

# An operation is (kind, time_index, handle_index):
#   kind 0 = push at times[time_index]
#   kind 1 = cancel the handle_index-th issued handle (if any)
#   kind 2 = pop
#   kind 3 = peek_time
#   kind 4 = pop_if(times[time_index]) vs seed peek+pop
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=19),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=120,
)
times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=20, max_size=20,
)


@settings(max_examples=120, deadline=None)
@given(ops=ops_strategy, times=times_strategy)
def test_random_schedules_match_seed_queue(ops, times):
    new_q, seed_q = EventQueue(), SeedEventQueue()
    new_handles, seed_handles = [], []
    trace_new, trace_seed = [], []

    for kind, t_idx, h_idx in ops:
        if kind == 0:
            time = times[t_idx]
            tag = f"op{len(new_handles)}"
            nh = new_q.push(time, lambda: None, tag=tag)
            sh = seed_q.push(time, lambda: None, tag=tag)
            assert (nh.time, nh.seq, nh.tag) == (sh.time, sh.seq, sh.tag)
            new_handles.append(nh)
            seed_handles.append(sh)
        elif kind == 1:
            if not new_handles:
                continue
            idx = h_idx % len(new_handles)
            assert new_q.cancel(new_handles[idx]) == seed_q.cancel(seed_handles[idx])
        elif kind == 2:
            if bool(seed_q):
                n_time, n_tag, _ = new_q.pop()
                s_time, s_tag, _ = seed_q.pop()
                trace_new.append((n_time, n_tag))
                trace_seed.append((s_time, s_tag))
            else:
                for q in (new_q, seed_q):
                    try:
                        q.pop()
                        raise AssertionError("expected IndexError")
                    except IndexError:
                        pass
        elif kind == 3:
            assert new_q.peek_time() == seed_q.peek_time()
        else:
            max_time = times[t_idx]
            popped = new_q.pop_if(max_time)
            seed_next = seed_q.peek_time()
            if seed_next is not None and seed_next <= max_time:
                s_time, s_tag, _ = seed_q.pop()
                assert popped is not None
                assert (popped[0], popped[1]) == (s_time, s_tag)
            else:
                assert popped is None
        assert len(new_q) == len(seed_q)
        assert bool(new_q) == bool(seed_q)

    # Drain both queues: the full remaining order must agree.
    while seed_q:
        n_time, n_tag, _ = new_q.pop()
        s_time, s_tag, _ = seed_q.pop()
        trace_new.append((n_time, n_tag))
        trace_seed.append((s_time, s_tag))
    assert not new_q
    assert trace_new == trace_seed


def test_compaction_keeps_order_under_cancel_storm():
    """Mass cancellation crosses the batched-compaction threshold; the
    survivors must still come out in (time, seq) order."""
    queue = EventQueue()
    handles = [queue.push(float(i % 97), lambda: None, tag=str(i)) for i in range(4000)]
    for i, handle in enumerate(handles):
        if i % 5 != 0:
            queue.cancel(handle)
    expected = sorted(
        (float(i % 97), i) for i in range(4000) if i % 5 == 0
    )
    got = []
    while queue:
        time, tag, _ = queue.pop()
        got.append((time, int(tag)))
    assert got == expected


def test_pop_if_none_bound_pops_everything_in_order():
    queue = EventQueue()
    for i in (3, 1, 2):
        queue.push(float(i), lambda: None, tag=str(i))
    out = []
    while True:
        popped = queue.pop_if(None)
        if popped is None:
            break
        out.append(popped[1])
    assert out == ["1", "2", "3"]
