"""LivenessRegistry transitions and observers."""

from repro.sim import LivenessRegistry


def test_nodes_up_by_default():
    assert LivenessRegistry().is_up(5)


def test_fail_and_recover():
    reg = LivenessRegistry()
    reg.fail(3)
    assert not reg.is_up(3)
    reg.recover(3)
    assert reg.is_up(3)


def test_down_nodes_snapshot():
    reg = LivenessRegistry()
    reg.fail_many([1, 2])
    snapshot = reg.down_nodes
    snapshot.add(99)
    assert reg.down_nodes == {1, 2}


def test_fail_idempotent_no_duplicate_notify():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.fail(1)
    reg.fail(1)
    assert events == [(1, False)]


def test_recover_of_up_node_is_silent():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.recover(1)
    assert events == []


def test_observer_sees_both_transitions():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.fail(2)
    reg.recover(2)
    assert events == [(2, False), (2, True)]


def test_fail_many_and_recover_many_ordered():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append(node))
    reg.fail_many([3, 1, 2])
    assert events == [3, 1, 2]
    reg.recover_many([1, 3])
    assert reg.down_nodes == {2}


def test_unsubscribe_stops_notifications():
    reg = LivenessRegistry()
    events = []
    observer = lambda node, up: events.append(node)  # noqa: E731
    reg.subscribe(observer)
    reg.fail(1)
    assert reg.unsubscribe(observer) is True
    reg.fail(2)
    assert events == [1]


def test_unsubscribe_unknown_observer_is_noop():
    reg = LivenessRegistry()
    assert reg.unsubscribe(lambda node, up: None) is False


def test_unsubscribe_removes_one_registration():
    reg = LivenessRegistry()
    events = []
    observer = lambda node, up: events.append(node)  # noqa: E731
    reg.subscribe(observer)
    reg.subscribe(observer)
    reg.unsubscribe(observer)
    reg.fail(1)
    assert events == [1]  # one registration remains


def test_raising_observer_does_not_starve_later_observers():
    reg = LivenessRegistry()
    events = []

    def broken(node, up):
        raise RuntimeError("buggy failure detector")

    reg.subscribe(broken)
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.fail(3)
    reg.recover(3)
    assert events == [(3, False), (3, True)]
    assert reg.notify_errors == 2


def test_observer_errors_traced_with_clock():
    from repro.sim import TraceLog

    reg = LivenessRegistry(trace=TraceLog())
    reg.clock = lambda: 7.5

    def broken(node, up):
        raise ValueError("boom")

    reg.subscribe(broken)
    reg.fail(1)
    [record] = reg.trace.select("liveness.observer_error")
    assert record.time == 7.5
    assert "ValueError: boom" in record.data["error"]


def test_crash_counts_distinguish_reincarnations():
    reg = LivenessRegistry()
    reg.fail(4)
    reg.recover(4)
    reg.fail(4)
    reg.fail(4)  # idempotent: already down
    assert reg.crash_counts[4] == 2
    assert reg.crash_counts[9] == 0
