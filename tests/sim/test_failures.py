"""LivenessRegistry transitions and observers."""

from repro.sim import LivenessRegistry


def test_nodes_up_by_default():
    assert LivenessRegistry().is_up(5)


def test_fail_and_recover():
    reg = LivenessRegistry()
    reg.fail(3)
    assert not reg.is_up(3)
    reg.recover(3)
    assert reg.is_up(3)


def test_down_nodes_snapshot():
    reg = LivenessRegistry()
    reg.fail_many([1, 2])
    snapshot = reg.down_nodes
    snapshot.add(99)
    assert reg.down_nodes == {1, 2}


def test_fail_idempotent_no_duplicate_notify():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.fail(1)
    reg.fail(1)
    assert events == [(1, False)]


def test_recover_of_up_node_is_silent():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.recover(1)
    assert events == []


def test_observer_sees_both_transitions():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append((node, up)))
    reg.fail(2)
    reg.recover(2)
    assert events == [(2, False), (2, True)]


def test_fail_many_and_recover_many_ordered():
    reg = LivenessRegistry()
    events = []
    reg.subscribe(lambda node, up: events.append(node))
    reg.fail_many([3, 1, 2])
    assert events == [3, 1, 2]
    reg.recover_many([1, 3])
    assert reg.down_nodes == {2}
