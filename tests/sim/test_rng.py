"""Named random stream determinism and isolation."""

from hypothesis import given, strategies as st

from repro.sim import RngRegistry, derive_seed


def test_same_name_same_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_different_names_different_sequences():
    registry = RngRegistry(1)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproduces():
    first = [RngRegistry(42).stream("x").random() for _ in range(3)]
    second = [RngRegistry(42).stream("x").random() for _ in range(3)]
    assert first == second


def test_different_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_new_stream_does_not_perturb_existing():
    registry_a = RngRegistry(9)
    stream = registry_a.stream("main")
    first = stream.random()
    registry_b = RngRegistry(9)
    registry_b.stream("other")  # extra consumer
    stream_b = registry_b.stream("main")
    assert stream_b.random() == first


def test_fork_is_deterministic():
    child_a = RngRegistry(5).fork("sub").stream("s").random()
    child_b = RngRegistry(5).fork("sub").stream("s").random()
    assert child_a == child_b


def test_fork_differs_from_parent():
    parent = RngRegistry(5)
    assert parent.fork("sub").root_seed != parent.root_seed


@given(st.integers(), st.text(max_size=50))
def test_derive_seed_stable_and_64bit(seed, name):
    value = derive_seed(seed, name)
    assert value == derive_seed(seed, name)
    assert 0 <= value < 2 ** 64


@given(st.integers(), st.text(max_size=20), st.text(max_size=20))
def test_derive_seed_name_sensitivity(seed, a, b):
    if a != b:
        assert derive_seed(seed, a) != derive_seed(seed, b)
