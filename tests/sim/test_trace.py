"""TraceLog filtering and counters."""

from repro.sim import TraceLog


def _seeded_log():
    log = TraceLog()
    log.record(0.0, "net.send", node=1, dst=2)
    log.record(1.0, "net.deliver", node=2, src=1)
    log.record(2.0, "runtime.steer", node=2, reason="x")
    log.record(3.0, "net.send", node=2, dst=1)
    return log


def test_select_by_exact_category():
    assert len(_seeded_log().select("net.send")) == 2


def test_select_by_category_prefix():
    assert len(_seeded_log().select("net")) == 3


def test_prefix_does_not_match_partial_word():
    log = TraceLog()
    log.record(0.0, "network.thing")
    assert log.select("net") == []


def test_select_by_node():
    assert len(_seeded_log().select(node=2)) == 3


def test_select_since():
    assert len(_seeded_log().select(since=2.0)) == 2


def test_count_exact():
    assert _seeded_log().count("net.send") == 2


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.record(0.0, "x")
    assert len(log) == 0


def test_clear_resets_everything():
    log = _seeded_log()
    log.clear()
    assert len(log) == 0
    assert log.count("net.send") == 0


def test_records_carry_data():
    log = _seeded_log()
    record = log.select("runtime.steer")[0]
    assert record.data["reason"] == "x"


def test_iteration_in_order():
    times = [r.time for r in _seeded_log()]
    assert times == sorted(times)
