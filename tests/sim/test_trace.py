"""TraceLog filtering and counters."""

from repro.sim import TraceLog


def _seeded_log():
    log = TraceLog()
    log.record(0.0, "net.send", node=1, dst=2)
    log.record(1.0, "net.deliver", node=2, src=1)
    log.record(2.0, "runtime.steer", node=2, reason="x")
    log.record(3.0, "net.send", node=2, dst=1)
    return log


def test_select_by_exact_category():
    assert len(_seeded_log().select("net.send")) == 2


def test_select_by_category_prefix():
    assert len(_seeded_log().select("net")) == 3


def test_prefix_does_not_match_partial_word():
    log = TraceLog()
    log.record(0.0, "network.thing")
    assert log.select("net") == []


def test_select_by_node():
    assert len(_seeded_log().select(node=2)) == 3


def test_select_since():
    assert len(_seeded_log().select(since=2.0)) == 2


def test_count_exact():
    assert _seeded_log().count("net.send") == 2


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.record(0.0, "x")
    assert len(log) == 0


def test_clear_resets_everything():
    log = _seeded_log()
    log.clear()
    assert len(log) == 0
    assert log.count("net.send") == 0


def test_records_carry_data():
    log = _seeded_log()
    record = log.select("runtime.steer")[0]
    assert record.data["reason"] == "x"


def test_iteration_in_order():
    times = [r.time for r in _seeded_log()]
    assert times == sorted(times)


# ----------------------------------------------------------------------
# Bounded logs (max_records ring buffer)
# ----------------------------------------------------------------------


def test_max_records_validated():
    import pytest

    with pytest.raises(ValueError):
        TraceLog(max_records=0)


def test_ring_buffer_keeps_newest():
    log = TraceLog(max_records=3)
    for i in range(10):
        log.record(float(i), "tick", seq=i)
    assert len(log) == 3
    assert [r.data["seq"] for r in log] == [7, 8, 9]
    assert log.dropped_records == 7


def test_ring_buffer_counts_stay_cumulative():
    log = TraceLog(max_records=2)
    for i in range(5):
        log.record(float(i), "tick")
    assert log.count("tick") == 5  # eviction never decrements


def test_ring_buffer_select_sees_live_records_only():
    log = TraceLog(max_records=4)
    for i in range(10):
        log.record(float(i), "tick", seq=i)
    assert [r.data["seq"] for r in log.select("tick")] == [6, 7, 8, 9]
    assert [r.data["seq"] for r in log.select(since=8.0)] == [8, 9]


def test_ring_buffer_dump_and_clear(tmp_path):
    log = TraceLog(max_records=3)
    for i in range(7):
        log.record(float(i), "tick", seq=i)
    path = tmp_path / "ring.jsonl"
    assert log.dump_jsonl(str(path)) == 3
    log.clear()
    assert len(log) == 0
    assert log.dropped_records == 0


def test_select_since_uses_binary_search_boundaries():
    log = TraceLog()
    for i in range(100):
        log.record(i * 0.5, "tick", seq=i)
    hits = log.select(since=25.0)
    assert [r.data["seq"] for r in hits][:2] == [50, 51]
    assert len(hits) == 50
    assert log.select(since=1000.0) == []
