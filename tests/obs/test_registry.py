"""Metrics registry: instruments, labels, views, the enabled gate."""

import pytest

from repro.obs import MetricsRegistry, StatsView, render_key, stats_view


def test_counter_identity_and_increment():
    registry = MetricsRegistry()
    counter = registry.counter("x.hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter("x.hits") is counter


def test_labels_distinguish_instruments():
    registry = MetricsRegistry()
    a = registry.counter("net.sent", node=0)
    b = registry.counter("net.sent", node=1)
    assert a is not b
    a.inc()
    assert registry.counters() == {
        "net.sent{node=0}": 1, "net.sent{node=1}": 0,
    }


def test_render_key():
    assert render_key("x", ()) == "x"
    assert render_key("x", (("a", 1), ("b", 2))) == "x{a=1,b=2}"


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    gauge = registry.gauge("pool.size")
    gauge.set(3.0)
    gauge.inc()
    gauge.dec(2.0)
    assert gauge.value == 2.0


def test_histogram_summary_and_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 3
    assert summary["min"] == 0.05 and summary["max"] == 5.0
    assert summary["buckets"] == {"0.1": 1, "1.0": 1, "+inf": 1}


def test_disabled_registry_gates_histograms_not_counters():
    registry = MetricsRegistry(enabled=False)
    registry.counter("c").inc()
    registry.histogram("h").observe(1.0)
    assert registry.counter("c").value == 1   # counters always record
    assert registry.histogram("h").count == 0  # timed instruments gated


def test_disabled_registry_returns_null_span():
    registry = MetricsRegistry(enabled=False)
    with registry.span("op") as span:
        pass
    assert registry.span_stats("op") is None
    assert span is not None  # the shared no-op object


def test_stats_view_is_dict_shaped():
    registry = MetricsRegistry()
    view = stats_view(registry, "runtime", ("a", "b"), node=3)
    view["a"] += 2
    view["b"] = 7
    assert view["a"] == 2
    assert dict(view) == {"a": 2, "b": 7}
    assert view == {"a": 2, "b": 7}
    assert {"a": 2, "b": 7} == view
    assert view != {"a": 0, "b": 7}
    assert registry.counter("runtime.a", node=3).value == 2


def test_stats_view_equality_across_registries():
    # Determinism comparisons diff whole stats views between runs.
    v1 = stats_view(MetricsRegistry(), "r", ("x",))
    v2 = stats_view(MetricsRegistry(), "r", ("x",))
    v1["x"] += 1
    assert v1 != v2
    v2["x"] += 1
    assert v1 == v2


def test_stats_view_keys_are_fixed():
    view = stats_view(MetricsRegistry(), "r", ("x",))
    with pytest.raises(KeyError):
        view["nope"]
    with pytest.raises(TypeError):
        del view["x"]


def test_snapshot_and_reset():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(2.5)
    registry.histogram("h").observe(1.0)
    with registry.span("s"):
        pass
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 1}
    assert snap["gauges"] == {"g": 2.5}
    assert "h" in snap["histograms"]
    assert "s" in snap["spans"]
    handle = registry.counter("c")
    registry.reset()
    assert handle.value == 0
    assert registry.snapshot()["spans"] == {}


def test_stats_view_repr_is_dict_repr():
    view = stats_view(MetricsRegistry(), "r", ("x",))
    assert repr(view) == "{'x': 0}"
    assert isinstance(view, StatsView)


# ----------------------------------------------------------------------
# Streaming quantiles (log-bucket sketch)
# ----------------------------------------------------------------------

def test_quantiles_on_uniform_data_within_bucket_error():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    for i in range(1, 10_001):
        hist.observe(i / 1000.0)  # uniform on (0, 10]
    # 16 log-buckets per decade -> ~15% bucket width, so readouts land
    # within ±10% of the exact quantile.
    for q, exact in ((0.5, 5.0), (0.95, 9.5), (0.99, 9.9)):
        estimate = hist.quantile(q)
        assert abs(estimate - exact) / exact < 0.10, (q, estimate)


def test_quantile_empty_histogram_is_none():
    hist = MetricsRegistry().histogram("lat")
    assert hist.quantile(0.5) is None
    assert all(v is None for v in hist.quantiles().values())


def test_quantile_validates_q():
    hist = MetricsRegistry().histogram("lat")
    hist.observe(1.0)
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            hist.quantile(bad)


def test_zero_and_negative_observations_map_to_min():
    hist = MetricsRegistry().histogram("lat")
    for value in (-1.0, 0.0, 0.0, 5.0):
        hist.observe(value)
    # rank 0.5 * 4 = 2 falls inside the underflow bucket -> min.
    assert hist.quantile(0.5) == -1.0


def test_quantile_readout_clamped_to_observed_range():
    hist = MetricsRegistry().histogram("lat")
    hist.observe(7.0)
    # A single observation: every quantile is that observation, not the
    # geometric bucket midpoint.
    assert hist.quantile(0.5) == 7.0
    assert hist.quantile(0.99) == 7.0


def test_summary_includes_quantiles():
    hist = MetricsRegistry().histogram("lat")
    for value in (1.0, 2.0, 3.0, 10.0):
        hist.observe(value)
    summary = hist.summary()
    for key in ("p50", "p95", "p99"):
        assert key in summary
        assert summary["min"] <= summary[key] <= summary["max"]
    assert summary["p50"] <= summary["p95"] <= summary["p99"]


def test_disabled_registry_gates_quantiles():
    hist = MetricsRegistry(enabled=False).histogram("lat")
    hist.observe(1.0)
    assert hist.quantile(0.5) is None
