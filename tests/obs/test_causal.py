"""Causal tracer: clocks, context propagation, happens-before graphs."""

from dataclasses import dataclass

from repro.obs import HappensBeforeGraph, enable_causal_tracing
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Token(Message):
    hops: int


class RelayService(Service):
    """0 starts a token that relays 0 -> 1 -> 2."""

    state_fields = ("seen",)

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = 0

    def on_init(self):
        if self.node_id == 0:
            self.set_timer("kick", 0.1)

    @timer_handler("kick")
    def kick(self, payload):
        self.send(1, Token(hops=0))

    @msg_handler(Token)
    def relay(self, src, msg):
        self.seen += 1
        if self.node_id < 2:
            self.send(self.node_id + 1, Token(hops=msg.hops + 1))


def run_relay(causal=True, until=5.0, seed=7):
    cluster = Cluster(3, RelayService, seed=seed, causal=causal)
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def test_causal_off_by_default():
    cluster = Cluster(3, RelayService, seed=7)
    assert cluster.causal is None
    assert cluster.sim.causal is None
    cluster.start_all()
    cluster.run(until=5.0)
    for rec in cluster.sim.trace:
        assert rec.causal is None


def test_sends_and_delivers_are_stamped():
    cluster = run_relay()
    sends = cluster.sim.trace.select("net.send")
    delivers = cluster.sim.trace.select("net.deliver")
    assert sends and delivers
    for rec in sends + delivers:
        assert rec.causal is not None
        assert rec.causal["ev"] > 0


def test_deliver_parent_is_the_send():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    for deliver in graph.by_category("net.deliver"):
        parent = graph.event(deliver.parent)
        assert parent is not None
        assert parent.category == "net.send"
        assert parent.data["dst"] == deliver.node


def test_chain_runs_start_timer_send_deliver():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    deliver_at_2 = [e for e in graph.by_category("net.deliver") if e.node == 2]
    chain = graph.chain(deliver_at_2[0].id)
    cats = [e.category for e in chain]
    # token at node 2: start(0) -> kick timer -> send(0->1) -> deliver(1)
    #                  -> send(1->2) -> deliver(2), one shared trace id.
    assert cats == ["node.start", "node.timer", "net.send", "net.deliver",
                    "net.send", "net.deliver"]
    assert len({e.trace_id for e in chain}) == 1


def test_lamport_clocks_increase_along_chains():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    for event in graph:
        if event.parent is not None:
            parent = graph.event(event.parent)
            if parent is not None:
                assert event.lamport > parent.lamport


def test_vector_clocks_decide_happens_before():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    delivers = sorted(graph.by_category("net.deliver"), key=lambda e: e.id)
    send = graph.event(delivers[0].parent)
    assert graph.happens_before(send.id, delivers[0].id)
    assert not graph.happens_before(delivers[0].id, send.id)


def test_starts_at_different_nodes_are_concurrent():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    starts = graph.by_category("node.start")
    assert len(starts) == 3
    assert graph.concurrent(starts[0].id, starts[1].id)
    assert not graph.concurrent(starts[0].id, starts[0].id)


def test_ancestors_and_descendants_are_inverse():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    deliver_at_2 = [e for e in graph.by_category("net.deliver") if e.node == 2]
    target = deliver_at_2[0].id
    for ancestor in graph.ancestors(target):
        assert target in graph.descendants(ancestor)


def test_critical_path_spans_the_relay():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    path = graph.critical_path()
    assert len(path) >= 3
    times = [e.time for e in path]
    assert times == sorted(times)


def test_timer_fire_parented_to_arming_event():
    cluster = run_relay()
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    timers = graph.by_category("node.timer")
    assert timers
    parent = graph.event(timers[0].parent)
    assert parent is not None
    assert parent.category == "node.start"


def test_trace_digest_identical_with_and_without_causal():
    from repro.eval import trace_digest

    on = run_relay(causal=True)
    off = run_relay(causal=False)
    assert trace_digest(on.sim.trace) == trace_digest(off.sim.trace)
    assert len(on.sim.trace) == len(off.sim.trace)


def test_choice_event_roots_downstream_sends():
    # A choice resolved mid-dispatch must become an ancestor of every
    # send issued later in the same dispatch — that is what lets
    # forensics root explanation chains at choice points.
    from repro.apps.paxos import PaxosConfig, make_paxos_factory
    from repro.eval import wan_topology

    config = PaxosConfig(n=5, request_interval=1.0, requests_per_node=1)
    cluster = Cluster(5, make_paxos_factory("choice", config),
                      topology=wan_topology(5), seed=1, causal=True)
    cluster.start_all()
    cluster.run(until=4.0)
    graph = HappensBeforeGraph.from_trace(cluster.sim.trace)
    choices = [e for e in graph.by_category("choice.resolve")
               if e.data.get("label") == "proposer"]
    assert choices
    choice = choices[0]
    downstream = graph.descendants(choice.id)
    sends = [graph.event(d) for d in downstream
             if graph.event(d).category == "net.send"]
    assert sends  # the routed request/proposal is downstream of the choice


def test_enable_on_live_simulator_stamps_from_then_on():
    cluster = Cluster(3, RelayService, seed=7)
    cluster.start_all()
    cluster.run(until=0.05)  # before the kick timer (t=0.1) fires
    before = len(cluster.sim.trace)
    enable_causal_tracing(cluster.sim)
    cluster.run(until=5.0)
    records = list(cluster.sim.trace)
    assert all(r.causal is None for r in records[:before])
    assert any(r.causal is not None for r in records[before:])


def test_graph_annotations_attach_unstamped_records():
    # Records emitted inside a dispatch without their own event (e.g.
    # app-level context.record calls) attach to the surrounding event.
    cluster = run_relay()
    trace = cluster.sim.trace
    graph = HappensBeforeGraph.from_trace(trace)
    ambient = [r for r in trace
               if r.causal is not None and "ev" not in r.causal]
    for rec in ambient:
        anchor = rec.causal["in"]
        assert graph.event(anchor) is not None
