"""RunStream protocol: write/read round-trips, torn lines, following."""

import json
import threading
import time

import pytest

from repro.obs.stream import (
    RECORD_TYPES,
    STREAM_VERSION,
    RunStream,
    StreamError,
    as_stream,
    follow_stream,
    parse_record,
    read_stream,
    stream_series,
)


@pytest.fixture
def stream_path(tmp_path):
    return str(tmp_path / "run.jsonl")


class TestRunStream:
    def test_header_is_first_record(self, stream_path):
        with RunStream(stream_path, kind="demo", run_id="r1",
                       config={"n": 5}):
            pass
        records = read_stream(stream_path)
        assert records[0] == {
            "type": "header", "version": STREAM_VERSION, "kind": "demo",
            "run": "r1", "config": {"n": 5},
        }

    def test_sample_event_summary_round_trip(self, stream_path):
        stream = RunStream(stream_path, kind="demo", clock=lambda: 2.5)
        stream.write_sample({"ops": 10})
        stream.write_event("probe", ok=True)
        stream.write_summary(total=10)
        records = read_stream(stream_path)
        assert [r["type"] for r in records] == \
            ["header", "sample", "event", "summary"]
        assert records[1]["t"] == 2.5 and records[1]["v"] == {"ops": 10}
        assert records[2]["event"] == "probe"
        assert records[2]["data"] == {"ok": True}
        assert records[3]["data"] == {"total": 10}

    def test_explicit_t_overrides_clock(self, stream_path):
        stream = RunStream(stream_path, kind="demo", clock=lambda: 99.0)
        stream.write_sample({"x": 1}, t=3.0)
        stream.close()
        assert read_stream(stream_path)[1]["t"] == 3.0

    def test_host_seconds_monotonic(self, stream_path):
        stream = RunStream(stream_path, kind="demo")
        stream.write_sample({"x": 1}, t=0.0)
        stream.write_sample({"x": 2}, t=1.0)
        stream.close()
        records = read_stream(stream_path)
        assert 0.0 <= records[1]["host"] <= records[2]["host"]

    def test_summary_closes_stream(self, stream_path):
        stream = RunStream(stream_path, kind="demo")
        stream.write_summary(done=True)
        assert stream.closed
        with pytest.raises(StreamError):
            stream.write_sample({"x": 1}, t=0.0)

    def test_context_manager_closes(self, stream_path):
        with RunStream(stream_path, kind="demo") as stream:
            stream.write_sample({"x": 1}, t=0.0)
        assert stream.closed

    def test_records_are_flushed_immediately(self, stream_path):
        stream = RunStream(stream_path, kind="demo")
        stream.write_sample({"x": 1}, t=0.0)
        # A concurrent reader sees both records before any close.
        assert len(read_stream(stream_path)) == 2
        stream.close()


class TestAsStream:
    def test_none_passes_through(self):
        assert as_stream(None, kind="demo") is None

    def test_path_opens_stream(self, stream_path):
        stream = as_stream(stream_path, kind="demo")
        assert isinstance(stream, RunStream)
        assert stream.kind == "demo"
        stream.close()

    def test_existing_stream_passes_through(self, stream_path):
        original = RunStream(stream_path, kind="demo")
        assert as_stream(original, kind="other") is original
        original.close()


class TestReaders:
    def test_parse_rejects_non_json(self):
        with pytest.raises(StreamError):
            parse_record("not json")

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(StreamError):
            parse_record(json.dumps({"type": "nope"}))

    def test_parse_accepts_every_record_type(self):
        for rtype in RECORD_TYPES:
            assert parse_record(json.dumps({"type": rtype}))["type"] == rtype

    def test_read_ignores_torn_trailing_line(self, stream_path):
        stream = RunStream(stream_path, kind="demo")
        stream.write_sample({"x": 1}, t=0.0)
        stream.close()
        with open(stream_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "sample", "t": 1.0, "v"')  # no newline
        records = read_stream(stream_path)
        assert [r["type"] for r in records] == ["header", "sample"]

    def test_stream_series_folds_samples(self, stream_path):
        stream = RunStream(stream_path, kind="demo")
        stream.write_sample({"a": 1, "b": 10}, t=0.0)
        stream.write_sample({"a": 2}, t=1.0)
        stream.close()
        series = stream_series(read_stream(stream_path))
        assert series == {"a": [(0.0, 1), (1.0, 2)], "b": [(0.0, 10)]}


class TestFollowStream:
    def test_follow_sees_live_appends_and_stops_at_summary(self, stream_path):
        stream = RunStream(stream_path, kind="demo")

        def writer():
            for i in range(3):
                time.sleep(0.05)
                stream.write_sample({"i": i}, t=float(i))
            stream.write_summary(done=True)

        thread = threading.Thread(target=writer)
        thread.start()
        records = list(follow_stream(stream_path, poll=0.01, timeout=5.0))
        thread.join()
        types = [r["type"] for r in records]
        assert types == ["header", "sample", "sample", "sample", "summary"]

    def test_follow_times_out_without_summary(self, stream_path):
        stream = RunStream(stream_path, kind="demo")
        stream.write_sample({"x": 1}, t=0.0)
        start = time.monotonic()
        records = list(follow_stream(stream_path, poll=0.01, timeout=0.2))
        assert time.monotonic() - start < 2.0
        assert [r["type"] for r in records] == ["header", "sample"]
        stream.close()

    def test_follow_waits_for_missing_file(self, tmp_path):
        path = str(tmp_path / "late.jsonl")

        def writer():
            time.sleep(0.1)
            stream = RunStream(path, kind="demo")
            stream.write_summary(done=True)

        thread = threading.Thread(target=writer)
        thread.start()
        records = list(follow_stream(path, poll=0.01, timeout=5.0))
        thread.join()
        assert [r["type"] for r in records] == ["header", "summary"]
