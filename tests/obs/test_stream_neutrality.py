"""Digest neutrality: sampling at ANY cadence never perturbs a run.

The ISSUE-level contract for streaming telemetry — property-tested over
sampler cadences:

* trace digests are byte-identical to sampling-off on a fully traced
  workload;
* ``PredictionReport.digest()`` from a CrystalBall runtime is
  byte-identical to sampling-off;
* ``RunStream`` records round-trip losslessly through
  ``cli tail --json``.
"""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.apps.gossip import GossipConfig, make_exposed_gossip_factory
from repro.choice.resolvers import RandomResolver
from repro.cli import main
from repro.eval.chaos_experiment import trace_digest
from repro.obs import TelemetrySampler
from repro.obs.stream import RunStream, parse_record, read_stream
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler

# Cadences deliberately include sub-event-scale, co-periodic-with-app
# (timers fire at 0.1/1.0), and irrational-looking values.
CADENCES = st.sampled_from([0.07, 0.1, 0.25, 0.5, 1.0, 1.3, 2.0, 3.9])


# ----------------------------------------------------------------------
# Trace-digest neutrality on a traced workload
# ----------------------------------------------------------------------

def _gossip_trace_digest(cadence=None) -> str:
    config = GossipConfig(n=8, rumor_count=4, publish_interval=0.1)
    cluster = Cluster(8, make_exposed_gossip_factory(config), seed=1,
                      resolver_factory=lambda nid: RandomResolver(1))
    if cadence is not None:
        sampler = TelemetrySampler(cluster.sim, cadence=cadence)
        sampler.watch("net.messages", lambda: cluster.network.messages_sent)
        sampler.watch("sim.events", lambda: cluster.sim.events_dispatched)
        sampler.start(until=4.0)
    cluster.start_all()
    cluster.run(until=4.0)
    return trace_digest(cluster.sim.trace)


_GOSSIP_BASELINE = _gossip_trace_digest(cadence=None)


@settings(max_examples=8, deadline=None)
@given(cadence=CADENCES)
def test_trace_digest_identical_at_any_cadence(cadence):
    assert _gossip_trace_digest(cadence) == _GOSSIP_BASELINE


# ----------------------------------------------------------------------
# PredictionReport.digest() neutrality on a CrystalBall runtime
# ----------------------------------------------------------------------

@dataclass
class Bump(Message):
    amount: int


class CounterService(Service):
    state_fields = ("value",)

    def __init__(self, node_id: int, n: int = 3) -> None:
        super().__init__(node_id)
        self.n = n
        self.value = 0

    def on_init(self) -> None:
        self.set_timer("bump", 1.0)

    @timer_handler("bump")
    def on_bump_timer(self, payload) -> None:
        self.send((self.node_id + 1) % self.n, Bump(amount=1))
        self.set_timer("bump", 1.0)

    @msg_handler(Bump)
    def on_bump(self, src: int, msg: Bump) -> None:
        self.value += msg.amount


def _factory(node_id):
    return CounterService(node_id, 3)


def _prediction_digest(cadence=None) -> str:
    cluster = Cluster(3, _factory, seed=3)
    runtimes = install_crystalball(cluster, _factory, checkpoint_period=0.5)
    if cadence is not None:
        sampler = TelemetrySampler(cluster.sim, cadence=cadence)
        sampler.watch("sim.events", lambda: cluster.sim.events_dispatched)
        sampler.start(until=3.0)
    cluster.start_all()
    cluster.run(until=3.0)
    return runtimes[0].run_prediction().digest()


_PREDICTION_BASELINE = _prediction_digest(cadence=None)


@settings(max_examples=8, deadline=None)
@given(cadence=CADENCES)
def test_prediction_digest_identical_at_any_cadence(cadence):
    assert _prediction_digest(cadence) == _PREDICTION_BASELINE


# ----------------------------------------------------------------------
# RunStream records round-trip through ``cli tail --json``
# ----------------------------------------------------------------------

def test_records_round_trip_through_cli_tail_json(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    stream = RunStream(path, kind="demo", run_id="rt-1",
                       config={"seed": 7, "plan": "chaos"})
    stream.write_sample({"ops": 12, "lat": 0.0315}, t=1.0)
    stream.write_event("safety.probe", t=1.5, agreement=True, probe=1)
    stream.write_summary(t=2.0, committed=12, safe=True)

    assert main(["tail", path, "--json"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    round_tripped = [parse_record(line) for line in lines]
    assert round_tripped == read_stream(path)
    assert [r["type"] for r in round_tripped] == \
        ["header", "sample", "event", "summary"]
