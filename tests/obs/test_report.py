"""Run reports: cluster metrics collection and rendering."""

import json

from dataclasses import dataclass

from repro.chaos import reliable_transport
from repro.obs import RunReport, collect_cluster_metrics, run_report
from repro.runtime import install_crystalball
from repro.statemachine import Cluster, Message, Service, msg_handler, timer_handler


@dataclass
class Bump(Message):
    amount: int


class CounterService(Service):
    state_fields = ("value",)

    def __init__(self, node_id: int, n: int = 3) -> None:
        super().__init__(node_id)
        self.n = n
        self.value = 0

    def on_init(self) -> None:
        self.set_timer("bump", 1.0)

    @timer_handler("bump")
    def on_bump_timer(self, payload) -> None:
        self.send((self.node_id + 1) % self.n, Bump(amount=1))
        self.set_timer("bump", 1.0)

    @msg_handler(Bump)
    def on_bump(self, src: int, msg: Bump) -> None:
        self.value += msg.amount


def small_cluster(**cluster_kwargs):
    cluster = Cluster(3, CounterService, seed=1, **cluster_kwargs)
    install_crystalball(cluster, CounterService, checkpoint_period=0.5)
    cluster.start_all()
    cluster.run(until=3.0)
    return cluster


def test_collect_cluster_metrics_shape():
    metrics = collect_cluster_metrics(small_cluster())
    assert set(metrics) == {"sim", "trace", "network", "nodes"}
    assert metrics["sim"]["now"] == 3.0
    assert metrics["sim"]["events_dispatched"] > 0
    assert metrics["network"]["messages_sent"] > 0
    assert metrics["trace"]["records"] > 0
    assert set(metrics["nodes"]) == {0, 1, 2}
    node0 = metrics["nodes"][0]
    assert node0["up"] is True
    assert node0["runtime"]["checkpoints_sent"] > 0
    assert "steering" in node0
    assert "runtime.checkpoint_broadcast" in "".join(node0.get("spans", {}))


def test_run_report_renders_json_and_markdown(tmp_path):
    cluster = small_cluster()
    report = run_report(cluster, "unit/counter", seed=1)
    payload = json.loads(report.to_json())
    assert payload["title"] == "unit/counter"
    assert payload["context"] == {"seed": 1}
    assert "sim" in payload["metrics"]

    markdown = report.to_markdown()
    assert markdown.startswith("# Run report — unit/counter")
    assert "## network" in markdown
    assert "### node 0" in markdown
    assert "| messages_sent |" in markdown

    json_path = tmp_path / "report.json"
    md_path = tmp_path / "report.md"
    report.write(json_path=str(json_path), markdown_path=str(md_path))
    assert json.loads(json_path.read_text())["title"] == "unit/counter"
    assert md_path.read_text() == markdown


def test_run_report_markdown_handles_empty_sections():
    report = RunReport(title="empty", metrics={"sim": {}})
    assert "(empty)" in report.to_markdown()


def test_reliable_transport_shows_up_in_network_section():
    cluster = small_cluster(transport_wrapper=reliable_transport())
    section = collect_cluster_metrics(cluster)["network"]
    assert "reliable" in section
    assert section["reliable"]["sent"] > 0
    assert "pending" in section["reliable"]
