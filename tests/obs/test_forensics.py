"""Forensics: minimal causal explanations and their renderings."""

import json

import pytest

from repro.mc import SafetyProperty
from repro.obs import (
    CausalExplanation,
    ExplanationStep,
    HappensBeforeGraph,
    explain_chain,
    explain_filter,
    explain_steering,
)
from repro.runtime import install_crystalball
from repro.statemachine import Cluster

from tests.runtime.test_controller import factory


@pytest.fixture(scope="module")
def steered_cluster():
    """The reference steering scenario, run once with tracing on."""
    prop = SafetyProperty(
        "node0-low",
        lambda w: w.state_of(0).get("value", 0) < 1 if 0 in w.node_states else True,
    )
    cluster = Cluster(3, factory, seed=3, causal=True)
    install_crystalball(
        cluster, factory, properties=[prop],
        checkpoint_period=0.5, prediction_period=0.9, chain_depth=2,
        budget=300,
    )
    cluster.start_all()
    cluster.run(until=6.0)
    return cluster


def test_steer_explain_records_emitted(steered_cluster):
    records = steered_cluster.sim.trace.select("runtime.steer.explain")
    assert records
    for rec in records:
        assert rec.causal is not None
        assert rec.causal["chain"]
        assert rec.data["reason"] == "node0-low"
        assert rec.data["predicted"]


def test_steering_explanations_reconstruct_full_chain(steered_cluster):
    explanations = explain_steering(steered_cluster.sim.trace)
    assert explanations
    explanation = explanations[0]
    cats = explanation.categories()
    # the offending Bump: sender start -> its timer -> send -> deliver,
    # then the steering action itself as the final step.
    assert cats[0] == "node.start"
    assert "net.send" in cats
    assert "net.deliver" in cats
    assert cats[-1] == "runtime.steer"
    assert explanation.predicted  # the averted continuation rides along


def test_explanation_renderings(steered_cluster):
    explanation = explain_steering(steered_cluster.sim.trace)[0]
    as_json = json.loads(explanation.to_json())
    assert as_json["reason"] == "node0-low"
    assert [s["category"] for s in as_json["steps"]] \
        == explanation.categories()
    md = explanation.to_markdown()
    assert "node0-low" in md and "Predicted continuation" in md
    ascii_art = explanation.to_ascii()
    assert "time" in ascii_art.splitlines()[1]
    assert "steer" in ascii_art


def test_explain_filter_anchors_at_live_send(steered_cluster):
    runtime_filters = [
        f for node in steered_cluster.nodes
        if getattr(node, "crystalball", None) is not None
        for f in node.crystalball.steering.active_filters
    ]
    assert runtime_filters
    explanation = explain_filter(steered_cluster.sim.trace, runtime_filters[0])
    assert explanation.reason == "node0-low"
    assert explanation.steps
    assert explanation.steps[-1].category == "net.send"


def test_explain_chain_trims_at_nearest_choice():
    # Build a synthetic stamped trace: start -> choice -> choice -> send.
    from repro.sim.trace import TraceLog, TraceRecord

    log = TraceLog()
    stamps = [
        (0.0, "node.start", 0, {}, {"ev": 1, "trace": 1, "cause": None, "lc": 1}),
        (0.1, "choice.resolve", 0, {"label": "a"},
         {"ev": 2, "trace": 1, "cause": 1, "lc": 2}),
        (0.2, "choice.resolve", 0, {"label": "b"},
         {"ev": 3, "trace": 1, "cause": 2, "lc": 3}),
        (0.3, "net.send", 0, {"dst": 1, "kind": "X"},
         {"ev": 4, "trace": 1, "cause": 3, "lc": 4}),
    ]
    for time, cat, node, data, causal in stamps:
        log._records.append(TraceRecord(
            time=time, category=cat, node=node, data=data, causal=causal))
    graph = HappensBeforeGraph.from_trace(log)
    trimmed = explain_chain(graph, 4, reason="r")
    assert [s.event_id for s in trimmed.steps] == [3, 4]  # nearest choice
    full = explain_chain(graph, 4, reason="r", trim_at_choice=False)
    assert [s.event_id for s in full.steps] == [1, 2, 3, 4]


def test_compression_elides_repetitive_timer_runs():
    from repro.sim.trace import TraceLog, TraceRecord

    log = TraceLog()
    log._records.append(TraceRecord(
        time=0.0, category="node.start", node=0, data={},
        causal={"ev": 1, "trace": 1, "cause": None, "lc": 1}))
    for i in range(8):
        log._records.append(TraceRecord(
            time=0.5 * (i + 1), category="node.timer", node=0,
            data={"name": "sweep"},
            causal={"ev": i + 2, "trace": 1, "cause": i + 1, "lc": i + 2}))
    graph = HappensBeforeGraph.from_trace(log)
    explanation = explain_chain(graph, 9, reason="r")
    labels = [s.label for s in explanation.steps]
    assert labels[0] == "node.start"
    assert labels[1] == "timer sweep"
    assert labels[2] == "timer sweep (×8)"  # 8 fires collapsed to 2 steps
    assert len(labels) == 3


def test_empty_explanation_renders():
    explanation = CausalExplanation(reason="r", trace_id=0)
    assert explanation.root is None
    assert json.loads(explanation.to_json())["steps"] == []
    assert explanation.to_ascii().strip() == ""
    assert "r" in explanation.to_markdown()


def test_step_serialization_roundtrip():
    step = ExplanationStep(
        event_id=3, time=1.25, node=2, category="net.send", label="send X",
    )
    assert step.to_dict() == {
        "event": 3, "time": 1.25, "node": 2,
        "category": "net.send", "label": "send X",
    }
