"""Series downsampling, TelemetrySampler cadence, FlightRecorder ring."""

import pytest

from repro.obs import FlightRecorder, MetricsRegistry, Series, TelemetrySampler
from repro.obs.stream import RunStream, read_stream
from repro.sim import Simulator


class TestSeries:
    def test_append_and_points(self):
        s = Series("x")
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        assert s.points() == [(0.0, 1.0), (1.0, 2.0)]
        assert s.last() == (1.0, 2.0)
        assert len(s) == 2

    def test_downsampling_halves_resolution(self):
        s = Series("x", max_points=8, agg="last")
        for i in range(8):
            s.append(float(i), float(i))
        # Hitting max_points merged adjacent pairs and doubled stride.
        assert s.stride == 2
        assert len(s._points) == 4
        # "last" keeps each pair's second value at its timestamp.
        assert s._points == [(1.0, 1.0), (3.0, 3.0), (5.0, 5.0), (7.0, 7.0)]

    def test_bounded_memory_over_long_run(self):
        s = Series("x", max_points=16)
        for i in range(10_000):
            s.append(float(i), float(i))
        assert len(s) <= 16
        assert s.stride >= 10_000 // 16
        # The retained points still cover the full time range in order.
        points = s.points()
        assert points == sorted(points)
        assert points[-1][0] == pytest.approx(9999.0, abs=float(s.stride))

    def test_mean_aggregation(self):
        s = Series("x", max_points=4, agg="mean")
        for i, v in enumerate([0.0, 2.0, 4.0, 6.0]):
            s.append(float(i), v)
        assert s.stride == 2
        assert s._points == [(1.0, 1.0), (3.0, 5.0)]

    def test_max_min_sum_aggregations(self):
        expected = {
            "max": [(1.0, 1.0), (3.0, 3.0)],
            "min": [(1.0, 0.0), (3.0, 2.0)],
            "sum": [(1.0, 1.0), (3.0, 5.0)],
        }
        for agg, merged in expected.items():
            s = Series("x", max_points=4, agg=agg)
            for i, v in enumerate([0.0, 1.0, 2.0, 3.0]):
                s.append(float(i), v)
            assert s.points() == merged, agg

    def test_partial_bucket_visible_in_points(self):
        s = Series("x", max_points=4)
        for i in range(4):
            s.append(float(i), float(i))
        assert s.stride == 2
        s.append(4.0, 4.0)  # strides now buffer one pending value
        assert s.points()[-1] == (4.0, 4.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Series("x", max_points=2)
        with pytest.raises(ValueError):
            Series("x", agg="median")


class TestTelemetrySampler:
    def test_samples_on_cadence(self):
        sim = Simulator(seed=1)
        ticks = {"n": 0}

        def work():
            ticks["n"] += 1
            sim.schedule(0.1, work, tag="app")

        sim.schedule(0.1, work, tag="app")
        sampler = TelemetrySampler(sim, cadence=1.0)
        sampler.watch("work.n", lambda: ticks["n"])
        sampler.start(until=5.0)
        sim.run(until=5.0)
        assert sampler.samples_taken == 5
        points = sampler.series["work.n"].points()
        assert [t for t, _ in points] == [1.0, 2.0, 3.0, 4.0, 5.0]
        # Monotone workload -> monotone cumulative series.
        values = [v for _, v in points]
        assert values == sorted(values)

    def test_until_bounds_rescheduling(self):
        sim = Simulator(seed=1)
        sampler = TelemetrySampler(sim, cadence=1.0)
        sampler.watch("now", lambda: sim.now)
        sampler.start(until=3.0)
        sim.run(until=100.0)  # queue drains: no sampler self-perpetuation
        assert sampler.samples_taken == 3

    def test_stop_halts_sampling(self):
        sim = Simulator(seed=1)
        sampler = TelemetrySampler(sim, cadence=1.0)
        sampler.watch("now", lambda: sim.now)
        sampler.start(until=10.0)
        sim.run(until=2.0)
        sampler.stop()
        sim.run(until=10.0)
        assert sampler.samples_taken == 2

    def test_watch_registry_instruments(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry()
        counter = registry.counter("app.ops", node=1)
        gauge = registry.gauge("app.depth", node=1)
        sampler = TelemetrySampler(sim, cadence=1.0)
        added = sampler.watch_registry(registry, prefix="app.")
        assert added == 2
        counter.inc(5)
        gauge.set(2.0)
        values = sampler.sample_now()
        assert values["app.ops{node=1}"] == 5
        assert values["app.depth{node=1}"] == 2.0

    def test_watch_histogram_streams_p95(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        sampler = TelemetrySampler(sim, cadence=1.0)
        sampler.watch_histogram(hist)
        for v in (1.0, 2.0, 10.0):
            hist.observe(v)
        values = sampler.sample_now()
        assert values["lat.count"] == 3
        assert values["lat.p95"] > 0

    def test_duplicate_series_rejected(self):
        sampler = TelemetrySampler(Simulator(seed=1), cadence=1.0)
        sampler.watch("x", lambda: 0)
        with pytest.raises(ValueError):
            sampler.watch("x", lambda: 1)

    def test_feeds_stream_and_recorder(self, tmp_path):
        sim = Simulator(seed=1)
        path = str(tmp_path / "run.jsonl")
        stream = RunStream(path, kind="demo", clock=lambda: sim.now)
        recorder = FlightRecorder(window=100.0)
        sampler = TelemetrySampler(sim, cadence=1.0, stream=stream,
                                   recorder=recorder)
        sampler.watch("now", lambda: sim.now)
        sampler.start(until=3.0)
        sim.run(until=3.0)
        stream.close()
        samples = [r for r in read_stream(path) if r["type"] == "sample"]
        assert len(samples) == 3
        assert samples[0]["v"] == {"now": 1.0}
        assert len(recorder.samples) == 3

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            TelemetrySampler(Simulator(seed=1), cadence=0.0)


class TestFlightRecorder:
    def test_window_evicts_old_entries(self):
        recorder = FlightRecorder(window=5.0)
        for t in range(10):
            recorder.note_sample(float(t), {"v": t})
        times = [entry["t"] for entry in recorder.samples]
        assert min(times) >= 9.0 - 5.0
        assert max(times) == 9.0

    def test_events_keep_causal_stamps(self):
        recorder = FlightRecorder(window=10.0)
        recorder.note_event(1.0, "steer", data={"src": 2}, causal=[5, 7])
        entry = recorder.events[0]
        assert entry["event"] == "steer"
        assert entry["causal"] == [5, 7]
        recorder.note_event(2.0, "plain")
        assert "causal" not in recorder.events[1]

    def test_dump_writes_json(self, tmp_path):
        import json

        path = str(tmp_path / "postmortem.json")
        recorder = FlightRecorder(window=10.0, dump_path=path)
        recorder.note_sample(1.0, {"x": 1})
        recorder.note_event(2.0, "violation", data={"prop": "agreement"})
        written = recorder.dump("test violation", now=2.0)
        assert written == path
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        ring = doc["flight_recorder"]
        assert ring["reason"] == "test violation"
        assert ring["samples"] == [{"t": 1.0, "v": {"x": 1}}]
        assert ring["events"][0]["event"] == "violation"
        assert recorder.dumps_written == 1

    def test_dump_without_path_keeps_snapshot(self):
        recorder = FlightRecorder(window=10.0)
        recorder.note_sample(1.0, {"x": 1})
        assert recorder.dump("no path") is None
        assert recorder.last_dump["flight_recorder"]["reason"] == "no path"

    def test_explicit_path_overrides_default(self, tmp_path):
        recorder = FlightRecorder(window=10.0,
                                  dump_path=str(tmp_path / "a.json"))
        override = str(tmp_path / "b.json")
        assert recorder.dump("x", path=override) == override

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FlightRecorder(window=0.0)
