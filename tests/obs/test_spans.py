"""Spans: host-clock timing with simulated-time correlation."""

from repro.obs import MetricsRegistry


def test_span_records_host_duration():
    registry = MetricsRegistry()
    with registry.span("op"):
        sum(range(1000))
    stats = registry.span_stats("op")
    assert stats.count == 1
    assert stats.total_s >= 0.0
    assert stats.min_s <= stats.max_s


def test_span_accumulates_across_entries():
    registry = MetricsRegistry()
    for _ in range(3):
        with registry.span("op"):
            pass
    stats = registry.span_stats("op")
    assert stats.count == 3
    assert stats.mean_s == stats.total_s / 3


def test_span_correlates_sim_clock():
    registry = MetricsRegistry()
    sim_now = {"t": 10.0}
    with registry.span("op", clock=lambda: sim_now["t"]):
        sim_now["t"] = 12.5
    stats = registry.span_stats("op")
    assert stats.first_sim == 10.0
    assert stats.last_sim == 12.5
    assert stats.total_sim_s == 2.5


def test_span_labels_partition_stats():
    registry = MetricsRegistry()
    with registry.span("op", node=0):
        pass
    with registry.span("op", node=1):
        pass
    assert registry.span_stats("op", node=0).count == 1
    assert registry.span_stats("op", node=1).count == 1
    assert registry.span_stats("op") is None


def test_span_summary_shape():
    registry = MetricsRegistry()
    with registry.span("op", clock=lambda: 1.0):
        pass
    summary = registry.span_stats("op").summary()
    for key in ("count", "total_s", "mean_s", "min_s", "max_s",
                "sim_window", "total_sim_s"):
        assert key in summary


def test_span_records_on_exception():
    registry = MetricsRegistry()
    try:
        with registry.span("op"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert registry.span_stats("op").count == 1
