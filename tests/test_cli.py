"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("e1", "e3", "e7"):
        assert exp_id in out


def test_e1_prints_table(capsys):
    assert main(["e1"]) == 0
    out = capsys.readouterr().out
    assert "lines of code" in out
    assert "LoC reduction" in out


def test_e6_single_variant(capsys):
    assert main(["e6", "--variant", "mencius", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "mencius" in out
    assert "committed=50/50" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["zzz"])


def test_e5_setting_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["e5", "--setting", "bogus"])


def test_parser_defaults():
    args = build_parser().parse_args(["e3"])
    assert args.seeds == [1]
    assert args.variant is None
