"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("e1", "e3", "e7"):
        assert exp_id in out


def test_e1_prints_table(capsys):
    assert main(["e1"]) == 0
    out = capsys.readouterr().out
    assert "lines of code" in out
    assert "LoC reduction" in out


def test_e6_single_variant(capsys):
    assert main(["e6", "--variant", "mencius", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "mencius" in out
    assert "committed=50/50" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["zzz"])


def test_e5_setting_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["e5", "--setting", "bogus"])


def test_parser_defaults():
    args = build_parser().parse_args(["e3"])
    assert args.seeds == [1]
    assert args.variant is None


def test_trace_requires_known_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "e2"])


def test_trace_explain_prints_causal_chain(capsys):
    assert main(["trace", "e6", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "steered=" in out
    assert "choice proposer" in out      # the chain's root
    assert "steer: drop" in out          # the steering action
    assert "predicted continuation" in out


def test_trace_writes_artifacts(tmp_path, capsys):
    json_path = tmp_path / "TRACE_EXPLAIN.json"
    md_path = tmp_path / "TRACE_EXPLAIN.md"
    jsonl_path = tmp_path / "trace.jsonl"
    assert main(["trace", "e6", "--json", str(json_path),
                 "--markdown", str(md_path), "--jsonl", str(jsonl_path)]) == 0
    import json as jsonlib

    explanation = jsonlib.loads(json_path.read_text())
    assert explanation["steps"][0]["category"] == "choice.resolve"
    assert "Causal chain" in md_path.read_text()
    first = jsonlib.loads(jsonl_path.read_text().splitlines()[0])
    assert "category" in first


def test_trace_markdown_format(capsys):
    assert main(["trace", "e6", "--explain", "--format", "markdown"]) == 0
    out = capsys.readouterr().out
    assert "### Why:" in out
