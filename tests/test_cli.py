"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("e1", "e3", "e7"):
        assert exp_id in out


def test_e1_prints_table(capsys):
    assert main(["e1"]) == 0
    out = capsys.readouterr().out
    assert "lines of code" in out
    assert "LoC reduction" in out


def test_e6_single_variant(capsys):
    assert main(["e6", "--variant", "mencius", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "mencius" in out
    assert "committed=50/50" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["zzz"])


def test_e5_setting_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["e5", "--setting", "bogus"])


def test_parser_defaults():
    args = build_parser().parse_args(["e3"])
    assert args.seeds == [1]
    assert args.variant is None


def test_trace_requires_known_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "e2"])


def test_trace_explain_prints_causal_chain(capsys):
    assert main(["trace", "e6", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "steered=" in out
    assert "choice proposer" in out      # the chain's root
    assert "steer: drop" in out          # the steering action
    assert "predicted continuation" in out


def test_trace_writes_artifacts(tmp_path, capsys):
    json_path = tmp_path / "TRACE_EXPLAIN.json"
    md_path = tmp_path / "TRACE_EXPLAIN.md"
    jsonl_path = tmp_path / "trace.jsonl"
    assert main(["trace", "e6", "--json", str(json_path),
                 "--markdown", str(md_path), "--jsonl", str(jsonl_path)]) == 0
    import json as jsonlib

    explanation = jsonlib.loads(json_path.read_text())
    assert explanation["steps"][0]["category"] == "choice.resolve"
    assert "Causal chain" in md_path.read_text()
    first = jsonlib.loads(jsonl_path.read_text().splitlines()[0])
    assert "category" in first


def test_trace_markdown_format(capsys):
    assert main(["trace", "e6", "--explain", "--format", "markdown"]) == 0
    out = capsys.readouterr().out
    assert "### Why:" in out


# ----------------------------------------------------------------------
# Streaming telemetry commands: t1 / tail / top
# ----------------------------------------------------------------------

def _write_demo_stream(path, finish=True):
    from repro.obs.stream import RunStream

    stream = RunStream(str(path), kind="demo", run_id="r-demo",
                       config={"seed": 7})
    stream.write_sample({"ops": 10, "lat": 0.25}, t=1.0)
    stream.write_sample({"ops": 25, "lat": 0.5}, t=2.0)
    stream.write_event("safety.probe", t=2.5, agreement=True)
    if finish:
        stream.write_summary(t=3.0, committed=25)
    else:
        stream.close()


def test_tail_missing_file_is_error(tmp_path, capsys):
    assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2
    assert "no stream at" in capsys.readouterr().err


def test_tail_renders_records(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _write_demo_stream(path)
    assert main(["tail", str(path)]) == 0
    out = capsys.readouterr().out
    assert "# demo run r-demo" in out
    assert "ops=10" in out and "ops=25" in out
    assert "event safety.probe" in out
    assert "== summary" in out and "committed=25" in out


def test_tail_json_emits_valid_jsonl(tmp_path, capsys):
    import json as jsonlib

    path = tmp_path / "run.jsonl"
    _write_demo_stream(path)
    assert main(["tail", str(path), "--json"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert [jsonlib.loads(l)["type"] for l in lines] == \
        ["header", "sample", "sample", "event", "summary"]


def test_top_renders_series_and_status(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _write_demo_stream(path)
    assert main(["top", str(path)]) == 0
    out = capsys.readouterr().out
    assert "run r-demo" in out and "finished" in out
    assert "samples=2" in out
    assert "ops" in out and "lat" in out
    assert "== summary" in out


def test_top_shows_running_without_summary(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    _write_demo_stream(path, finish=False)
    assert main(["top", str(path)]) == 0
    assert "RUNNING" in capsys.readouterr().out


def test_t1_quick_streams_run(tmp_path, capsys):
    from repro.obs.stream import read_stream

    path = tmp_path / "t1.jsonl"
    assert main(["t1", "--quick", "--stream", str(path)]) == 0
    out = capsys.readouterr().out
    assert "committed" in out
    records = read_stream(str(path))
    types = [r["type"] for r in records]
    assert types[0] == "header" and types[-1] == "summary"
    assert types.count("sample") == 15  # one per second over the horizon


def test_t1_parser_defaults():
    args = build_parser().parse_args(["t1"])
    assert args.steering == "on"
    assert args.seed == 1
    assert args.cadence == 1.0
    assert args.stream is None


def test_fuzz_parser_accepts_stream():
    args = build_parser().parse_args(
        ["fuzz", "--stream", "f.jsonl", "--progress-every", "10"])
    assert args.stream == "f.jsonl"
    assert args.progress_every == 10
