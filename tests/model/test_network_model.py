"""Predictive network model: observation, queries, merging."""

import pytest

from repro.model import NetworkModel
from repro.net import full_mesh


def test_defaults_when_unknown():
    model = NetworkModel(default_latency=0.1, default_bandwidth=1e6, default_loss=0.01)
    assert model.latency(0, 1) == 0.1
    assert model.bandwidth(0, 1) == 1e6
    assert model.loss(0, 1) == 0.01


def test_self_latency_zero():
    assert NetworkModel().latency(3, 3) == 0.0


def test_first_observation_taken_verbatim():
    model = NetworkModel()
    model.observe_latency(0, 1, 0.2, now=1.0)
    assert model.latency(0, 1) == 0.2


def test_ewma_moves_toward_new_samples():
    model = NetworkModel()
    model.observe_latency(0, 1, 0.1, now=1.0)
    model.observe_latency(0, 1, 0.3, now=2.0)
    assert 0.1 < model.latency(0, 1) < 0.3


def test_rtt_sums_both_directions():
    model = NetworkModel()
    model.observe_latency(0, 1, 0.1, now=0.0)
    model.observe_latency(1, 0, 0.3, now=0.0)
    assert model.rtt(0, 1) == pytest.approx(0.4)


def test_observe_rtt_splits_symmetrically():
    model = NetworkModel()
    model.observe_rtt(0, 1, 0.4, now=0.0)
    assert model.latency(0, 1) == pytest.approx(0.2)
    assert model.latency(1, 0) == pytest.approx(0.2)


def test_transfer_time_uses_bandwidth():
    model = NetworkModel()
    model.observe_latency(0, 1, 0.1, now=0.0)
    model.observe_bandwidth(0, 1, 8e6, now=0.0)
    assert model.transfer_time(0, 1, 1000) == pytest.approx(0.101)


def test_confidence_zero_when_never_observed():
    assert NetworkModel().confidence(0, 1, now=5.0) == 0.0


def test_confidence_decays_with_age():
    model = NetworkModel()
    model.observe_latency(0, 1, 0.1, now=0.0)
    fresh = model.confidence(0, 1, now=0.0)
    stale = model.confidence(0, 1, now=100.0)
    assert stale < fresh


def test_bootstrap_from_topology_matches_ground_truth():
    topo = full_mesh(3, latency=0.07, bandwidth=5e6)
    model = NetworkModel()
    model.bootstrap_from_topology(topo)
    assert model.latency(0, 2) == pytest.approx(0.07)
    assert model.bandwidth(1, 2) == pytest.approx(5e6)


def test_merge_adopts_fresher_estimates():
    mine = NetworkModel()
    theirs = NetworkModel()
    mine.observe_latency(0, 1, 0.1, now=1.0)
    theirs.observe_latency(0, 1, 0.9, now=5.0)
    theirs.observe_latency(2, 3, 0.2, now=2.0)
    mine.merge(theirs)
    assert mine.latency(0, 1) == 0.9  # theirs was fresher
    assert mine.latency(2, 3) == 0.2  # new pair adopted


def test_merge_keeps_fresher_local():
    mine = NetworkModel()
    theirs = NetworkModel()
    mine.observe_latency(0, 1, 0.1, now=9.0)
    theirs.observe_latency(0, 1, 0.9, now=5.0)
    mine.merge(theirs)
    assert mine.latency(0, 1) == 0.1


def test_merge_copies_do_not_alias():
    mine = NetworkModel()
    theirs = NetworkModel()
    theirs.observe_latency(0, 1, 0.5, now=1.0)
    mine.merge(theirs)
    theirs.observe_latency(0, 1, 0.9, now=2.0)
    assert mine.latency(0, 1) == 0.5
