"""State model: checkpoint storage, ages, consistent cuts."""

from repro.model import StateModel


def test_update_and_get():
    model = StateModel(owner_id=0)
    assert model.update(1, epoch=1, taken_at=0.5, state={"x": 1})
    checkpoint = model.get(1)
    assert checkpoint.epoch == 1
    assert checkpoint.state == {"x": 1}


def test_stale_update_rejected():
    model = StateModel(0)
    model.update(1, epoch=2, taken_at=1.0, state={"x": 2})
    assert not model.update(1, epoch=1, taken_at=5.0, state={"x": 1})
    assert model.get(1).state == {"x": 2}


def test_same_epoch_later_time_accepted():
    model = StateModel(0)
    model.update(1, epoch=1, taken_at=1.0, state={"x": 1})
    assert model.update(1, epoch=1, taken_at=2.0, state={"x": 2})


def test_stored_state_is_copied():
    model = StateModel(0)
    state = {"list": [1]}
    model.update(1, epoch=1, taken_at=0.0, state=state)
    state["list"].append(2)
    assert model.get(1).state == {"list": [1]}


def test_age_and_unknown():
    model = StateModel(0)
    model.update(1, epoch=1, taken_at=3.0, state={})
    assert model.age(1, now=5.0) == 2.0
    assert model.age(9, now=5.0) is None


def test_forget():
    model = StateModel(0)
    model.update(1, epoch=1, taken_at=0.0, state={})
    model.forget(1)
    assert model.get(1) is None
    assert len(model) == 0


def test_known_nodes_sorted():
    model = StateModel(0)
    for node in (5, 1, 3):
        model.update(node, epoch=1, taken_at=0.0, state={})
    assert model.known_nodes() == [1, 3, 5]


def test_consistent_cut_uses_common_epoch():
    # Regression: the filter used to be ``cp.epoch >= min(epochs)`` — a
    # tautology that admitted every checkpoint, mixing epochs.  The cut
    # must hold only checkpoints *from* the common (minimum) epoch.
    model = StateModel(0)
    model.update(1, epoch=3, taken_at=1.0, state={"v": "new"})
    model.update(2, epoch=2, taken_at=0.5, state={"v": "old"})
    cut = model.consistent_cut(now=2.0)
    assert set(cut) == {2}
    assert cut[2] == {"v": "old"}


def test_consistent_cut_same_epoch_includes_everyone():
    model = StateModel(0)
    model.update(1, epoch=4, taken_at=1.0, state={"v": "a"})
    model.update(2, epoch=4, taken_at=1.5, state={"v": "b"})
    model.update(3, epoch=4, taken_at=0.9, state={"v": "c"})
    cut = model.consistent_cut(now=2.0)
    assert set(cut) == {1, 2, 3}


def test_consistent_cut_mixed_epochs_keeps_only_cut_epoch():
    model = StateModel(0)
    model.update(1, epoch=5, taken_at=2.0, state={})
    model.update(2, epoch=3, taken_at=1.0, state={})
    model.update(3, epoch=3, taken_at=1.2, state={})
    cut = model.consistent_cut(now=3.0)
    assert set(cut) == {2, 3}


def test_consistent_cut_max_age_filters():
    model = StateModel(0)
    model.update(1, epoch=1, taken_at=0.0, state={})
    model.update(2, epoch=1, taken_at=9.0, state={})
    cut = model.consistent_cut(now=10.0, max_age=5.0)
    assert set(cut) == {2}


def test_consistent_cut_max_age_raises_cut_epoch():
    # The age filter runs first: once the stale low-epoch checkpoint is
    # dropped, the cut epoch is recomputed over the survivors.
    model = StateModel(0)
    model.update(1, epoch=1, taken_at=0.0, state={})
    model.update(2, epoch=4, taken_at=9.0, state={})
    model.update(3, epoch=4, taken_at=8.0, state={})
    cut = model.consistent_cut(now=10.0, max_age=5.0)
    assert set(cut) == {2, 3}


def test_neighbor_checkpoint_default_timers_is_fresh_list():
    # Regression: ``timers`` defaulted to ``None`` (annotated as a
    # list), so every default-constructed checkpoint either crashed
    # iteration or shared one mutable list.
    from repro.model import NeighborCheckpoint

    a = NeighborCheckpoint(node_id=1, epoch=1, taken_at=0.0, state={})
    b = NeighborCheckpoint(node_id=2, epoch=1, taken_at=0.0, state={})
    assert a.timers == []
    a.timers.append(("t", 1.0, None))
    assert b.timers == []


def test_latest_states_returns_copies():
    model = StateModel(0)
    model.update(1, epoch=1, taken_at=0.0, state={"x": [1]})
    states = model.latest_states()
    states[1]["x"].append(2)
    assert model.get(1).state == {"x": [1]}
