"""Age/sample confidence functions."""

import pytest
from hypothesis import given, strategies as st

from repro.model import age_confidence, combined_confidence, sample_confidence


def test_fresh_information_full_confidence():
    assert age_confidence(0.0) == 1.0
    assert age_confidence(-5.0) == 1.0  # clock skew clamps


def test_half_life_semantics():
    assert age_confidence(30.0, half_life=30.0) == pytest.approx(0.5)
    assert age_confidence(60.0, half_life=30.0) == pytest.approx(0.25)


def test_invalid_half_life():
    with pytest.raises(ValueError):
        age_confidence(1.0, half_life=0)


def test_no_samples_no_confidence():
    assert sample_confidence(0) == 0.0


def test_sample_confidence_monotone():
    values = [sample_confidence(k) for k in range(10)]
    assert values == sorted(values)
    assert all(v < 1.0 for v in values)


@given(st.floats(min_value=0, max_value=1e6), st.integers(min_value=0, max_value=1000))
def test_combined_bounded(age, samples):
    value = combined_confidence(age, samples)
    assert 0.0 <= value <= 1.0


@given(st.floats(min_value=0, max_value=100), st.floats(min_value=0.1, max_value=100))
def test_age_confidence_decreasing(age, half_life):
    assert age_confidence(age + 1, half_life) <= age_confidence(age, half_life)
