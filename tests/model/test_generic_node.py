"""Generic (dummy) node havoc templates."""

from dataclasses import dataclass

from repro.model import GENERIC_NODE_ID, GenericNode
from repro.statemachine import Message


@dataclass
class Probe(Message):
    target: int


def test_default_identity():
    assert GenericNode().node_id == GENERIC_NODE_ID


def test_no_templates_no_messages():
    assert GenericNode().possible_messages([1, 2]) == []


def test_templates_generate_per_target():
    node = GenericNode()
    node.add_template(lambda target: Probe(target=target))
    messages = node.possible_messages([1, 2])
    assert [(src, dst) for src, dst, _ in messages] == [
        (GENERIC_NODE_ID, 1), (GENERIC_NODE_ID, 2),
    ]
    assert messages[0][2].target == 1


def test_template_returning_none_skipped():
    node = GenericNode()
    node.add_template(lambda target: Probe(target=target) if target != 2 else None)
    messages = node.possible_messages([1, 2, 3])
    assert [dst for _, dst, _ in messages] == [1, 3]


def test_multiple_templates_compose():
    node = GenericNode(node_id=-7)
    node.add_template(lambda t: Probe(target=t))
    node.add_template(lambda t: Probe(target=t + 100))
    messages = node.possible_messages([5])
    assert len(messages) == 2
    assert all(src == -7 for src, _, _ in messages)
