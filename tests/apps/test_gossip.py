"""Gossip protocol behaviour and peer-choice policies."""

import pytest

from repro.apps.gossip import (
    GossipConfig,
    all_delivered,
    bar_partner,
    coverage,
    delivery_latencies,
    make_baseline_gossip_factory,
    make_exposed_gossip_factory,
    make_model_gossip_resolver,
    mean_delivery_latency,
)
from repro.choice import RandomResolver
from repro.runtime import install_crystalball
from repro.statemachine import Cluster


def run_gossip(factory, n=8, seed=3, until=20.0, resolver_factory=None):
    cluster = Cluster(n, factory, seed=seed, resolver_factory=resolver_factory)
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def test_bar_partner_valid_and_deterministic():
    for round_number in range(20):
        partner = bar_partner(3, round_number, 8)
        assert 0 <= partner < 8 and partner != 3
        assert partner == bar_partner(3, round_number, 8)


def test_bar_partner_varies_with_round():
    partners = {bar_partner(0, r, 16) for r in range(16)}
    assert len(partners) > 3


def test_one_shot_dissemination_completes():
    config = GossipConfig(n=8, rumor_count=4)
    cluster = run_gossip(make_baseline_gossip_factory(config, "random"))
    assert all_delivered(cluster.services, 4)
    assert coverage(cluster.services, 4) == 1.0


def test_bar_strategy_also_completes():
    config = GossipConfig(n=8, rumor_count=4)
    cluster = run_gossip(make_baseline_gossip_factory(config, "bar"))
    assert all_delivered(cluster.services, 4)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        make_baseline_gossip_factory(GossipConfig(), "zigzag")(0)


def test_streaming_publishes_on_schedule():
    config = GossipConfig(n=4, rumor_count=3, publish_interval=2.0)
    cluster = run_gossip(make_baseline_gossip_factory(config, "random"), n=4, until=3.0)
    source = cluster.service(0)
    assert source.published == 2  # published at t=0 and t=2


def test_delivery_latencies_positive_and_counted():
    config = GossipConfig(n=6, rumor_count=3, publish_interval=1.0)
    cluster = run_gossip(make_baseline_gossip_factory(config, "random"), n=6, until=30.0)
    latencies = delivery_latencies(cluster.services, config)
    assert len(latencies) == 6 * 3
    assert all(lat >= 0 for lat in latencies)
    assert mean_delivery_latency(cluster.services, config) > 0


def test_exposed_with_random_resolver_completes():
    config = GossipConfig(n=8, rumor_count=4)
    cluster = run_gossip(
        make_exposed_gossip_factory(config),
        resolver_factory=lambda nid: RandomResolver(1),
    )
    assert all_delivered(cluster.services, 4)


def test_exposed_with_model_resolver_completes():
    config = GossipConfig(n=8, rumor_count=4)
    factory = make_exposed_gossip_factory(config)
    cluster = Cluster(8, factory, seed=3)
    runtimes = install_crystalball(
        cluster, factory, set_resolver=False,
        checkpoint_period=0.2, prediction_period=0.0,
    )
    for runtime, node in zip(runtimes, cluster.nodes):
        runtime.network_model.bootstrap_from_topology(cluster.topology)
        node.choice_resolver = make_model_gossip_resolver()
    cluster.start_all()
    cluster.run(until=20.0)
    assert all_delivered(cluster.services, 4)


def test_push_respects_payload_limit():
    config = GossipConfig(n=4, rumor_count=8, push_limit=2)
    cluster = run_gossip(make_baseline_gossip_factory(config, "random"), n=4, until=1.0)
    pushes = [
        rec for rec in cluster.sim.trace.select("net.send")
        if rec.data.get("kind") == "GossipPush"
    ]
    assert pushes  # the source pushed something
    # Payload bound is enforced structurally: re-create a push and check.
    source = cluster.service(0)
    push = source._make_push()
    assert len(push.payload_rumors) <= 2


def test_pull_reply_backfills_sender():
    config = GossipConfig(n=2, rumor_count=2, push_limit=2)
    factory = make_baseline_gossip_factory(config, "random")
    cluster = Cluster(2, factory, seed=1)
    cluster.start_all()
    # Give node 1 a rumor the source lacks.
    cluster.service(1).known_at[77] = 0.0
    cluster.run(until=2.0)
    assert 77 in cluster.service(0).known_at
