"""Regression tests for the replica.py correctness sweep.

Each test reproduces a bug that shipped in the pre-batching replica:

* a *lost NOOP* being re-sequenced into a fresh self-owned slot
  (burning slots and fuelling gap-fill churn), provoked by a
  partition + amnesia-crash plan;
* *duplicate execution* of a command chosen in two instances,
  provoked by a chaos plan that duplicates every message (the leader
  proposes a duplicated ClientRequest twice);
* a *stale Nack* from a superseded round inflating ``min_round``.
"""

from __future__ import annotations

from repro.apps.paxos import (
    MenciusPaxos,
    NOOP,
    Nack,
    PaxosConfig,
    make_ballot,
    make_paxos_factory,
)
from repro.chaos import ChaosController, FaultPlan
from repro.chaos.plan import CrashEvent, LinkFaultEvent, PartitionEvent
from repro.eval.paxos_experiment import agreement_holds, at_most_once_holds
from repro.statemachine import Cluster


class NoopCountingPaxos(MenciusPaxos):
    """Mencius replica that counts NOOPs entering the *propose* path.

    Gap-fill coordinates NOOPs directly (legitimate); a NOOP going
    through ``propose`` means a lost filler was re-sequenced into a
    fresh slot — the bug.
    """

    def __init__(self, node_id, config=None):
        super().__init__(node_id, config)
        self.noop_proposals = 0

    def propose(self, command):
        if tuple(command) == NOOP:
            self.noop_proposals += 1
        super().propose(command)


def test_lost_noop_is_not_resequenced():
    """A gap-fill NOOP losing its slot to a recovered value must be
    dropped, not re-proposed into a fresh slot.

    The provoking plan partitions replica 2 away and amnesia-crashes
    it while the majority keeps deciding.  The recovered replica
    gap-fills NOOPs into its own slots that were in fact decided
    before the crash; peers answer with ``Learn`` of the real values,
    so every one of those NOOPs loses its instance.
    """
    config = PaxosConfig(n=3, request_interval=0.5, requests_per_node=12)
    cluster = Cluster(3, lambda nid: NoopCountingPaxos(nid, config), seed=7)
    plan = FaultPlan(events=[
        PartitionEvent(at=2.0, groups=((0, 1), (2,)), heal_at=4.4),
        CrashEvent(at=2.2, node=2, amnesia=True, recover_at=4.5),
    ])
    controller = ChaosController(cluster, plan)
    controller.arm()
    cluster.start_all()
    cluster.run(until=20.0)

    assert agreement_holds(cluster)
    # The recovered replica must have faced at least one losing
    # proposal (its re-proposed commands hit already-decided slots),
    # otherwise the scenario did not exercise the lost-value path.
    assert any(s.chosen for s in cluster.services)
    burned = sum(s.noop_proposals for s in cluster.services)
    assert burned == 0, f"{burned} lost NOOP(s) were re-sequenced into fresh slots"


def test_no_duplicate_execution_under_message_duplication():
    """A command chosen in two instances must execute exactly once.

    Duplicating every message makes the fixed leader receive each
    forwarded ClientRequest twice and sequence the same command into
    two instances; both get chosen, and the replicated log must still
    apply the command once.
    """
    config = PaxosConfig(n=3, request_interval=0.5, requests_per_node=3)
    cluster = Cluster(3, make_paxos_factory("fixed", config), seed=3)
    plan = FaultPlan(events=[LinkFaultEvent(at=0.0, duplicate=0.95)])
    controller = ChaosController(cluster, plan)
    controller.arm()
    cluster.start_all()
    cluster.run(until=15.0)

    assert agreement_holds(cluster)
    # The scenario must actually double-choose at least one command …
    for service in cluster.services:
        commands = [
            value for value in service.chosen.values()
            if tuple(value) != NOOP
        ]
        if len(commands) > len(set(commands)):
            break
    else:
        raise AssertionError("no command was chosen in two instances; "
                             "the scenario lost its teeth")
    # … and the log must still apply each command at most once.
    assert at_most_once_holds(cluster), "a command was executed twice"


def test_stale_nack_does_not_inflate_min_round():
    """A Nack for a ballot we already abandoned must be ignored."""
    config = PaxosConfig(n=3)
    replica = MenciusPaxos(0, config)
    current = make_ballot(4, 0, 3)
    replica.proposals[0] = {
        "ballot": current,
        "value": (0, 0),
        "proposing": (0, 0),
        "phase": "prepare",
        "promise_from": [],
        "best_accepted_ballot": -1,
        "best_accepted_value": None,
        "accepted_from": [],
        "started_at": 0.0,
        "min_round": 1,
    }
    # A late Nack for our old round-1 attempt, carrying a competitor's
    # huge promise: it must not touch min_round.
    stale = Nack(instance=0, promised=make_ballot(40, 1, 3),
                 ballot=make_ballot(1, 0, 3))
    replica.on_nack(1, stale)
    assert replica.proposals[0]["min_round"] == 1
    # The same promise on a Nack for the *current* ballot does count.
    fresh = Nack(instance=0, promised=make_ballot(40, 1, 3), ballot=current)
    replica.on_nack(1, fresh)
    assert replica.proposals[0]["min_round"] == 41
