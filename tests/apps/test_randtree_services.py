"""RandTree protocol behaviour, baseline and exposed."""

import pytest

from repro.apps.randtree import (
    BaselineRandTree,
    ExposedRandTree,
    Join,
    RandTreeConfig,
    make_baseline_factory,
    make_exposed_factory,
    max_tree_depth,
    tree_depths,
)
from repro.choice import RandomResolver
from repro.statemachine import Cluster


def run_join_phase(factory, n=7, seed=2, resolver_factory=None, until=12.0):
    cluster = Cluster(n, factory, seed=seed, resolver_factory=resolver_factory)
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def states_of(cluster):
    return {s.node_id: s.checkpoint() for s in cluster.services}


@pytest.mark.parametrize("factory_maker,resolver", [
    (make_baseline_factory, None),
    (make_exposed_factory, lambda nid: RandomResolver(3)),
])
def test_all_nodes_join(factory_maker, resolver):
    cluster = run_join_phase(factory_maker(), resolver_factory=resolver)
    depths = tree_depths(states_of(cluster), root=0)
    assert len(depths) == 7


@pytest.mark.parametrize("factory_maker,resolver", [
    (make_baseline_factory, None),
    (make_exposed_factory, lambda nid: RandomResolver(3)),
])
def test_degree_bound_respected(factory_maker, resolver):
    config = RandTreeConfig(max_children=2)
    cluster = run_join_phase(factory_maker(config), resolver_factory=resolver)
    for service in cluster.services:
        assert len(service.children) <= 2


def test_root_is_joined_at_depth_one():
    cluster = run_join_phase(make_baseline_factory())
    root = cluster.service(0)
    assert root.joined and root.depth == 1 and root.parent is None


def test_parent_child_agreement():
    cluster = run_join_phase(make_exposed_factory(),
                             resolver_factory=lambda nid: RandomResolver(1))
    services = {s.node_id: s for s in cluster.services}
    for service in cluster.services:
        for child in service.children:
            assert services[child].parent == service.node_id


def test_siblings_and_grandparent_propagate():
    cluster = run_join_phase(make_exposed_factory(), n=7,
                             resolver_factory=lambda nid: RandomResolver(1))
    # Any node at depth >= 3 must know its grandparent.
    for service in cluster.services:
        if service.joined and service.depth >= 3:
            assert service.grandparent is not None


def test_dead_children_swept():
    cluster = run_join_phase(make_baseline_factory(), n=5)
    victim = cluster.service(0).children[0]
    cluster.node(victim).crash()
    cluster.run(until=cluster.sim.now + 8.0)
    assert victim not in cluster.service(0).children


def test_orphan_rejoins_after_parent_failure():
    config = RandTreeConfig()
    cluster = run_join_phase(make_baseline_factory(config), n=7)
    states = states_of(cluster)
    depths = tree_depths(states, root=0)
    # Fail an internal (non-root) parent.
    internal = next(
        s.node_id for s in cluster.services
        if s.node_id != 0 and s.children and depths.get(s.node_id) == 2
    )
    orphans = list(cluster.service(internal).children)
    cluster.node(internal).crash()
    cluster.run(until=cluster.sim.now + 15.0)
    depths = tree_depths(states_of(cluster), root=0)
    for orphan in orphans:
        assert orphan in depths  # re-attached somewhere


def test_exposed_forward_choice_traced():
    cluster = run_join_phase(make_exposed_factory(), n=9,
                             resolver_factory=lambda nid: RandomResolver(1))
    # With 9 nodes and fan-out 2 some joins must have been forwarded.
    records = cluster.sim.trace.select("choice.resolve")
    assert any(r.data["label"] == "join-forward" for r in records)


def test_baseline_duplicate_join_refreshes_not_duplicates():
    config = RandTreeConfig()
    cluster = Cluster(3, make_baseline_factory(config), seed=1)
    cluster.start_all()
    cluster.run(until=8.0)
    root = cluster.service(0)
    child = root.children[0]
    before = list(root.children)
    # Stale duplicate join from an existing child.
    cluster.network.send(child, 0, Join(joiner=child))
    cluster.run(until=cluster.sim.now + 1.0)
    assert root.children == before


def test_join_depth_reasonable_small_cluster():
    cluster = run_join_phase(make_baseline_factory(), n=7, until=15.0)
    depth = max_tree_depth(states_of(cluster), root=0)
    assert 3 <= depth <= 4  # optimal 3 for 7 nodes, fan-out 2
