"""Model-checking Paxos: agreement verified by state-space exploration.

The paper's runtime uses the same explorer both to *check* safety and
to *predict* performance; this test exercises the checking half on the
hardest protocol in the repo.  Agreement ("no two replicas decide
different values for one instance") must hold across every explored
interleaving of a two-proposer contention scenario.
"""

from repro.apps.paxos import PaxosConfig, Prepare, make_ballot, make_paxos_factory
from repro.mc import Explorer, InFlightMessage, SafetyProperty, WorldState


def agreement(world: WorldState) -> bool:
    decided = {}
    for node_id in world.node_ids:
        for instance, value in world.state_of(node_id).get("chosen", {}).items():
            if instance in decided and decided[instance] != tuple(value):
                return False
            decided[instance] = tuple(value)
    return True


def accepted_monotone(world: WorldState) -> bool:
    # An acceptor never holds an accepted ballot above its promise.
    for node_id in world.node_ids:
        state = world.state_of(node_id)
        for instance, (ballot, _value) in state.get("accepted", {}).items():
            if ballot > state.get("promised", {}).get(instance, ballot):
                return False
    return True


def make_contention_world(factory, n=3):
    """Two competing Prepare rounds for the same instance, in flight."""
    services = [factory(i) for i in range(n)]
    # Proposers 1 and 2 are mid-proposal (phase "prepare").
    for proposer, round_number in ((1, 1), (2, 2)):
        ballot = make_ballot(round_number, proposer, n)
        services[proposer].proposals[0] = {
            "ballot": ballot, "value": (proposer, 99),
            "proposing": (proposer, 99), "phase": "prepare",
            "promise_from": [], "best_accepted_ballot": -1,
            "best_accepted_value": None, "accepted_from": [],
            "started_at": 0.0, "min_round": 1,
        }
    inflight = []
    for proposer, round_number in ((1, 1), (2, 2)):
        ballot = make_ballot(round_number, proposer, n)
        for target in range(n):
            inflight.append(
                InFlightMessage(proposer, target, Prepare(instance=0, ballot=ballot))
            )
    states = {i: services[i].checkpoint() for i in range(n)}
    return WorldState(node_states=states, inflight=inflight)


def test_agreement_holds_across_explored_interleavings():
    config = PaxosConfig(n=3, requests_per_node=0)
    factory = make_paxos_factory("mencius", config)
    world = make_contention_world(factory)
    explorer = Explorer(
        factory,
        properties=[
            SafetyProperty("agreement", agreement),
            SafetyProperty("accepted-monotone", accepted_monotone),
        ],
    )
    result = explorer.bfs(world, max_depth=6, max_states=4000)
    assert result.states_explored > 100  # real interleaving coverage
    assert not result.found_violation


def test_exploration_with_message_drops_stays_safe():
    config = PaxosConfig(n=3, requests_per_node=0)
    factory = make_paxos_factory("mencius", config)
    world = make_contention_world(factory)
    explorer = Explorer(
        factory,
        properties=[SafetyProperty("agreement", agreement)],
        include_drops=True,
    )
    result = explorer.bfs(world, max_depth=4, max_states=3000)
    assert not result.found_violation


def test_injected_bad_accept_is_caught():
    """Sanity check that the checker *can* fail: force a disagreement."""
    config = PaxosConfig(n=3, requests_per_node=0)
    factory = make_paxos_factory("mencius", config)
    services = [factory(i) for i in range(3)]
    services[0].chosen[0] = (0, 1)
    services[1].chosen[0] = (1, 2)  # conflicting decision
    states = {i: services[i].checkpoint() for i in range(3)}
    world = WorldState(node_states=states)
    explorer = Explorer(factory, properties=[SafetyProperty("agreement", agreement)])
    result = explorer.bfs(world, max_depth=1, max_states=10)
    assert result.found_violation
