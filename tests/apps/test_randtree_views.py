"""RandTree over partial views: tree maintenance with view-based repair."""

from repro.apps.randtree import (
    RandTreeConfig,
    ViewRandTree,
    make_view_randtree_factory,
    tree_depths,
    unattached_nodes,
)
from repro.apps.randtree.common import child_parent_consistent, no_self_loop
from repro.choice import RandomResolver
from repro.net import ViewConfig
from repro.statemachine import Cluster


def run_view_tree(n=24, seed=4, until=15.0, config=None, **view_kwargs):
    factory = make_view_randtree_factory(config, ViewConfig(**view_kwargs))
    cluster = Cluster(n, factory, seed=seed,
                      resolver_factory=lambda nid: RandomResolver(seed))
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def states_of(cluster):
    return {s.node_id: s.checkpoint() for s in cluster.services}


def test_all_nodes_attach_over_views():
    cluster = run_view_tree()
    states = states_of(cluster)
    assert unattached_nodes(states, root=0) == set()
    assert len(tree_depths(states, root=0)) == 24


def test_safety_properties_hold_over_views():
    cluster = run_view_tree(n=24)
    states = states_of(cluster)
    for nid, state in states.items():
        assert no_self_loop(nid, state)
    items = sorted(states.items())
    for a, sa in items:
        for b, sb in items:
            if a < b:
                assert child_parent_consistent(a, sa, b, sb)


def test_rejoin_candidates_include_active_view():
    cluster = run_view_tree(n=24)
    for svc in cluster.services:
        candidates = svc.rejoin_candidates()
        for peer in svc.active:
            assert peer in candidates
        assert svc.node_id not in candidates


def test_parent_loss_triggers_view_repair():
    """Kill an interior node: membership probes notice, children rejoin
    through their views, and the tree heals with no unattached nodes."""
    cluster = run_view_tree(n=24, until=12.0, probe_period=0.25)
    services = {s.node_id: s for s in cluster.services}
    victim = next(nid for nid, s in services.items()
                  if nid != 0 and s.children)
    cluster.network.liveness.fail(victim)
    cluster.run(until=40.0)
    survivors = {nid: s.checkpoint() for nid, s in services.items()
                 if nid != victim}
    assert unattached_nodes(survivors, root=0) == set()
    depths = tree_depths(survivors, root=0)
    assert set(depths) == set(survivors)


def test_view_tree_handler_sets_compose():
    message_types = {cls.__name__ for cls in ViewRandTree._msg_handlers}
    assert "ViewJoin" in message_types
    assert "Join" in message_types
    assert "view-probe" in set(ViewRandTree._timer_handlers)
