"""RandTree tree analysis and safety properties."""

from repro.apps.randtree import (
    RandTreeConfig,
    consistent_edges,
    make_balance_objective,
    max_tree_depth,
    randtree_properties,
    subtree_sizes,
    tree_depths,
    unattached_nodes,
)
from repro.apps.randtree.common import total_path_length
from repro.mc import WorldState


def node_state(joined=True, parent=None, children=(), depth=0):
    return {
        "joined": joined, "parent": parent, "children": list(children),
        "depth": depth, "child_last_seen": {}, "hb_missed": 0,
        "siblings": [], "grandparent": None,
    }


def small_tree():
    #      0
    #     / \
    #    1   2
    #   /
    #  3
    return {
        0: node_state(parent=None, children=[1, 2], depth=1),
        1: node_state(parent=0, children=[3], depth=2),
        2: node_state(parent=0, children=[], depth=2),
        3: node_state(parent=1, children=[], depth=3),
    }


def test_tree_depths_bfs():
    depths = tree_depths(small_tree(), root=0)
    assert depths == {0: 1, 1: 2, 2: 2, 3: 3}


def test_max_tree_depth():
    assert max_tree_depth(small_tree(), root=0) == 3


def test_unknown_root_gives_zero_depth():
    assert max_tree_depth({}, root=0) == 0


def test_inconsistent_edge_excluded():
    states = small_tree()
    states[3]["parent"] = 99  # child disagrees: edge 1->3 inconsistent
    assert 3 not in tree_depths(states, root=0)


def test_unknown_child_included_optimistically():
    states = small_tree()
    del states[3]  # no checkpoint for node 3
    assert tree_depths(states, root=0)[3] == 3


def test_unjoined_node_has_no_edges():
    states = small_tree()
    states[1]["joined"] = False
    edges = consistent_edges(states, root=0)
    assert 1 not in edges
    # 0 -> 1 edge also dropped because the child is not joined.
    assert edges[0] == [2]


def test_unattached_nodes():
    states = small_tree()
    states[3]["parent"] = 99
    assert unattached_nodes(states, root=0) == {3}


def test_subtree_sizes():
    sizes = subtree_sizes(small_tree(), root=0)
    assert sizes[0] == 4
    assert sizes[1] == 2
    assert sizes[2] == 1


def test_total_path_length():
    assert total_path_length(small_tree(), root=0) == 1 + 2 + 2 + 3


def test_balance_objective_prefers_shallower():
    config = RandTreeConfig()
    objective = make_balance_objective(config)
    deep = dict(small_tree())
    deep[4] = node_state(parent=3, children=[], depth=4)
    deep[3]["children"] = [4]
    shallow = dict(small_tree())
    shallow[4] = node_state(parent=2, children=[], depth=3)
    shallow[2]["children"] = [4]
    deep_world = WorldState(node_states=deep)
    shallow_world = WorldState(node_states=shallow)
    assert objective.score(shallow_world) > objective.score(deep_world)


def test_properties_hold_on_consistent_tree():
    props = randtree_properties(RandTreeConfig())
    world = WorldState(node_states=small_tree())
    assert all(p.holds(world) for p in props)


def test_child_parent_property_catches_mismatch():
    props = {p.name: p for p in randtree_properties(RandTreeConfig())}
    states = small_tree()
    states[3]["parent"] = 2  # 1 lists 3 as child, but 3 claims parent 2
    world = WorldState(node_states=states)
    assert not props["child-parent-consistency"].holds(world)


def test_degree_bound_property():
    props = {p.name: p for p in randtree_properties(RandTreeConfig(max_children=2))}
    states = small_tree()
    states[0]["children"] = [1, 2, 3]
    world = WorldState(node_states=states)
    assert not props["degree-bound"].holds(world)


def test_no_self_loops_property():
    props = {p.name: p for p in randtree_properties(RandTreeConfig())}
    states = small_tree()
    states[2]["parent"] = 2
    world = WorldState(node_states=states)
    assert not props["no-self-loops"].holds(world)
