"""Replicated-log execution: gap filling and executable prefixes."""

from repro.apps.paxos import NOOP, PaxosConfig, make_paxos_factory, slot_owner
from repro.statemachine import Cluster


def run_cluster(variant="mencius", n=3, seed=1, requests=3, until=40.0):
    config = PaxosConfig(n=n, requests_per_node=requests, request_interval=0.5)
    cluster = Cluster(n, make_paxos_factory(variant, config), seed=seed)
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def test_execution_prefix_contiguous():
    cluster = run_cluster()
    for service in cluster.services:
        for instance in range(service.exec_upto):
            assert instance in service.chosen


def test_executed_sequences_agree():
    """All replicas apply the same command sequence (up to the shorter
    of their executable prefixes)."""
    cluster = run_cluster()
    sequences = [s.executed for s in cluster.services]
    shortest = min(len(seq) for seq in sequences)
    assert shortest > 0
    for seq in sequences:
        assert seq[:shortest] == sequences[0][:shortest]


def test_all_commands_eventually_executed():
    cluster = run_cluster(until=60.0)
    expected = {(origin, seq) for origin in range(3) for seq in range(3)}
    for service in cluster.services:
        # No phantom commands ever enter the executed sequence.
        assert set(service.executed) <= expected
    # At least one replica executed everything.
    assert any(set(s.executed) == expected for s in cluster.services)


def test_noops_fill_foreign_partitions_under_fixed_leader():
    cluster = run_cluster(variant="fixed", until=60.0)
    leader_log = cluster.service(0)
    noops = [
        inst for inst, value in leader_log.chosen.items()
        if tuple(value) == NOOP
    ]
    assert noops, "idle owners should have filled their slots"
    for inst in noops:
        assert slot_owner(inst, 3) != 0 or True  # noops live off-partition
    # Executed sequence contains no NOOPs.
    assert NOOP not in leader_log.executed


def test_executed_preserves_per_origin_order():
    cluster = run_cluster(until=60.0)
    for service in cluster.services:
        per_origin = {}
        for origin, seq in service.executed:
            assert seq == per_origin.get(origin, -1) + 1 or seq > per_origin.get(origin, -1)
            per_origin[origin] = seq
