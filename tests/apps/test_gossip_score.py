"""Gossip model-resolver scoring unit tests."""

from repro.apps.gossip import ModelGossipResolver, gossip_peer_score
from repro.apps.gossip.score import MIN_EXCHANGE_COST
from repro.choice import ChoicePoint


class FakeCheckpoint:
    def __init__(self, known):
        self.state = {"known_at": {r: 0.0 for r in known}}


class FakeStateModel:
    def __init__(self, peers):
        self._peers = peers

    def get(self, node_id):
        known = self._peers.get(node_id)
        return FakeCheckpoint(known) if known is not None else None


class FakeNetworkModel:
    def __init__(self, rtts):
        self._rtts = rtts

    def rtt(self, a, b):
        return self._rtts.get((a, b), 0.1)


class FakeRuntime:
    def __init__(self, peers, rtts):
        self.state_model = FakeStateModel(peers)
        self.network_model = FakeNetworkModel(rtts)


class FakeService:
    def __init__(self, known):
        self.known = set(known)


class FakeRng:
    def random(self):
        return 0.5

    def choice(self, seq):
        return seq[0]


class FakeRngRegistry:
    def stream(self, name):
        return FakeRng()


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.rng = FakeRngRegistry()


class FakeNode:
    def __init__(self, known, peers, rtts):
        self.node_id = 0
        self.service = FakeService(known)
        self.crystalball = FakeRuntime(peers, rtts)
        self.sim = FakeSim()


def point(candidates):
    return ChoicePoint(label="gossip-peer", candidates=list(candidates), node_id=0)


def test_score_is_novelty_rate():
    node = FakeNode(known={1, 2, 3}, peers={5: {1}}, rtts={(0, 5): 0.1})
    # Peer 5 is missing rumors 2 and 3 -> novelty 2 over (0.1 + floor).
    score = gossip_peer_score(5, point([5]), node)
    assert score == 2 / (0.1 + MIN_EXCHANGE_COST)


def test_unknown_peer_maximally_novel():
    node = FakeNode(known={1, 2}, peers={}, rtts={(0, 9): 0.1})
    assert gossip_peer_score(9, point([9]), node) == 2 / (0.1 + MIN_EXCHANGE_COST)


def test_fast_useful_beats_slow_very_novel():
    node = FakeNode(
        known=set(range(10)),
        peers={1: set(range(8)), 2: set()},  # peer 1 misses 2; peer 2 misses 10
        rtts={(0, 1): 0.02, (0, 2): 1.0},
    )
    fast = gossip_peer_score(1, point([1, 2]), node)
    slow = gossip_peer_score(2, point([1, 2]), node)
    assert fast > slow


def test_no_runtime_scores_zero():
    node = FakeNode(known={1}, peers={}, rtts={})
    node.crystalball = None
    assert gossip_peer_score(5, point([5]), node) == 0.0


def test_resolver_prefers_high_weight_statistically():
    node = FakeNode(
        known=set(range(10)),
        peers={1: set(), 2: set(range(10))},  # peer 1 very novel, peer 2 in sync
        rtts={(0, 1): 0.02, (0, 2): 0.02},
    )
    resolver = ModelGossipResolver(base_weight=0.1, recency_damp=1.0)
    # With proportional sampling at rng=0.5, the heavy-weight candidate
    # covers the sample point.
    assert resolver.resolve(point([1, 2]), node) == 1


def test_resolver_recency_damp_rotates():
    node = FakeNode(
        known=set(range(10)),
        peers={1: set(), 2: set()},
        rtts={(0, 1): 0.02, (0, 2): 0.02},
    )
    resolver = ModelGossipResolver(base_weight=0.1, recency_damp=0.001,
                                   recency_window=10.0)
    first = resolver.resolve(point([1, 2]), node)
    second = resolver.resolve(point([1, 2]), node)
    assert {first, second} == {1, 2}  # damped after being chosen
