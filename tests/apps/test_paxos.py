"""Paxos protocol: commits, agreement, recovery, contention."""

import pytest

from repro.apps.paxos import (
    Accept,
    PaxosConfig,
    Prepare,
    ballot_proposer,
    make_ballot,
    make_paxos_factory,
    slot_owner,
)
from repro.eval.paxos_experiment import agreement_holds
from repro.statemachine import Cluster


def run_paxos(variant="mencius", n=3, seed=1, requests=3, until=30.0, **config_kw):
    config = PaxosConfig(
        n=n, requests_per_node=requests, request_interval=0.5, **config_kw,
    )
    cluster = Cluster(n, make_paxos_factory(variant, config), seed=seed)
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def test_ballot_encoding_roundtrip():
    ballot = make_ballot(3, 2, 5)
    assert ballot_proposer(ballot, 5) == 2
    assert make_ballot(4, 0, 5) > ballot  # higher round dominates


def test_slot_ownership_partition():
    assert [slot_owner(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]


@pytest.mark.parametrize("variant", ["fixed", "mencius", "choice"])
def test_all_commands_commit(variant):
    cluster = run_paxos(variant)
    total = sum(len(s.committed) for s in cluster.services)
    assert total == 9
    assert agreement_holds(cluster)


def test_learners_converge_on_chosen_values():
    cluster = run_paxos("mencius")
    reference = cluster.service(0).chosen
    for service in cluster.services:
        assert service.chosen == reference


def test_commit_latency_positive():
    cluster = run_paxos("mencius")
    for service in cluster.services:
        for latency in service.commit_latencies():
            assert latency > 0


def test_fixed_leader_proposes_everything():
    from repro.apps.paxos import NOOP

    cluster = run_paxos("fixed")
    # All real commands live in the leader's slot partition; other
    # partitions' instances are gap-filling NOOPs only.
    for instance, value in cluster.service(0).chosen.items():
        if slot_owner(instance, 3) != 0:
            assert value == NOOP
        else:
            assert value != NOOP


def test_mencius_instances_partitioned_by_origin():
    cluster = run_paxos("mencius")
    for instance, value in cluster.service(0).chosen.items():
        origin = value[0]
        assert slot_owner(instance, 3) == origin


def test_contention_resolved_safely():
    """Two proposers fight over one instance with full two-phase Paxos."""
    config = PaxosConfig(n=3, requests_per_node=0)
    cluster = Cluster(3, make_paxos_factory("mencius", config), seed=2)
    cluster.start_all()
    # Both 1 and 2 propose different values for instance 0 (owned by 0)
    # using competing prepare rounds.
    s1, s2 = cluster.service(1), cluster.service(2)
    instance = 0
    for service, round_number in ((s1, 1), (s2, 2)):
        ballot = make_ballot(round_number, service.node_id, 3)
        service.proposals[instance] = {
            "ballot": ballot, "value": (service.node_id, 99),
            "proposing": (service.node_id, 99), "phase": "prepare",
            "promise_from": [], "best_accepted_ballot": -1,
            "best_accepted_value": None, "accepted_from": [],
            "started_at": cluster.sim.now,
        }
        for peer in range(3):
            service.send(peer, Prepare(instance=instance, ballot=ballot))
    cluster.run(until=30.0)
    assert agreement_holds(cluster)
    chosen = [s.chosen.get(instance) for s in cluster.services if instance in s.chosen]
    assert chosen  # someone decided
    assert len(set(chosen)) == 1


def test_recovery_value_preserved():
    """A value accepted by a majority must survive a new prepare round."""
    config = PaxosConfig(n=3, requests_per_node=0)
    cluster = Cluster(3, make_paxos_factory("mencius", config), seed=3)
    cluster.start_all()
    instance = 0
    old_ballot = make_ballot(0, 0, 3)
    # Acceptors 0 and 1 accepted (0, 7) at ballot 0 — a majority.
    for node_id in (0, 1):
        service = cluster.service(node_id)
        service.promised[instance] = old_ballot
        service.accepted[instance] = [old_ballot, [0, 7]]
    # Node 2 now runs a full round with a higher ballot and its own value.
    s2 = cluster.service(2)
    ballot = make_ballot(1, 2, 3)
    s2.proposals[instance] = {
        "ballot": ballot, "value": (2, 99), "proposing": (2, 99),
        "phase": "prepare", "promise_from": [], "best_accepted_ballot": -1,
        "best_accepted_value": None, "accepted_from": [],
        "started_at": cluster.sim.now,
    }
    for peer in range(3):
        s2.send(peer, Prepare(instance=instance, ballot=ballot))
    cluster.run(until=30.0)
    # Paxos safety: the previously accepted value must be the one chosen.
    assert cluster.service(2).chosen[instance] == (0, 7)
    assert agreement_holds(cluster)


def test_acceptor_nacks_lower_ballot():
    config = PaxosConfig(n=3, requests_per_node=0)
    cluster = Cluster(3, make_paxos_factory("mencius", config), seed=4)
    cluster.start_all()
    acceptor = cluster.service(0)
    acceptor.promised[5] = make_ballot(9, 1, 3)
    # A stale Accept with a lower ballot must be rejected.
    cluster.network.send(2, 0, Accept(instance=5, ballot=make_ballot(1, 2, 3),
                                      value=(2, 1)))
    cluster.run(until=2.0)
    assert 5 not in acceptor.accepted


def test_retry_after_lost_majority():
    """Proposer escalates when the accept round stalls (peers down)."""
    config = PaxosConfig(n=3, requests_per_node=1, retry_timeout=1.0)
    cluster = Cluster(3, make_paxos_factory("mencius", config), seed=5)
    cluster.node(1).crash()
    cluster.node(2).crash()
    cluster.start_all()
    cluster.run(until=5.0)   # proposals stall without a majority
    assert not cluster.service(0).committed
    cluster.node(1).restart(fresh_state=True)
    cluster.node(2).restart(fresh_state=True)
    cluster.run(until=30.0)
    assert cluster.service(0).committed  # retried and committed
    assert agreement_holds(cluster)


def test_cpu_queue_serializes_proposals():
    cluster = run_paxos(
        "mencius", requests=3,
        processing_delays=(0.4, 0.0, 0.0),
        until=40.0,
    )
    assert agreement_holds(cluster)
    # The loaded node's commands commit strictly later on average.
    loaded = cluster.service(0).commit_latencies()
    unloaded = cluster.service(1).commit_latencies()
    assert sum(loaded) / len(loaded) > sum(unloaded) / len(unloaded)
