"""Property-based Paxos fault injection: agreement under random churn."""

from hypothesis import given, settings, strategies as st

from repro.apps.paxos import PaxosConfig, make_paxos_factory
from repro.eval.paxos_experiment import agreement_holds
from repro.statemachine import Cluster

N = 3


# A churn plan: up to two (victim, crash_time, recover_time) events with
# distinct victims, so a majority is always eventually available.
churn_plans = st.lists(
    st.tuples(
        st.integers(0, N - 1),
        st.floats(min_value=0.5, max_value=6.0),
        st.floats(min_value=6.5, max_value=12.0),
    ),
    max_size=2,
    unique_by=lambda event: event[0],
)


@given(plan=churn_plans, seed=st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_agreement_survives_churn(plan, seed):
    config = PaxosConfig(n=N, requests_per_node=3, request_interval=0.7,
                         retry_timeout=1.5)
    cluster = Cluster(N, make_paxos_factory("mencius", config), seed=seed)
    cluster.start_all()
    for victim, crash_at, recover_at in plan:
        cluster.sim.schedule_at(crash_at, cluster.node(victim).crash)
        cluster.sim.schedule_at(
            recover_at, lambda v=victim: cluster.node(v).restart(fresh_state=False),
        )
    cluster.run(until=40.0)
    # Safety must hold regardless of the churn schedule.
    assert agreement_holds(cluster)
    # Acceptor invariant: accepted ballot never exceeds the promise.
    for service in cluster.services:
        for instance, (ballot, _value) in service.accepted.items():
            assert ballot <= service.promised.get(instance, ballot)


@given(plan=churn_plans, seed=st.integers(0, 10))
@settings(max_examples=10, deadline=None)
def test_liveness_with_majority(plan, seed):
    """With at most one node down at a time and recovery, every command
    from continuously-live nodes eventually commits."""
    if len(plan) > 1:
        return  # keep a strict majority up throughout
    config = PaxosConfig(n=N, requests_per_node=2, request_interval=0.7,
                         retry_timeout=1.5)
    cluster = Cluster(N, make_paxos_factory("mencius", config), seed=seed)
    cluster.start_all()
    crashed = set()
    for victim, crash_at, recover_at in plan:
        crashed.add(victim)
        cluster.sim.schedule_at(crash_at, cluster.node(victim).crash)
        cluster.sim.schedule_at(
            recover_at, lambda v=victim: cluster.node(v).restart(fresh_state=False),
        )
    cluster.run(until=60.0)
    for service in cluster.services:
        if service.node_id not in crashed:
            assert len(service.committed) == 2
