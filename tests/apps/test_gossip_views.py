"""Gossip over partial views: dissemination without a full membership."""

from repro.apps.gossip import (
    GossipConfig,
    ViewGossip,
    all_delivered,
    coverage,
    make_view_gossip_factory,
)
from repro.choice import RandomResolver
from repro.net import ViewConfig
from repro.statemachine import Cluster


def run_view_gossip(n=32, rumor_count=4, seed=5, until=25.0, **view_kwargs):
    config = GossipConfig(n=n, rumor_count=rumor_count, publish_interval=0.1)
    factory = make_view_gossip_factory(config, ViewConfig(**view_kwargs))
    cluster = Cluster(n, factory, seed=seed,
                      resolver_factory=lambda nid: RandomResolver(seed))
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def test_rumors_reach_every_node_over_views():
    cluster = run_view_gossip()
    assert coverage(cluster.services, 4) == 1.0
    assert all_delivered(cluster.services, 4)


def test_candidates_bounded_by_active_view():
    cluster = run_view_gossip(n=48, active_size=4)
    for svc in cluster.services:
        candidates = svc.gossip_candidates()
        assert candidates == list(svc.active)
        assert len(candidates) <= 4
        # A full-mesh ExposedGossip would expose all n-1 peers here.
        assert len(candidates) < 47


def test_view_state_rides_in_checkpoints():
    cluster = run_view_gossip(n=16, until=10.0)
    snap = cluster.service(5).checkpoint()
    for fld in ("known_at", "active", "passive"):
        assert fld in snap


def test_view_gossip_composes_both_handler_sets():
    # The mixin MRO must pick up membership handlers AND gossip handlers.
    message_types = {cls.__name__ for cls in ViewGossip._msg_handlers}
    assert "ViewJoin" in message_types
    assert "GossipPush" in message_types
    timer_names = set(ViewGossip._timer_handlers)
    assert "view-shuffle" in timer_names
    assert "gossip" in timer_names


def test_dissemination_survives_node_failure():
    cluster = run_view_gossip(n=32, until=8.0, probe_period=0.25)
    cluster.network.liveness.fail(9)
    cluster.run(until=30.0)
    survivors = [s for s in cluster.services if s.node_id != 9]
    assert all(set(range(4)) <= set(s.known) for s in survivors)
