"""Service-contributed in-flight state: recent_forwards + its penalty."""

from repro.apps.randtree import RandTreeConfig, make_exposed_factory
from repro.apps.randtree.common import pending_forward_penalty
from repro.choice import RandomResolver
from repro.statemachine import Cluster


def node_state(joined=True, parent=None, children=(), forwards=None):
    return {
        "joined": joined, "parent": parent, "children": list(children),
        "depth": 0, "child_last_seen": {}, "hb_missed": 0,
        "siblings": [], "grandparent": None,
        "recent_forwards": dict(forwards or {}),
    }


def test_penalty_zero_without_forwards():
    states = {0: node_state(children=[1]), 1: node_state(parent=0)}
    assert pending_forward_penalty(states, root=0) == 0.0


def test_penalty_depth_weighted():
    states = {
        0: node_state(children=[1], forwards={1: 1}),
        1: node_state(parent=0, children=[2]),
        2: node_state(parent=1),
    }
    # Child 1 is at depth 2 -> penalty (2 + 1) * 1.
    assert pending_forward_penalty(states, root=0) == 3.0


def test_penalty_convex_in_count():
    one = {0: node_state(children=[1], forwards={1: 1}), 1: node_state(parent=0)}
    two = {0: node_state(children=[1], forwards={1: 2}), 1: node_state(parent=0)}
    assert pending_forward_penalty(two, 0) == 4 * pending_forward_penalty(one, 0)


def test_split_beats_concentration():
    concentrated = {
        0: node_state(children=[1, 2], forwards={1: 2}),
        1: node_state(parent=0), 2: node_state(parent=0),
    }
    split = {
        0: node_state(children=[1, 2], forwards={1: 1, 2: 1}),
        1: node_state(parent=0), 2: node_state(parent=0),
    }
    assert pending_forward_penalty(split, 0) < pending_forward_penalty(concentrated, 0)


def test_service_records_and_clears_forwards():
    config = RandTreeConfig()
    cluster = Cluster(9, make_exposed_factory(config), seed=1,
                      resolver_factory=lambda nid: RandomResolver(1))
    cluster.start_all()
    cluster.run(until=3.0)
    # With 9 joiners and fan-out 2 the root must have forwarded some.
    root = cluster.service(0)
    total_forwards_seen = sum(
        1 for rec in cluster.sim.trace.select("choice.resolve")
        if rec.data["label"] == "join-forward"
    )
    assert total_forwards_seen > 0
    # After a few sweep periods with no join traffic the counters clear.
    cluster.run(until=12.0)
    assert root.recent_forwards == {}
