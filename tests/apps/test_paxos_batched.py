"""Integration tests for batched Multi-Paxos.

Covers the paths the throughput benchmark cannot observe directly:

* batched commit + execution unpacking (a multi-command log value
  executes as its constituent commands, in order, exactly once);
* ranged-prepare privilege re-acquisition after a provoked preemption
  (the amnesia-free chaos plans never preempt round 0, so the
  ``PrepareRange``/``PromiseRange`` machinery needs its own scenario);
* learner catch-up paging a partitioned replica's missed prefix in
  (gap-fill cannot recover other owners' decided values — only
  ``Catchup`` can);
* lost-batch resequencing after an amnesia crash (commands from a
  batch that lost its instance to an older decided value are
  re-enqueued, not dropped and not double-executed);
* the closed-loop :class:`~repro.apps.paxos.ClientLoad` generator
  committing its full offered volume on a healthy cluster.
"""

from __future__ import annotations

from repro.apps.paxos import (
    BatchedPaxosReplica,
    ClientLoad,
    NOOP,
    PaxosConfig,
    make_throughput_resolver,
    unpack_value,
)
from repro.chaos import ChaosController, FaultPlan
from repro.chaos.plan import CrashEvent, PartitionEvent
from repro.eval.paxos_experiment import (
    DEFAULT_LOADS,
    agreement_holds,
    at_most_once_holds,
    wan_topology,
)
from repro.statemachine import Cluster


class InstrumentedReplica(BatchedPaxosReplica):
    """Counts the plain-method hooks (handlers collect base-first, so
    only non-handler methods can be instrumented by subclassing)."""

    def __init__(self, node_id, config=None):
        super().__init__(node_id, config)
        self.ranges_acquired = 0
        self.batches_resequenced = 0

    def _acquire_range(self, round_number):
        self.ranges_acquired += 1
        super()._acquire_range(round_number)

    def _resequence(self, lost_value):
        self.batches_resequenced += 1
        super()._resequence(lost_value)


def _cluster(n=3, seed=11, **config_kwargs):
    config = PaxosConfig(n=n, requests_per_node=0, **config_kwargs)
    cluster = Cluster(n, lambda nid: InstrumentedReplica(nid, config), seed=seed)
    return cluster


def _submit(cluster, at, replica, commands):
    service = cluster.service(replica)
    cluster.sim.schedule_at(
        at, lambda: [service.submit(tuple(c)) for c in commands],
        tag="test:submit",
    )


def _chosen_commands(service):
    return [
        c
        for value in service.chosen.values()
        if tuple(value) != NOOP
        for c in unpack_value(value)
    ]


def test_batched_commit_executes_every_command_once():
    """With batch size 8 as the static default, 40 commands land in
    multi-command log values and execute exactly once, in log order,
    on every replica."""
    cluster = _cluster(batch_size_choices=(8,), pipeline_depth=2,
                       retry_pacing_choices=(1.0,))
    cluster.start_all()
    commands = [(0, k) for k in range(40)]
    _submit(cluster, 0.5, 0, commands)
    cluster.run(until=20.0)

    assert agreement_holds(cluster)
    assert at_most_once_holds(cluster)
    reference = cluster.service(0)
    assert set(reference.executed) == set(commands)
    for service in cluster.services:
        assert service.executed == reference.executed
    batch_sizes = [
        len(unpack_value(v)) for v in reference.chosen.values()
        if tuple(v) != NOOP
    ]
    assert max(batch_sizes) > 1, "no multi-command batch was ever decided"


def test_ranged_prepare_reacquires_privilege_after_preemption():
    """A replica whose round-0 privilege is rejected re-acquires
    phase-1 freedom with ONE ranged prepare and then commits at the
    higher round without further phase 1."""
    cluster = _cluster(batch_size_choices=(4,), pipeline_depth=1,
                       retry_pacing_choices=(1.0,))
    cluster.start_all()

    def revoke():
        # Both peers granted owner 0's slots (from instance 0) to a
        # phantom round-3 acquisition: replica 0's round-0 Accepts now
        # hit a higher floor and come back as Nacks.
        for peer in (1, 2):
            cluster.service(peer).range_promised[0] = [3, 0]

    cluster.sim.schedule_at(0.5, revoke, tag="test:revoke")
    commands = [(0, k) for k in range(12)]
    _submit(cluster, 1.0, 0, commands)
    cluster.run(until=20.0)

    replica = cluster.service(0)
    assert replica.ranges_acquired >= 1, "preemption never triggered a ranged prepare"
    assert replica.phase1_ok, "the ranged prepare never reached quorum"
    assert replica.range_round >= 4, (
        f"re-acquired round {replica.range_round} does not beat the floor"
    )
    assert agreement_holds(cluster)
    assert at_most_once_holds(cluster)
    for service in cluster.services:
        assert set(commands) <= set(service.executed), "commands lost to preemption"


def test_learner_catchup_recovers_partitioned_replica():
    """A replica partitioned away while the majority decides a prefix
    can only recover other owners' values via Catchup — gap-fill fills
    its OWN slots with NOOPs.  After healing, its log must converge."""
    cluster = _cluster(seed=5, batch_size_choices=(4,), pipeline_depth=2,
                       retry_pacing_choices=(1.0,), catchup_period=0.5)
    plan = FaultPlan(events=[
        PartitionEvent(at=1.0, groups=((0, 1), (2,)), heal_at=8.0),
    ])
    ChaosController(cluster, plan).arm()
    cluster.start_all()
    first = [(0, k) for k in range(24)]
    second = [(0, 100 + k) for k in range(8)]
    _submit(cluster, 2.0, 0, first)      # decided while 2 is cut off
    _submit(cluster, 9.0, 0, second)     # post-heal traffic reveals max_inst
    cluster.run(until=40.0)

    assert agreement_holds(cluster)
    assert at_most_once_holds(cluster)
    majority, learner = cluster.service(0), cluster.service(2)
    assert set(first) <= set(majority.executed)
    assert learner.executed == majority.executed, (
        "the partitioned replica never caught up on the missed prefix"
    )


def test_lost_batch_is_resequenced_after_amnesia():
    """An amnesia-crashed replica re-proposes fresh batches into own
    slots that were already decided; the losing batches' commands must
    be re-enqueued into later instances, never dropped or re-applied."""
    cluster = _cluster(seed=9, batch_size_choices=(4,), pipeline_depth=1,
                       retry_pacing_choices=(1.0,))
    plan = FaultPlan(events=[
        CrashEvent(at=2.0, node=0, amnesia=True, recover_at=3.0),
    ])
    ChaosController(cluster, plan).arm()
    cluster.start_all()
    first = [(0, k) for k in range(8)]         # decided pre-crash
    second = [(0, 100 + k) for k in range(8)]  # proposed into burnt slots
    _submit(cluster, 0.5, 0, first)
    _submit(cluster, 4.0, 0, second)
    cluster.run(until=40.0)

    assert agreement_holds(cluster)
    assert at_most_once_holds(cluster)
    replica = cluster.service(0)
    assert replica.batches_resequenced >= 1, (
        "the amnesia scenario never made a batch lose its instance"
    )
    for service in cluster.services:
        assert set(second) <= set(service.executed), "a resequenced batch was lost"
        assert set(first) <= set(service.executed)


def test_client_load_closed_loop_commits_offered_volume():
    """On a healthy WAN cluster with the throughput resolver, the
    closed-loop generator offers its full volume and every command
    commits everywhere."""
    n = 5
    config = PaxosConfig(n=n, requests_per_node=0,
                         processing_delays=DEFAULT_LOADS)
    topology = wan_topology(n)
    resolver = make_throughput_resolver(topology, config)
    cluster = Cluster(
        n, lambda nid: BatchedPaxosReplica(nid, config),
        topology=topology, seed=3,
        resolver_factory=lambda nid: resolver,
    )
    load = ClientLoad(cluster, total_requests=600, window=128, burst=64,
                      tick=0.05)
    cluster.start_all()
    load.arm()
    cluster.run(until=40.0)

    assert load.offered() == 600
    assert agreement_holds(cluster)
    assert at_most_once_holds(cluster)
    reference = cluster.service(0)
    assert len(reference.executed) == 600, (
        f"only {len(reference.executed)} of 600 offered commands executed"
    )
    for service in cluster.services:
        assert service.executed == reference.executed
    sizes = [
        len(unpack_value(v)) for v in reference.chosen.values()
        if tuple(v) != NOOP
    ]
    assert max(sizes) > 1, "the resolver never chose a real batch"
