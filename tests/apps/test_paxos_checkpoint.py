"""Checkpoint round-trips for Paxos replica state.

``PaxosReplica.state_fields`` mixes every container shape the
serializer supports: Command-tuple-keyed dicts (``my_requests``,
``committed``, ``applied``), int-keyed dicts (``promised``, ``chosen``,
``accepted``), a deque (``cpu_queue``), nested proposal dicts, and —
for the batched replica — batch values (tuples of command tuples).
A checkpoint taken from any reachable-shaped state must restore to an
identical state on a fresh replica: same digest, same container types,
same key types.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.apps.paxos import (
    BatchedPaxosReplica,
    MenciusPaxos,
    NOOP,
    PaxosConfig,
)

N = 5

commands = st.tuples(st.integers(0, N - 1), st.integers(0, 999))

# A log value: the NOOP filler, a single command, or a batch.
values = st.one_of(
    st.just(NOOP),
    commands,
    st.lists(commands, min_size=1, max_size=4).map(tuple),
)

ballots = st.integers(0, 200)
instances = st.integers(0, 60)
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def replica_states(draw):
    """Plain-data state in the shapes the replica actually reaches."""
    chosen = draw(st.dictionaries(instances, values, max_size=6))
    accepted = draw(st.dictionaries(
        instances, st.tuples(ballots, values).map(lambda bv: [bv[0], list(bv[1])]),
        max_size=6,
    ))
    proposals = draw(st.dictionaries(
        instances,
        st.tuples(ballots, values, times).map(lambda t: {
            "ballot": t[0], "value": t[1], "proposing": t[1],
            "phase": "accept", "promise_from": [], "accepted_from": [0, 2],
            "best_accepted_ballot": -1, "best_accepted_value": None,
            "started_at": t[2],
        }),
        max_size=3,
    ))
    executed = draw(st.lists(commands, max_size=8, unique=True))
    return {
        "promised": draw(st.dictionaries(instances, ballots, max_size=6)),
        "accepted": accepted,
        "chosen": chosen,
        "next_seq": draw(st.integers(0, 50)),
        "next_own_round": draw(st.integers(0, 50)),
        "proposals": proposals,
        "my_requests": draw(st.dictionaries(commands, times, max_size=6)),
        "committed": draw(st.dictionaries(
            commands, st.tuples(times, times).map(list), max_size=6,
        )),
        "cpu_queue": deque(draw(st.lists(commands, max_size=5))),
        "exec_upto": draw(st.integers(0, 60)),
        "executed": executed,
        "applied": set(executed),
    }


def _install(replica, state):
    for name, value in state.items():
        setattr(replica, name, value)


@given(state=replica_states(), seed=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_checkpoint_roundtrip_base(state, seed):
    config = PaxosConfig(n=N)
    original = MenciusPaxos(0, config)
    _install(original, state)
    fresh = MenciusPaxos(0, config)
    fresh.restore(original.checkpoint())
    assert fresh.state_digest() == original.state_digest()
    # Container and key types survive the round trip.
    assert isinstance(fresh.cpu_queue, deque)
    assert list(fresh.cpu_queue) == list(original.cpu_queue)
    assert isinstance(fresh.applied, set)
    assert fresh.applied == original.applied
    assert all(isinstance(k, tuple) for k in fresh.my_requests)
    assert all(isinstance(k, tuple) for k in fresh.committed)
    assert all(isinstance(k, int) for k in fresh.promised)
    assert all(isinstance(k, int) for k in fresh.chosen)
    assert all(isinstance(k, int) for k in fresh.accepted)


@given(state=replica_states(),
       pending=st.lists(commands, max_size=6),
       range_state=st.tuples(st.integers(0, 20), st.integers(0, 60),
                             st.booleans()))
@settings(max_examples=40, deadline=None)
def test_checkpoint_roundtrip_batched(state, pending, range_state):
    config = PaxosConfig(n=N)
    original = BatchedPaxosReplica(0, config)
    _install(original, state)
    original.pending = deque(pending)
    original.range_round, original.range_from, original.phase1_ok = range_state
    original.range_promises = [1, 3]
    original.range_accepted = {7: [12, ((0, 1), (2, 3))]}
    original.range_promised = {2: [4, 12]}
    original.recent_conflicts = 1.5
    original.max_inst = 41
    fresh = BatchedPaxosReplica(0, config)
    fresh.restore(original.checkpoint())
    assert fresh.state_digest() == original.state_digest()
    assert isinstance(fresh.pending, deque)
    assert list(fresh.pending) == list(original.pending)
    assert fresh.range_promised == original.range_promised
    assert fresh.range_accepted == original.range_accepted
    assert fresh.max_inst == 41 and fresh.recent_conflicts == 1.5


def test_checkpoint_is_a_deep_copy():
    """Mutating the live replica never leaks into a taken checkpoint."""
    replica = BatchedPaxosReplica(0, PaxosConfig(n=N))
    replica.pending.append((0, 1))
    replica.chosen[3] = ((0, 1), (0, 2))
    replica.applied.add((0, 1))
    snapshot = replica.checkpoint()
    replica.pending.append((0, 2))
    replica.chosen[4] = NOOP
    replica.applied.add((0, 9))
    assert list(snapshot["pending"]) == [(0, 1)]
    assert 4 not in snapshot["chosen"]
    assert (0, 9) not in snapshot["applied"]
