"""Swarm content distribution: mechanics and block policies."""

import pytest

from repro.apps.dissemination import (
    AdaptiveBlockResolver,
    DisseminationConfig,
    RarestBlockResolver,
    all_complete,
    completion_times,
    make_baseline_swarm_factory,
    make_exposed_swarm_factory,
    make_views,
)
from repro.choice import ChoicePoint, RandomResolver
from repro.statemachine import Cluster


def run_swarm(strategy="rarest", n=6, blocks=8, seed=2, until=120.0,
              exposed_resolver=None):
    config = DisseminationConfig(n=n, block_count=blocks, seeds=(0,), view_size=n - 1)
    views = make_views(n, config.view_size, seed)
    if exposed_resolver is None:
        factory = make_baseline_swarm_factory(config, views, strategy)
        cluster = Cluster(n, factory, seed=seed)
    else:
        factory = make_exposed_swarm_factory(config, views)
        cluster = Cluster(n, factory, seed=seed,
                          resolver_factory=lambda nid: exposed_resolver)
    cluster.start_all()
    cluster.run(until=until)
    return cluster


def test_make_views_excludes_self_and_is_bounded():
    views = make_views(6, 3, seed=1)
    for node_id, view in enumerate(views):
        assert node_id not in view
        assert len(view) == 3


def test_seed_starts_complete():
    cluster = run_swarm(until=0.5)
    seed_service = cluster.service(0)
    assert seed_service.is_seed
    assert seed_service.completed_at == 0.0
    assert len(seed_service.have) == 8


@pytest.mark.parametrize("strategy", ["random", "rarest"])
def test_swarm_completes(strategy):
    cluster = run_swarm(strategy=strategy)
    assert all_complete(cluster.services)
    times = completion_times(cluster.services)
    assert len(times) == 5
    assert all(t > 0 for t in times)


def test_unknown_strategy_rejected():
    config = DisseminationConfig(n=3)
    views = make_views(3, 2, 0)
    with pytest.raises(ValueError):
        make_baseline_swarm_factory(config, views, "chaotic")(0)


def test_leechers_serve_each_other():
    cluster = run_swarm()
    sends = [
        rec for rec in cluster.sim.trace.select("net.send")
        if rec.data.get("kind") == "BlockData" and rec.node != 0
    ]
    assert sends  # some block data flowed leecher-to-leecher


def test_have_announcements_update_availability():
    cluster = run_swarm(until=120.0)
    service = cluster.service(1)
    assert any(service.availability.values())


def test_outstanding_bounded():
    config = DisseminationConfig(n=4, block_count=16, seeds=(0,), max_outstanding=2)
    views = make_views(4, 3, 1)
    factory = make_baseline_swarm_factory(config, views, "random")
    cluster = Cluster(4, factory, seed=1)
    cluster.start_all()
    for _ in range(50):
        cluster.run(max_events=20)
        for service in cluster.services:
            assert len(service.outstanding) <= 2


def test_exposed_with_rarest_resolver_completes():
    cluster = run_swarm(exposed_resolver=RarestBlockResolver())
    assert all_complete(cluster.services)


def test_exposed_with_adaptive_resolver_completes():
    cluster = run_swarm(exposed_resolver=AdaptiveBlockResolver())
    assert all_complete(cluster.services)


def test_rarest_resolver_picks_min_count():
    resolver = RarestBlockResolver()
    point = ChoicePoint(
        label="next-block", candidates=[1, 2, 3], node_id=0,
        info={"counts": {1: 5, 2: 1, 3: 4}},
    )
    assert resolver.resolve(point) == 2


def test_adaptive_resolver_switches_on_scarcity():
    scarce = ChoicePoint(
        label="next-block", candidates=[1, 2], node_id=0,
        info={"counts": {1: 1, 2: 9}},
    )
    abundant = ChoicePoint(
        label="next-block", candidates=[1, 2], node_id=0,
        info={"counts": {1: 8, 2: 9}},
    )
    resolver = AdaptiveBlockResolver(scarcity_threshold=2)
    assert resolver.resolve(scarce) == 1        # rarest mode
    # Abundant mode: uniform over all candidates (first without a node rng).
    assert resolver.resolve(abundant) in (1, 2)


def test_request_timeout_reissues():
    # A request stuck in `outstanding` past the timeout must be pruned
    # and re-issued; without pruning, block 0 would never be fetched
    # (outstanding blocks are excluded from `needed`).
    config = DisseminationConfig(
        n=2, block_count=2, seeds=(0,), view_size=1, request_timeout=1.0,
    )
    views = make_views(2, 1, 0)
    factory = make_baseline_swarm_factory(config, views, "random")
    cluster = Cluster(2, factory, seed=1)
    cluster.start_all()
    cluster.run(until=0.2)  # bitfields exchanged, nothing downloaded yet
    leecher = cluster.service(1)
    leecher.have = {1}
    leecher.outstanding = {0: (0, -10.0)}  # stale request far past timeout
    cluster.run(until=10.0)
    assert leecher.completed_at is not None
