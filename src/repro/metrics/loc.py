"""Logical lines-of-code counting.

E1 reproduces the paper's headline development-effort numbers:
"Exposing choices results in a 43% decrease in lines of code (from 487
to 280)".  To compare our two RandTree implementations fairly we count
*logical* lines: non-blank, non-comment source lines, excluding
docstrings (which exist for documentation quality, not protocol
logic).
"""

from __future__ import annotations

import ast
import io
import tokenize
from typing import Set

_IGNORED_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    }
)


def _docstring_lines(source: str) -> Set[int]:
    """Line numbers occupied by module/class/function docstrings."""
    lines: Set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        body = getattr(node, "body", [])
        if not body:
            continue
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            lines.update(range(first.lineno, (first.end_lineno or first.lineno) + 1))
    return lines


def logical_loc(source: str) -> int:
    """Number of logical source lines in a piece of Python code.

    A line counts when it carries at least one code token and is not
    part of a docstring.  Blank lines, comments, and docstrings do not
    count; a statement spread over several physical lines counts each
    physical line it occupies (matching how LoC is conventionally
    reported for C++/Mace sources).
    """
    doc_lines = _docstring_lines(source)
    code_lines: Set[int] = set()
    reader = io.StringIO(source).readline
    for token in tokenize.generate_tokens(reader):
        if token.type in _IGNORED_TOKENS:
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
    return len(code_lines - doc_lines)


def logical_loc_of_file(path: str) -> int:
    """Logical LoC of a Python source file."""
    with open(path, "r", encoding="utf-8") as handle:
        return logical_loc(handle.read())


__all__ = ["logical_loc", "logical_loc_of_file"]
