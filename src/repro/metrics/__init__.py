"""Code metrics used by the Section 4 development-effort comparison."""

from .compare import (
    ComparisonReport,
    ImplementationMetrics,
    compare_files,
    compare_randtree,
    measure_file,
)
from .complexity import (
    HandlerComplexity,
    ModuleComplexity,
    analyze_file,
    analyze_source,
    count_branches,
)
from .loc import logical_loc, logical_loc_of_file

__all__ = [
    "ComparisonReport",
    "ImplementationMetrics",
    "compare_files",
    "compare_randtree",
    "measure_file",
    "HandlerComplexity",
    "ModuleComplexity",
    "analyze_file",
    "analyze_source",
    "count_branches",
    "logical_loc",
    "logical_loc_of_file",
]
