"""Code metrics used by the Section 4 development-effort comparison,
plus benchmark regression comparison for ``cli bench --compare``."""

from .benchdiff import (
    BenchComparison,
    MetricDelta,
    compare_bench,
    compare_bench_files,
    metric_direction,
)
from .compare import (
    ComparisonReport,
    ImplementationMetrics,
    compare_files,
    compare_randtree,
    measure_file,
)
from .complexity import (
    HandlerComplexity,
    ModuleComplexity,
    analyze_file,
    analyze_source,
    count_branches,
)
from .loc import logical_loc, logical_loc_of_file

__all__ = [
    "BenchComparison",
    "MetricDelta",
    "compare_bench",
    "compare_bench_files",
    "metric_direction",
    "ComparisonReport",
    "ImplementationMetrics",
    "compare_files",
    "compare_randtree",
    "measure_file",
    "HandlerComplexity",
    "ModuleComplexity",
    "analyze_file",
    "analyze_source",
    "count_branches",
    "logical_loc",
    "logical_loc_of_file",
]
