"""E1 comparison: baseline vs choice-exposed implementation metrics."""

from __future__ import annotations

from dataclasses import dataclass
from .complexity import ModuleComplexity, analyze_file
from .loc import logical_loc_of_file


@dataclass
class ImplementationMetrics:
    """LoC and complexity numbers for one implementation file."""

    path: str
    loc: int
    complexity: ModuleComplexity

    @property
    def branches_per_handler(self) -> float:
        return self.complexity.branches_per_handler


@dataclass
class ComparisonReport:
    """Baseline-vs-exposed development-effort comparison (the E1 table)."""

    baseline: ImplementationMetrics
    exposed: ImplementationMetrics

    @property
    def loc_reduction(self) -> float:
        """Fraction of baseline LoC removed by exposing choices."""
        if self.baseline.loc == 0:
            return 0.0
        return 1.0 - (self.exposed.loc / self.baseline.loc)

    def rows(self):
        """Table rows matching the paper's Section 4 numbers."""
        return [
            ("lines of code", self.baseline.loc, self.exposed.loc),
            (
                "if-else per handler",
                round(self.baseline.branches_per_handler, 2),
                round(self.exposed.branches_per_handler, 2),
            ),
            ("handlers", self.baseline.complexity.handler_count,
             self.exposed.complexity.handler_count),
            ("guards", self.baseline.complexity.guard_count,
             self.exposed.complexity.guard_count),
        ]

    def format_table(self) -> str:
        lines = [f"{'metric':<22}{'baseline':>10}{'exposed':>10}"]
        for name, base, exp in self.rows():
            lines.append(f"{name:<22}{base:>10}{exp:>10}")
        lines.append(f"{'LoC reduction':<22}{'':>10}{self.loc_reduction:>9.0%}")
        return "\n".join(lines)


def measure_file(path: str) -> ImplementationMetrics:
    """LoC + complexity of one implementation file."""
    return ImplementationMetrics(
        path=path, loc=logical_loc_of_file(path), complexity=analyze_file(path),
    )


def compare_files(baseline_path: str, exposed_path: str) -> ComparisonReport:
    """Build the E1 report for a pair of implementation files."""
    return ComparisonReport(
        baseline=measure_file(baseline_path), exposed=measure_file(exposed_path),
    )


def compare_randtree() -> ComparisonReport:
    """The paper's exact comparison: our two RandTree implementations."""
    from ..apps.randtree import baseline as baseline_module
    from ..apps.randtree import exposed as exposed_module

    return compare_files(baseline_module.__file__, exposed_module.__file__)


__all__ = [
    "ImplementationMetrics",
    "ComparisonReport",
    "measure_file",
    "compare_files",
    "compare_randtree",
]
