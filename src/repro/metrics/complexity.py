"""Handler-complexity metric: if-else statements per handler.

Section 4: "Using the number of if-else statements per handler to
capture complexity, we observe that the complexity of the new code is
0.28, which is significantly lower than the baseline (1.94)."

A *handler* is any method decorated with ``msg_handler`` or
``timer_handler``.  Branch constructs counted inside a handler body:
``if``/``elif`` statements (each is one ``ast.If``), ``else`` blocks
that are not ``elif`` chains, and conditional expressions.  Guard
predicates attached via decorators are reported separately — moving
dispatch conditions out of handler bodies into declarative guards is
precisely the restructuring the paper advocates, and the separate count
keeps the comparison honest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional

_HANDLER_DECORATORS = {"msg_handler", "timer_handler"}


@dataclass
class HandlerComplexity:
    """Branch statistics for one handler method."""

    name: str
    branches: int
    has_guard: bool


@dataclass
class ModuleComplexity:
    """Complexity summary of one module."""

    handlers: List[HandlerComplexity] = field(default_factory=list)
    guard_count: int = 0

    @property
    def handler_count(self) -> int:
        return len(self.handlers)

    @property
    def total_branches(self) -> int:
        return sum(h.branches for h in self.handlers)

    @property
    def branches_per_handler(self) -> float:
        """The paper's metric: mean if-else statements per handler."""
        if not self.handlers:
            return 0.0
        return self.total_branches / len(self.handlers)


def _decorator_name(decorator: ast.expr) -> Optional[str]:
    if isinstance(decorator, ast.Call):
        target = decorator.func
    else:
        target = decorator
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _has_guard(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    if any(kw.arg == "guard" for kw in decorator.keywords):
        return True
    return len(decorator.args) > 1


def count_branches(node: ast.AST) -> int:
    """Branch constructs in a subtree: if/elif, standalone else, ternary."""
    branches = 0
    for child in ast.walk(node):
        if isinstance(child, ast.If):
            branches += 1
            # A non-empty orelse that is not an elif chain is an `else`.
            if child.orelse and not (
                len(child.orelse) == 1 and isinstance(child.orelse[0], ast.If)
            ):
                branches += 1
        elif isinstance(child, ast.IfExp):
            branches += 1
    return branches


def analyze_source(source: str) -> ModuleComplexity:
    """Extract handler complexity statistics from module source."""
    tree = ast.parse(source)
    result = ModuleComplexity()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        handler_decorators = [
            d for d in node.decorator_list
            if _decorator_name(d) in _HANDLER_DECORATORS
        ]
        if not handler_decorators:
            continue
        guarded = any(_has_guard(d) for d in handler_decorators)
        if guarded:
            result.guard_count += sum(1 for d in handler_decorators if _has_guard(d))
        result.handlers.append(
            HandlerComplexity(
                name=node.name,
                branches=count_branches(node),
                has_guard=guarded,
            )
        )
    return result


def analyze_file(path: str) -> ModuleComplexity:
    """Handler complexity of a Python source file."""
    with open(path, "r", encoding="utf-8") as handle:
        return analyze_source(handle.read())


__all__ = [
    "HandlerComplexity",
    "ModuleComplexity",
    "count_branches",
    "analyze_source",
    "analyze_file",
]
