"""Benchmark regression comparison (``cli bench --compare``).

Compares the ``metrics`` dict of a freshly-produced ``BENCH_<ID>.json``
against a recorded baseline and flags metrics that moved more than a
tolerance in the *bad* direction.  The direction is inferred from the
metric name: throughput-like metrics (``ops_per_sec``, ``speedup``,
``hit_rate``, ``committed``...) must not drop; cost-like metrics
(``seconds``, ``overhead``, ``bytes``, ``latency``...) must not grow.
String-valued metrics — digests above all — must be byte-identical,
which is what turns a same-seed double run into a determinism gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Substrings marking a metric where *higher* is better.
HIGHER_IS_BETTER = (
    "ops_per_sec", "speedup", "hit_rate", "hits", "committed", "rate",
    "throughput", "coverage", "found", "per_sec",
)

#: Substrings marking a metric where *lower* is better.
LOWER_IS_BETTER = (
    "seconds", "_s", "overhead", "bytes", "latency", "wall", "states",
    "misses", "duty_cycle", "time",
)

#: Metrics that vary run-to-run by nature and are never compared.
SKIPPED = ("wall_time_s", "score_wall_s", "quick")


def metric_direction(name: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` is better, or None (direction unknown).

    Checked most-specific-first on the last path component so
    ``message-chaos.ops_per_sec_steering_off`` reads as a throughput.
    """
    leaf = name.rsplit(".", 1)[-1].lower()
    for marker in HIGHER_IS_BETTER:
        if marker in leaf:
            return "higher"
    for marker in LOWER_IS_BETTER:
        if marker in leaf:
            return "lower"
    return None


@dataclass
class MetricDelta:
    """One compared metric: its values and the verdict."""

    name: str
    baseline: Any
    current: Any
    change: Optional[float]  # relative change, None for non-numerics
    verdict: str  # "ok" | "regressed" | "improved" | "changed" | "skipped"

    def describe(self) -> str:
        if self.change is None:
            return (f"{self.name}: {self.baseline!r} -> {self.current!r} "
                    f"[{self.verdict}]")
        return (f"{self.name}: {self.baseline} -> {self.current} "
                f"({self.change:+.1%}) [{self.verdict}]")


@dataclass
class BenchComparison:
    """The outcome of comparing one bench result against a baseline."""

    bench: str
    tolerance: float
    deltas: List[MetricDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict in ("regressed", "changed")]

    @property
    def ok(self) -> bool:
        """No regressions, no digest flips, no vanished metrics."""
        return not self.regressions and not self.missing

    def summary(self) -> str:
        lines = [
            f"bench {self.bench}: {len(self.deltas)} metrics compared "
            f"(tolerance {self.tolerance:.0%})"
        ]
        for delta in self.deltas:
            if delta.verdict != "ok":
                lines.append("  " + delta.describe())
        for name in self.missing:
            lines.append(f"  {name}: present in baseline, missing now [regressed]")
        for name in self.added:
            lines.append(f"  {name}: new metric (no baseline) [info]")
        lines.append("PASS" if self.ok else "FAIL: regressions above tolerance")
        return "\n".join(lines)


def _compare_one(name: str, base: Any, cur: Any, tolerance: float) -> MetricDelta:
    if name.rsplit(".", 1)[-1] in SKIPPED:
        return MetricDelta(name, base, cur, None, "skipped")
    if isinstance(base, bool) or isinstance(cur, bool) or \
            isinstance(base, str) or isinstance(cur, str):
        # Exact-match metrics: digests, flags, mode names.  Any flip is
        # a regression (for digests: a determinism break).
        return MetricDelta(name, base, cur, None,
                           "ok" if base == cur else "changed")
    if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
        return MetricDelta(name, base, cur, None, "skipped")
    if base == cur:
        return MetricDelta(name, base, cur, 0.0, "ok")
    change = (cur - base) / abs(base) if base else float("inf") * (1 if cur > 0 else -1)
    direction = metric_direction(name)
    if direction is None:
        # Unknown direction: any move beyond tolerance is suspicious.
        verdict = "ok" if abs(change) <= tolerance else "changed"
    elif direction == "higher":
        verdict = ("regressed" if change < -tolerance
                   else "improved" if change > tolerance else "ok")
    else:
        verdict = ("regressed" if change > tolerance
                   else "improved" if change < -tolerance else "ok")
    return MetricDelta(name, base, cur, change, verdict)


def _flatten(metrics: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=name + "."))
        else:
            flat[name] = value
    return flat


def compare_bench(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = 0.10,
) -> BenchComparison:
    """Compare two BENCH_<ID>.json payloads (parsed dicts).

    Only the ``metrics`` sections are compared; tables are presentation.
    Returns a :class:`BenchComparison` whose ``ok`` is False when any
    metric regressed beyond ``tolerance``, any exact-match metric
    (digest/flag) flipped, or a baseline metric vanished.
    """
    base_metrics = _flatten(baseline.get("metrics", {}))
    cur_metrics = _flatten(current.get("metrics", {}))
    comparison = BenchComparison(
        bench=str(current.get("bench", baseline.get("bench", "?"))),
        tolerance=tolerance,
    )
    for name in sorted(base_metrics):
        if name in cur_metrics:
            comparison.deltas.append(
                _compare_one(name, base_metrics[name], cur_metrics[name], tolerance)
            )
        elif name.rsplit(".", 1)[-1] not in SKIPPED:
            comparison.missing.append(name)
    comparison.added.extend(sorted(set(cur_metrics) - set(base_metrics)))
    return comparison


def compare_bench_files(
    baseline_path: str, current_path: str, tolerance: float = 0.10,
) -> BenchComparison:
    """File-path convenience wrapper around :func:`compare_bench`."""
    import json

    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(current_path, "r", encoding="utf-8") as fh:
        current = json.load(fh)
    return compare_bench(baseline, current, tolerance=tolerance)


__all__ = [
    "BenchComparison",
    "MetricDelta",
    "compare_bench",
    "compare_bench_files",
    "metric_direction",
]
