"""E6: proposer choice for replicated state machines over WANs.

The Mencius observation the paper cites: a fixed single proposer
"can suffer from reduced performance due to CPU overload or network
congestion" and rotating proposers wins across wide-area networks.  We
run five replicas over a three-region WAN with one poorly-connected
edge replica and measure commit latency per originating node:

* ``fixed`` — every command routes through replica 0;
* ``mencius`` — every origin proposes its own commands;
* ``choice`` — the proposer is exposed; the runtime's network model
  picks the proposer with the lowest predicted commit latency (for the
  edge replica that is a well-connected *proxy*, beating both
  hard-coded designs).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..apps.paxos import PaxosConfig, make_paxos_factory, make_proposer_resolver
from ..obs import collect_cluster_metrics
from ..net import Link, Topology
from ..runtime import install_crystalball
from ..statemachine import Cluster

PAXOS_VARIANTS = ("fixed", "mencius", "choice")

#: Steering modes for :func:`run_throughput_experiment`.  ``off`` is the
#: static default resolver (first candidate), ``static`` the
#: deployment-model resolver, ``amortized`` prediction-driven steering
#: through the :class:`~repro.runtime.AmortizedSteering` scheduler.
STEERING_MODES = ("off", "static", "amortized")


def steering_mode(steering: Any) -> str:
    """Normalize a steering argument (bool or mode name) to a mode.

    ``True``/``False`` keep their historical meaning (``static``/``off``)
    so existing callers and recorded benchmark configs stay valid.
    """
    if steering is True:
        return "static"
    if steering is False:
        return "off"
    if steering in STEERING_MODES:
        return str(steering)
    raise ValueError(
        f"unknown steering mode {steering!r}; expected a bool or one of {STEERING_MODES}"
    )


@dataclass
class PaxosResult:
    """Commit-latency statistics for one run."""

    variant: str
    seed: int
    n: int
    committed: int
    expected: int
    mean_latency: Optional[float]
    p99_latency: Optional[float]
    per_node_mean: Dict[int, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        mean = f"{self.mean_latency * 1000:.0f}ms" if self.mean_latency is not None else "n/a"
        p99 = f"{self.p99_latency * 1000:.0f}ms" if self.p99_latency is not None else "n/a"
        return (
            f"{self.variant:>8}  seed={self.seed}  committed={self.committed}/{self.expected}  "
            f"mean={mean}  p99={p99}"
        )


def wan_topology(n: int = 5, edge_penalty: float = 0.25) -> Topology:
    """Three-region WAN with one poorly-connected edge replica.

    Replicas 0-1 in region A, 2-3 in region B, 4 at the edge.  Intra-
    region links are 10 ms; A<->B is 80 ms; the edge node reaches B in
    ``edge_penalty`` seconds and A in roughly twice that, so its own
    consensus rounds are slow but a region-B proxy is close.
    """
    if n != 5:
        raise ValueError("the reference WAN scenario is defined for n=5")
    topo = Topology(n)
    lat = {
        (0, 1): 0.010,
        (2, 3): 0.010,
        (0, 2): 0.080, (0, 3): 0.080, (1, 2): 0.080, (1, 3): 0.080,
        (0, 4): 2 * edge_penalty, (1, 4): 2 * edge_penalty,
        (2, 4): edge_penalty, (3, 4): edge_penalty,
    }
    for (a, b), latency in lat.items():
        topo.set_symmetric(a, b, Link(latency=latency, bandwidth=100e6))
    return topo


DEFAULT_LOADS = (0.15, 0.0, 0.0, 0.0, 0.25)


def run_paxos_experiment(
    variant: str,
    seed: int = 0,
    n: int = 5,
    requests_per_node: int = 10,
    request_interval: float = 0.5,
    processing_delays: Optional[tuple] = DEFAULT_LOADS,
    topology: Optional[Topology] = None,
    max_time: float = 60.0,
) -> PaxosResult:
    """Run one replicated-state-machine workload and collect latencies.

    The default load model puts CPU load on replica 0 (hurting the
    fixed-leader design) and on the edge replica 4 (hurting Mencius for
    node 4's own commands); the exposed choice routes around both.
    """
    if variant not in PAXOS_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {PAXOS_VARIANTS}")
    config = PaxosConfig(
        n=n, request_interval=request_interval, requests_per_node=requests_per_node,
        processing_delays=processing_delays,
    )
    if topology is None:
        topology = wan_topology(n)
    factory = make_paxos_factory(variant, config)
    cluster = Cluster(n, factory, topology=topology, seed=seed)
    if variant == "choice":
        runtimes = install_crystalball(
            cluster, factory, set_resolver=False,
            checkpoint_period=0.0, prediction_period=0.0,
        )
        for runtime, node in zip(runtimes, cluster.nodes):
            runtime.network_model.bootstrap_from_topology(topology)
            node.choice_resolver = make_proposer_resolver()
    cluster.start_all()
    cluster.run(until=max_time)

    latencies: List[float] = []
    per_node: Dict[int, float] = {}
    committed = 0
    for service in cluster.services:
        node_latencies = service.commit_latencies()
        committed += len(node_latencies)
        latencies.extend(node_latencies)
        if node_latencies:
            per_node[service.node_id] = statistics.mean(node_latencies)
    latencies.sort()
    expected = n * requests_per_node
    return PaxosResult(
        variant=variant,
        seed=seed,
        n=n,
        committed=committed,
        expected=expected,
        mean_latency=statistics.mean(latencies) if latencies else None,
        p99_latency=latencies[int(0.99 * (len(latencies) - 1))] if latencies else None,
        per_node_mean=per_node,
        metrics=collect_cluster_metrics(cluster),
    )


@dataclass
class ThroughputResult:
    """One batched Multi-Paxos run under load (and chaos)."""

    steering: bool  # kept for compat: mode != "off"
    seed: int
    n: int
    plan_name: str
    horizon: float
    offered: int
    committed: int
    client_committed: int
    ops_per_sec: float
    batches: int
    mean_batch: float
    agreement: bool
    at_most_once: bool
    probes: int
    state_digest: str
    mode: str = "off"
    chaos_stats: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def safe(self) -> bool:
        """Agreement and at-most-once held at every probe and at the end."""
        return self.agreement and self.at_most_once

    def summary(self) -> str:
        mode = f"steer-{self.mode:<9}"
        status = "SAFE" if self.safe else "VIOLATED"
        return (
            f"{mode}  seed={self.seed}  plan={self.plan_name:<14}"
            f"committed={self.committed}/{self.offered}  "
            f"{self.ops_per_sec:,.0f} ops/s  mean_batch={self.mean_batch:.1f}  {status}"
        )


def run_throughput_experiment(
    steering: Any,
    seed: int = 0,
    total_requests: int = 100_000,
    horizon: float = 60.0,
    plan: Optional[Any] = None,
    n: int = 5,
    window: int = 4096,
    burst: int = 512,
    tick: float = 0.05,
    probe_period: float = 5.0,
    processing_delays: Optional[tuple] = DEFAULT_LOADS,
    config: Optional[PaxosConfig] = None,
    stream: Optional[Any] = None,
    telemetry: bool = False,
    telemetry_cadence: float = 1.0,
    coalesce_window: float = 0.25,
    max_policy_age: float = 20.0,
    policy_rate_budget: Optional[float] = 3_000.0,
    policy_initial_allowance: Optional[float] = 30_000.0,
    policy_budget: int = 240,
    checkpoint_period: float = 0.0,
) -> ThroughputResult:
    """T1: committed-ops throughput of batched Multi-Paxos under load.

    A :class:`~repro.apps.paxos.ClientLoad` generator offers
    ``total_requests`` commands closed-loop over the reference WAN while
    an A7 chaos plan (default: ``message-chaos``; amnesia is rejected,
    as in :func:`~repro.eval.chaos_experiment.run_chaos_paxos_experiment`)
    runs against the cluster.  ``steering`` picks how the exposed
    batch-size / proposer / retry-pacing choices resolve:

    * ``"off"`` (or ``False``) — the static default (first candidate:
      batch size 1, local proposer), the legacy unbatched behaviour;
    * ``"static"`` (or ``True``) — the deployment-model resolver,
      precomputed from topology and configured loads;
    * ``"amortized"`` — prediction-driven steering through the
      :class:`~repro.runtime.AmortizedSteering` scheduler: a full
      CrystalBall runtime is installed per node, scored prediction
      rounds distill :class:`~repro.runtime.SteeringPolicy` rankings
      against a committed-work objective
      (:class:`~repro.apps.paxos.ThroughputObjective`), and the hot path
      answers from the coalescing cache / policy, degrading to the
      ``static`` resolver when the policy is stale or the budget is
      spent (``policy_initial_allowance`` weighted states up front plus
      ``policy_rate_budget`` per sim-second; rounds whose projected
      replay cost no longer fits the remaining allowance are denied
      before any state is captured, concentrating prediction early
      while the decided logs are small).
      Cluster-wide scheduler counters land in ``metrics["steering"]``.
      Checkpoint gossip is off by default (``checkpoint_period=0``):
      the committed-work objective scores local queue drain, and at
      10^5-request scale periodically snapshotting ever-growing decided
      logs would dominate the run — prediction rounds replay from the
      local captured dispatch only.

    Safety is probed every ``probe_period`` seconds *during* the run and
    once at the end: cross-replica agreement and at-most-once execution
    must hold throughout.  Tracing is disabled (10^5-request runs would
    swamp it); reproducibility is asserted over ``state_digest``, a
    digest of every replica's decided log and execution order.

    ``stream=`` (a path or an open :class:`~repro.obs.RunStream`) makes
    the run observable *while executing*: a
    :class:`~repro.obs.TelemetrySampler` emits per-second offered /
    committed / conflict curves as ``sample`` records, every safety
    probe and chaos burst boundary as ``event`` records, and the
    headline result as the final ``summary`` (tail it live with
    ``python -m repro.cli tail <path> --follow``).  ``telemetry=True``
    keeps the sampled series in-memory only (returned under
    ``metrics["telemetry"]``).  Sampling is digest-neutral: the sampler
    rides the event queue on its own tag, reads state without touching
    it, and draws no RNG, so ``state_digest`` is byte-identical with
    streaming on or off (``benchmarks/bench_o3_stream.py`` asserts it).
    """
    from ..apps.paxos import ClientLoad, ThroughputObjective, make_throughput_resolver
    from ..chaos import ChaosController, CrashEvent
    from ..obs import TelemetrySampler, as_stream
    from ..runtime import merge_steering_snapshots
    from ..statemachine.serialization import digest

    mode = steering_mode(steering)
    steering = mode != "off"
    if config is None:
        config = PaxosConfig(
            n=n, requests_per_node=0, processing_delays=processing_delays,
        )
    if plan is None:
        from .chaos_experiment import standard_plans

        plan = standard_plans(n, horizon, amnesia=False)[0]
    for event in plan.events:
        if isinstance(event, CrashEvent) and event.amnesia:
            raise ValueError(
                "amnesia crashes forfeit Paxos safety assumptions; "
                f"use amnesia=False in {plan.name!r}"
            )
    topology = wan_topology(n)
    factory = make_paxos_factory("batched", config)
    resolver_factory = None
    if mode == "static":
        resolver = make_throughput_resolver(topology, config)
        resolver_factory = lambda node_id: resolver
    cluster = Cluster(n, factory, topology=topology, seed=seed,
                      resolver_factory=resolver_factory)
    runtimes: List[Any] = []
    if mode == "amortized":
        runtimes = install_crystalball(
            cluster, factory, set_resolver=True,
            checkpoint_period=checkpoint_period, prediction_period=0.0,
            objective=ThroughputObjective(),
            steering_policy=True,
            policy_fallback=make_throughput_resolver(topology, config),
            coalesce_window=coalesce_window,
            max_policy_age=max_policy_age,
            policy_rate_budget=policy_rate_budget,
            policy_initial_allowance=policy_initial_allowance,
            policy_budget=policy_budget,
        )
        for runtime in runtimes:
            runtime.network_model.bootstrap_from_topology(topology)
    cluster.sim.trace.enabled = False
    controller = ChaosController(cluster, plan)
    controller.arm()
    load = ClientLoad(cluster, total_requests, window=window, burst=burst, tick=tick)

    run_stream = as_stream(
        stream, kind="t1", clock=lambda: cluster.sim.now,
        config={
            "steering": steering, "mode": mode, "seed": seed, "n": n,
            "total_requests": total_requests, "horizon": horizon,
            "plan": plan.name or "custom", "cadence": telemetry_cadence,
        },
    )
    # A caller-owned RunStream (e.g. a sweep sharing one file across
    # runs) keeps its lifecycle: we emit events but not the summary.
    owns_stream = run_stream is not None and run_stream is not stream
    sampler: Optional[TelemetrySampler] = None
    if run_stream is not None or telemetry:
        sampler = TelemetrySampler(
            cluster.sim, cadence=telemetry_cadence, stream=run_stream,
        )
        sampler.watch("ops.offered", load.offered, agg="last")
        sampler.watch(
            "ops.committed",
            lambda: max(len(s.executed) for s in cluster.services), agg="last",
        )
        sampler.watch(
            "ops.client_committed",
            lambda: sum(load.committed().values()), agg="last",
        )
        sampler.watch(
            "paxos.conflicts",
            lambda: round(sum(s.recent_conflicts for s in cluster.services), 4),
            agg="mean",
        )
        sampler.watch(
            "net.messages_sent", lambda: cluster.network.messages_sent, agg="last",
        )

    safety = {"agreement": True, "at_most_once": True, "probes": 0}

    def probe() -> None:
        safety["probes"] += 1
        agreement = agreement_holds(cluster)
        at_most_once = at_most_once_holds(cluster)
        safety["agreement"] = safety["agreement"] and agreement
        safety["at_most_once"] = safety["at_most_once"] and at_most_once
        if run_stream is not None:
            run_stream.write_event(
                "safety.probe", t=cluster.sim.now,
                probe=safety["probes"], agreement=agreement,
                at_most_once=at_most_once,
            )
        if cluster.sim.now + probe_period <= horizon:
            cluster.sim.schedule(probe_period, probe, tag="throughput.probe")

    cluster.start_all()
    load.arm()
    cluster.sim.schedule(probe_period, probe, tag="throughput.probe")
    if sampler is not None:
        sampler.start(until=horizon)
    cluster.run(until=horizon)

    probe()  # final check at the horizon
    from ..apps.paxos import NOOP, unpack_value

    best = max(cluster.services, key=lambda s: len(s.executed))
    committed = len(best.executed)
    batch_sizes = [
        len(unpack_value(value))
        for value in best.chosen.values()
        if tuple(value) != NOOP
    ]
    batches = sum(1 for b in batch_sizes if b > 0)
    state_digest = digest({
        s.node_id: {"chosen": s.chosen, "executed": s.executed}
        for s in cluster.services
    })
    metrics = collect_cluster_metrics(cluster)
    if runtimes:
        metrics["steering"] = merge_steering_snapshots(
            r.amortized.snapshot() for r in runtimes if r.amortized is not None
        )
    if sampler is not None:
        sampler.stop()
        metrics["telemetry"] = sampler.snapshot()
    if run_stream is not None:
        summary_data = dict(
            steering=steering, mode=mode, seed=seed, plan=plan.name or "custom",
            offered=load.offered(), committed=committed,
            ops_per_sec=round(committed / horizon, 3) if horizon > 0 else 0.0,
            agreement=safety["agreement"], at_most_once=safety["at_most_once"],
            probes=safety["probes"], state_digest=state_digest,
        )
        if owns_stream:
            run_stream.write_summary(t=cluster.sim.now, **summary_data)
        else:
            run_stream.write_event("t1.done", t=cluster.sim.now, **summary_data)
    return ThroughputResult(
        steering=steering,
        mode=mode,
        seed=seed,
        n=n,
        plan_name=plan.name or "custom",
        horizon=horizon,
        offered=load.offered(),
        committed=committed,
        client_committed=sum(load.committed().values()),
        ops_per_sec=committed / horizon if horizon > 0 else 0.0,
        batches=batches,
        mean_batch=(sum(batch_sizes) / batches) if batches else 0.0,
        agreement=safety["agreement"],
        at_most_once=safety["at_most_once"],
        probes=safety["probes"],
        state_digest=state_digest,
        chaos_stats=controller.stats(),
        metrics=metrics,
    )


def agreement_holds(cluster: Cluster) -> bool:
    """Cross-replica agreement: no instance decided differently anywhere."""
    decided: Dict[int, tuple] = {}
    for service in cluster.services:
        for instance, value in service.chosen.items():
            if instance in decided and decided[instance] != value:
                return False
            decided[instance] = value
    return True


def at_most_once_holds(cluster: Cluster) -> bool:
    """At-most-once execution: no replica applied a command twice.

    A command can legitimately be *chosen* in two instances (recovery
    re-proposes it while the original decision survives elsewhere), but
    the replicated log must apply it exactly once — the dedup-on-apply
    guarantee of ``PaxosReplica._value_chosen``.
    """
    for service in cluster.services:
        if len(service.executed) != len(set(service.executed)):
            return False
    return True


__all__ = ["PAXOS_VARIANTS", "STEERING_MODES", "DEFAULT_LOADS", "PaxosResult",
           "ThroughputResult", "steering_mode", "wan_topology",
           "run_paxos_experiment", "run_throughput_experiment",
           "agreement_holds", "at_most_once_holds"]
