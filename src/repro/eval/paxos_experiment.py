"""E6: proposer choice for replicated state machines over WANs.

The Mencius observation the paper cites: a fixed single proposer
"can suffer from reduced performance due to CPU overload or network
congestion" and rotating proposers wins across wide-area networks.  We
run five replicas over a three-region WAN with one poorly-connected
edge replica and measure commit latency per originating node:

* ``fixed`` — every command routes through replica 0;
* ``mencius`` — every origin proposes its own commands;
* ``choice`` — the proposer is exposed; the runtime's network model
  picks the proposer with the lowest predicted commit latency (for the
  edge replica that is a well-connected *proxy*, beating both
  hard-coded designs).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..apps.paxos import PaxosConfig, make_paxos_factory, make_proposer_resolver
from ..obs import collect_cluster_metrics
from ..net import Link, Topology
from ..runtime import install_crystalball
from ..statemachine import Cluster

PAXOS_VARIANTS = ("fixed", "mencius", "choice")


@dataclass
class PaxosResult:
    """Commit-latency statistics for one run."""

    variant: str
    seed: int
    n: int
    committed: int
    expected: int
    mean_latency: Optional[float]
    p99_latency: Optional[float]
    per_node_mean: Dict[int, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        mean = f"{self.mean_latency * 1000:.0f}ms" if self.mean_latency is not None else "n/a"
        p99 = f"{self.p99_latency * 1000:.0f}ms" if self.p99_latency is not None else "n/a"
        return (
            f"{self.variant:>8}  seed={self.seed}  committed={self.committed}/{self.expected}  "
            f"mean={mean}  p99={p99}"
        )


def wan_topology(n: int = 5, edge_penalty: float = 0.25) -> Topology:
    """Three-region WAN with one poorly-connected edge replica.

    Replicas 0-1 in region A, 2-3 in region B, 4 at the edge.  Intra-
    region links are 10 ms; A<->B is 80 ms; the edge node reaches B in
    ``edge_penalty`` seconds and A in roughly twice that, so its own
    consensus rounds are slow but a region-B proxy is close.
    """
    if n != 5:
        raise ValueError("the reference WAN scenario is defined for n=5")
    topo = Topology(n)
    lat = {
        (0, 1): 0.010,
        (2, 3): 0.010,
        (0, 2): 0.080, (0, 3): 0.080, (1, 2): 0.080, (1, 3): 0.080,
        (0, 4): 2 * edge_penalty, (1, 4): 2 * edge_penalty,
        (2, 4): edge_penalty, (3, 4): edge_penalty,
    }
    for (a, b), latency in lat.items():
        topo.set_symmetric(a, b, Link(latency=latency, bandwidth=100e6))
    return topo


DEFAULT_LOADS = (0.15, 0.0, 0.0, 0.0, 0.25)


def run_paxos_experiment(
    variant: str,
    seed: int = 0,
    n: int = 5,
    requests_per_node: int = 10,
    request_interval: float = 0.5,
    processing_delays: Optional[tuple] = DEFAULT_LOADS,
    topology: Optional[Topology] = None,
    max_time: float = 60.0,
) -> PaxosResult:
    """Run one replicated-state-machine workload and collect latencies.

    The default load model puts CPU load on replica 0 (hurting the
    fixed-leader design) and on the edge replica 4 (hurting Mencius for
    node 4's own commands); the exposed choice routes around both.
    """
    if variant not in PAXOS_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {PAXOS_VARIANTS}")
    config = PaxosConfig(
        n=n, request_interval=request_interval, requests_per_node=requests_per_node,
        processing_delays=processing_delays,
    )
    if topology is None:
        topology = wan_topology(n)
    factory = make_paxos_factory(variant, config)
    cluster = Cluster(n, factory, topology=topology, seed=seed)
    if variant == "choice":
        runtimes = install_crystalball(
            cluster, factory, set_resolver=False,
            checkpoint_period=0.0, prediction_period=0.0,
        )
        for runtime, node in zip(runtimes, cluster.nodes):
            runtime.network_model.bootstrap_from_topology(topology)
            node.choice_resolver = make_proposer_resolver()
    cluster.start_all()
    cluster.run(until=max_time)

    latencies: List[float] = []
    per_node: Dict[int, float] = {}
    committed = 0
    for service in cluster.services:
        node_latencies = service.commit_latencies()
        committed += len(node_latencies)
        latencies.extend(node_latencies)
        if node_latencies:
            per_node[service.node_id] = statistics.mean(node_latencies)
    latencies.sort()
    expected = n * requests_per_node
    return PaxosResult(
        variant=variant,
        seed=seed,
        n=n,
        committed=committed,
        expected=expected,
        mean_latency=statistics.mean(latencies) if latencies else None,
        p99_latency=latencies[int(0.99 * (len(latencies) - 1))] if latencies else None,
        per_node_mean=per_node,
        metrics=collect_cluster_metrics(cluster),
    )


def agreement_holds(cluster: Cluster) -> bool:
    """Cross-replica agreement: no instance decided differently anywhere."""
    decided: Dict[int, tuple] = {}
    for service in cluster.services:
        for instance, value in service.chosen.items():
            if instance in decided and decided[instance] != value:
                return False
            decided[instance] = value
    return True


__all__ = ["PAXOS_VARIANTS", "DEFAULT_LOADS", "PaxosResult", "wan_topology",
           "run_paxos_experiment", "agreement_holds"]
