"""E4: gossip dissemination under restricted vs exposed peer choice.

Section 3.1's gossip example: BAR-style restriction of peer choice is
robust but "the performance might suffer if, e.g., the only target is
behind a slow network connection"; exposing the choice lets the runtime
recover the speed.  The scenario streams rumors from a source over a
heterogeneous topology where a fraction of nodes sit behind slow links,
and measures mean per-rumor delivery latency, completion, and message
overhead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..apps.gossip import (
    GossipConfig,
    all_delivered,
    coverage,
    make_baseline_gossip_factory,
    make_exposed_gossip_factory,
    make_model_gossip_resolver,
    mean_delivery_latency,
)
from ..choice.resolvers import RandomResolver
from ..net import Link, LinkDynamics, Topology
from ..obs import collect_cluster_metrics
from ..runtime import install_crystalball
from ..statemachine import Cluster

GOSSIP_VARIANTS = ("baseline-random", "baseline-bar", "choice-random", "choice-model")

APP_MESSAGE_KINDS = ("GossipPush", "GossipPullReply")


@dataclass
class GossipResult:
    """Outcome of one gossip dissemination run."""

    variant: str
    seed: int
    n: int
    mean_latency: Optional[float]
    coverage: float
    app_messages: int
    metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        latency = f"{self.mean_latency:.3f}s" if self.mean_latency is not None else "n/a"
        return (
            f"{self.variant:>16}  seed={self.seed}  mean latency={latency}  "
            f"coverage={self.coverage:.0%}  msgs={self.app_messages}"
        )


def heterogeneous_topology(
    n: int,
    seed: int,
    slow_fraction: float = 0.25,
    slow_latency: float = 0.4,
    fast_latency_range=(0.01, 0.04),
    fast_bandwidth: float = 50e6,
    slow_bandwidth: float = 2e6,
) -> Topology:
    """Mostly-fast cluster with a fraction of nodes behind slow links."""
    rng = random.Random(seed)
    slow = set(rng.sample(range(n), max(1, int(n * slow_fraction))))
    lo, hi = fast_latency_range
    topo = Topology(n)
    for i in range(n):
        for j in range(i + 1, n):
            latency = rng.uniform(lo, hi)
            bandwidth = fast_bandwidth
            if i in slow or j in slow:
                latency += slow_latency
                bandwidth = slow_bandwidth
            topo.set_symmetric(i, j, Link(latency=latency, bandwidth=bandwidth))
    return topo


def _count_app_messages(cluster: Cluster) -> int:
    return sum(
        1
        for rec in cluster.sim.trace.select("net.send")
        if rec.data.get("kind") in APP_MESSAGE_KINDS
    )


def run_gossip_experiment(
    variant: str,
    n: int = 32,
    seed: int = 0,
    rumor_count: int = 10,
    round_period: float = 0.5,
    publish_interval: float = 1.0,
    max_time: float = 120.0,
    topology: Optional[Topology] = None,
    poll_interval: float = 0.1,
    congestion: bool = False,
    model_updates: bool = True,
) -> GossipResult:
    """Run one streaming dissemination scenario.

    With ``congestion`` the topology suffers random transient slowdown
    episodes (``repro.net.LinkDynamics``).  ``model_updates=False``
    freezes the choice-model variant's network model after its oracle
    bootstrap — the A4 ablation of adaptation.
    """
    config = GossipConfig(
        n=n, round_period=round_period, rumor_count=rumor_count,
        publish_interval=publish_interval,
    )
    if topology is None:
        topology = heterogeneous_topology(n, seed)

    if variant == "baseline-random":
        cluster = Cluster(n, make_baseline_gossip_factory(config, "random"),
                          topology=topology, seed=seed)
    elif variant == "baseline-bar":
        cluster = Cluster(n, make_baseline_gossip_factory(config, "bar"),
                          topology=topology, seed=seed)
    elif variant == "choice-random":
        cluster = Cluster(n, make_exposed_gossip_factory(config), topology=topology,
                          seed=seed, resolver_factory=lambda nid: RandomResolver(seed))
    elif variant == "choice-model":
        factory = make_exposed_gossip_factory(config)
        cluster = Cluster(n, factory, topology=topology, seed=seed)
        runtimes = install_crystalball(
            cluster, factory, set_resolver=False,
            checkpoint_period=round_period, prediction_period=0.0,
            passive_measurement=model_updates,
        )
        for runtime, node in zip(runtimes, cluster.nodes):
            runtime.network_model.bootstrap_from_topology(topology)
            node.choice_resolver = make_model_gossip_resolver()
    else:
        raise ValueError(f"unknown variant {variant!r}; expected one of {GOSSIP_VARIANTS}")

    if congestion:
        dynamics = LinkDynamics(
            cluster.sim, topology, period=1.0, episode_duration=5.0,
            latency_factor=8.0, bandwidth_factor=0.2, episode_probability=0.8,
        )
        dynamics.start()
    cluster.start_all()
    while cluster.sim.now < max_time:
        cluster.run(until=min(max_time, cluster.sim.now + poll_interval))
        if all_delivered(cluster.services, rumor_count):
            break
    return GossipResult(
        variant=variant,
        seed=seed,
        n=n,
        mean_latency=mean_delivery_latency(cluster.services, config),
        coverage=coverage(cluster.services, rumor_count),
        app_messages=_count_app_messages(cluster),
        metrics=collect_cluster_metrics(cluster),
    )


__all__ = ["GOSSIP_VARIANTS", "GossipResult", "heterogeneous_topology", "run_gossip_experiment"]
