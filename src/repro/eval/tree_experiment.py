"""The Section 4 case-study scenario: join, fail a subtree, rejoin.

"We conducted our live experiments with 31 participants over an
Internet-like network ... After all 31 participants join the tree, the
maximum depth is 6 in all cases (close to the optimal of 5).  We then
fail an entire subtree (about half of the nodes), and then let these
nodes rejoin.  Baseline and Choice-Random exhibit identical maximum
depth (10), while the Choice-CrystalBall version is better with 9
levels."

:func:`run_tree_experiment` reproduces that timeline for any of the
three setups and reports the two depth measurements (E2 and E3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs import collect_cluster_metrics

from ..apps.randtree import (
    RandTreeConfig,
    make_balance_objective,
    make_baseline_factory,
    make_exposed_factory,
    max_tree_depth,
    randtree_properties,
    tree_depths,
)
from ..choice.resolvers import RandomResolver
from ..net import Topology, transit_stub
from ..runtime import install_crystalball
from ..statemachine import Cluster

VARIANTS = ("baseline", "choice-random", "choice-crystalball")


@dataclass
class TreeExperimentResult:
    """Depth measurements for one run of the case-study scenario."""

    variant: str
    seed: int
    n: int
    depth_after_join: int = 0
    joined_after_join: int = 0
    depth_after_rejoin: int = 0
    joined_after_rejoin: int = 0
    failed_nodes: List[int] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.variant:>20}  seed={self.seed}  "
            f"join: depth={self.depth_after_join} joined={self.joined_after_join}/{self.n}  "
            f"rejoin: depth={self.depth_after_rejoin} joined={self.joined_after_rejoin}/{self.n}"
        )


def optimal_depth(n: int, fanout: int) -> int:
    """Depth (root = 1) of a complete ``fanout``-ary tree on ``n`` nodes."""
    depth = 0
    capacity = 0
    level_width = 1
    while capacity < n:
        depth += 1
        capacity += level_width
        level_width *= fanout
    return depth


def _live_states(cluster: Cluster) -> Dict[int, dict]:
    return {
        node.node_id: node.service.checkpoint()
        for node in cluster.nodes
        if node.is_up
    }


def _build_cluster(
    variant: str,
    n: int,
    seed: int,
    topology: Optional[Topology],
    config: RandTreeConfig,
    chain_depth: int,
    budget: int,
    checkpoint_period: float,
    runtime_kwargs: Optional[dict] = None,
    transport_wrapper=None,
) -> Cluster:
    if topology is None:
        topology = transit_stub(n, random.Random(seed))
    if variant == "baseline":
        factory = make_baseline_factory(config)
        return Cluster(n, factory, topology=topology, seed=seed,
                       transport_wrapper=transport_wrapper)
    factory = make_exposed_factory(config)
    if variant == "choice-random":
        cluster = Cluster(
            n, factory, topology=topology, seed=seed,
            resolver_factory=lambda nid: RandomResolver(seed),
            transport_wrapper=transport_wrapper,
        )
        return cluster
    if variant == "choice-crystalball":
        cluster = Cluster(n, factory, topology=topology, seed=seed,
                          transport_wrapper=transport_wrapper)
        install_crystalball(
            cluster,
            factory,
            objective=make_balance_objective(config),
            properties=randtree_properties(config),
            checkpoint_period=checkpoint_period,
            chain_depth=chain_depth,
            budget=budget,
            prediction_period=0.0,  # steering studied separately
            **(runtime_kwargs or {}),
        )
        return cluster
    raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")


def failed_subtree(cluster: Cluster, config: RandTreeConfig) -> List[int]:
    """The nodes of the subtree under the root's first child.

    With fan-out 2 and a full tree this is about half the nodes,
    matching the paper's failure injection.
    """
    states = _live_states(cluster)
    root_children = states[config.root].get("children", [])
    if not root_children:
        return []
    head = root_children[0]
    members = []
    stack = [head]
    while stack:
        node_id = stack.pop()
        members.append(node_id)
        stack.extend(states.get(node_id, {}).get("children", []))
    return sorted(members)


def run_tree_experiment(
    variant: str,
    n: int = 31,
    seed: int = 0,
    topology: Optional[Topology] = None,
    config: Optional[RandTreeConfig] = None,
    join_spacing: float = 0.3,
    join_settle: float = 8.0,
    failure_settle: float = 6.0,
    rejoin_spacing: float = 0.3,
    rejoin_settle: float = 12.0,
    chain_depth: int = 6,
    budget: int = 250,
    checkpoint_period: float = 0.5,
    runtime_kwargs: Optional[dict] = None,
) -> TreeExperimentResult:
    """Run one full join / fail-subtree / rejoin scenario.

    Nodes join staggered by ``join_spacing`` seconds; once the tree
    settles the depth is measured (E2); the subtree under the root's
    first child is crash-stopped; after failure detection settles the
    failed nodes restart with fresh state, staggered, and the final
    depth is measured (E3).
    """
    cfg = config if config is not None else RandTreeConfig()
    cluster = _build_cluster(
        variant, n, seed, topology, cfg, chain_depth, budget, checkpoint_period,
        runtime_kwargs,
    )
    result = TreeExperimentResult(variant=variant, seed=seed, n=n)

    # Phase 1: staggered joins.
    cluster.node(cfg.root).start()
    others = [nid for nid in range(n) if nid != cfg.root]
    for index, node_id in enumerate(others):
        cluster.sim.schedule_at(
            (index + 1) * join_spacing,
            cluster.node(node_id).start,
            tag=f"exp.start:{node_id}",
        )
    join_measure_t = n * join_spacing + join_settle
    cluster.run(until=join_measure_t)
    states = _live_states(cluster)
    result.depth_after_join = max_tree_depth(states, cfg.root)
    result.joined_after_join = len(tree_depths(states, cfg.root))

    # Phase 2: fail the subtree under the root's first child.
    victims = failed_subtree(cluster, cfg)
    result.failed_nodes = victims
    for node_id in victims:
        cluster.node(node_id).crash()
    cluster.run(until=join_measure_t + failure_settle)

    # Phase 3: staggered rejoin with fresh state.
    rejoin_t = join_measure_t + failure_settle
    for index, node_id in enumerate(victims):
        cluster.sim.schedule_at(
            rejoin_t + index * rejoin_spacing,
            lambda nid=node_id: cluster.node(nid).restart(fresh_state=True),
            tag=f"exp.restart:{node_id}",
        )
    cluster.run(until=rejoin_t + len(victims) * rejoin_spacing + rejoin_settle)
    states = _live_states(cluster)
    result.depth_after_rejoin = max_tree_depth(states, cfg.root)
    result.joined_after_rejoin = len(tree_depths(states, cfg.root))
    result.metrics = collect_cluster_metrics(cluster)
    return result


__all__ = [
    "VARIANTS",
    "TreeExperimentResult",
    "run_tree_experiment",
    "failed_subtree",
    "optimal_depth",
]
