"""E6: causal tracing and violation forensics, end to end.

The demonstration the paper's debugging story needs: run the exposed-
choice Paxos workload with causal tracing on, let the CrystalBall
runtime predict a violation of a *canary* property and steer away from
it, then reconstruct — from the stamped trace alone — the minimal
causal explanation of every steering decision: the chain from the
resolved proposer choice, through the client request and the Accept it
produced, to the delivery the runtime refused.

Two named sessions:

* ``e6`` — clean network: pure steering forensics.
* ``a7`` — the A7 ``message-chaos`` plan armed on top (drops,
  duplicates, reordering): explanations must still resolve, and
  duplicated deliveries must be attributable to their original sends.

The canary property is deliberately artificial: replica ``n-1`` must
never accept a value.  Any proposal violates it within prediction
depth, which makes steering deterministic and the forensics chain
short enough to assert on — the point is the *explanation machinery*,
not Paxos itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..apps.paxos import PaxosConfig, make_paxos_factory
from ..chaos import ChaosController
from ..mc import SafetyProperty
from ..obs import (
    CausalExplanation,
    HappensBeforeGraph,
    explain_steering,
    explain_violation,
)
from ..runtime import install_crystalball
from ..statemachine import Cluster
from .chaos_experiment import standard_plans, trace_digest
from .paxos_experiment import wan_topology

TRACE_EXPERIMENTS = ("e6", "a7")


def canary_property(node: int) -> SafetyProperty:
    """Replica ``node`` must never accept a value (a tripwire).

    Worlds that do not include the canary node are vacuously safe —
    checkpoints may not have arrived yet.
    """
    def holds(world: Any) -> bool:
        if node not in world.node_states:
            return True
        return not world.state_of(node).get("accepted")
    return SafetyProperty(f"canary-quiet-acceptor-{node}", holds)


@dataclass
class TraceSession:
    """Everything one causal-forensics run produced."""

    experiment: str
    seed: int
    n: int
    plan_name: str
    canary: int
    filtered: int = 0
    canary_safe: bool = True
    events: int = 0
    duplicate_deliveries: int = 0
    retries: int = 0
    trace_digest: str = ""
    steering: List[CausalExplanation] = field(default_factory=list)
    violations: List[CausalExplanation] = field(default_factory=list)
    graph: Optional[HappensBeforeGraph] = None
    cluster: Optional[Any] = None
    prediction: Optional[dict] = None

    def best_explanation(self) -> Optional[CausalExplanation]:
        """The explanation a CLI/artifact should lead with: the first
        steering decision, else the first predicted violation."""
        if self.steering:
            return self.steering[0]
        if self.violations:
            return self.violations[0]
        return None

    def summary(self) -> str:
        return (
            f"{self.experiment}  seed={self.seed}  plan={self.plan_name:<16}"
            f"events={self.events}  steered={len(self.steering)}  "
            f"predicted={len(self.violations)}  dups={self.duplicate_deliveries}  "
            f"retries={self.retries}  "
            f"canary={'SAFE' if self.canary_safe else 'TRIPPED'}"
        )


def run_trace_session(
    experiment: str = "e6",
    seed: int = 1,
    n: int = 5,
    max_time: float = 8.0,
    requests_per_node: int = 2,
    request_interval: float = 1.5,
    checkpoint_period: float = 0.25,
    prediction_period: float = 0.6,
    chain_depth: int = 3,
    budget: int = 900,
    max_explained: int = 5,
    keep_cluster: bool = False,
) -> TraceSession:
    """Run one causal-forensics session and explain what was steered.

    The exposed-choice Paxos cluster runs with ``causal=True`` and a
    CrystalBall runtime per node guarding the canary property; ``a7``
    additionally arms the A7 ``message-chaos`` fault plan.  After the
    run, one final prediction on the canary node supplies predicted
    violations for :func:`~repro.obs.explain_violation`, and every
    ``runtime.steer.explain`` record becomes a steering explanation.
    """
    if experiment not in TRACE_EXPERIMENTS:
        raise ValueError(
            f"unknown trace experiment {experiment!r}; pick from {TRACE_EXPERIMENTS}"
        )
    canary = n - 1
    config = PaxosConfig(
        n=n, request_interval=request_interval,
        requests_per_node=requests_per_node,
    )
    factory = make_paxos_factory("choice", config)
    cluster = Cluster(
        n, factory, topology=wan_topology(n), seed=seed, causal=True,
    )
    runtimes = install_crystalball(
        cluster, factory,
        set_resolver=False,  # live choices use the plain first-candidate
        # resolver: deterministic, cheap, and still recorded as
        # choice.resolve events for forensics to root chains at.
        properties=[canary_property(canary)],
        checkpoint_period=checkpoint_period,
        prediction_period=prediction_period,
        chain_depth=chain_depth,
        budget=budget,
    )
    plan_name = "clean"
    if experiment == "a7":
        plan = standard_plans(n, max_time)[0]  # message-chaos
        ChaosController(cluster, plan).arm()
        plan_name = plan.name or "message-chaos"
    cluster.start_all()
    cluster.run(until=max_time)

    # One last prediction from the canary node's current world: its
    # violations feed the violation-forensics path (steering already
    # happened inline during the run).
    report = runtimes[canary].run_prediction()

    trace = cluster.sim.trace
    graph = HappensBeforeGraph.from_trace(trace)
    steering = explain_steering(trace, graph)[:max_explained]
    # Prefer violations whose predicted path involves messages: their
    # deliveries anchor to live sends, which gives the explanation a
    # non-empty causal prefix (timer-only paths are pure hypotheticals).
    predicted = [v for o in report.outcomes for v in o.violations]
    predicted.sort(
        key=lambda v: sum(
            1 for a in v.path if getattr(a, "msg", None) is not None
        ),
        reverse=True,
    )
    violations = [
        explain_violation(trace, violation, graph)
        for violation in predicted[:max_explained]
    ]

    session = TraceSession(
        experiment=experiment,
        seed=seed,
        n=n,
        plan_name=plan_name,
        canary=canary,
        filtered=sum(r.steering.filtered_count for r in runtimes),
        canary_safe=not cluster.services[canary].accepted,
        events=len(graph),
        duplicate_deliveries=sum(
            1 for e in graph.by_category("net.deliver") if e.dup
        ),
        retries=trace.count("net.retry"),
        trace_digest=trace_digest(trace),
        steering=steering,
        violations=violations,
        graph=graph,
        prediction=report.summary(),
    )
    if keep_cluster:
        session.cluster = cluster
    return session


__all__ = [
    "TRACE_EXPERIMENTS",
    "TraceSession",
    "canary_property",
    "run_trace_session",
]
