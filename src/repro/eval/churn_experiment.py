"""Continuous-churn robustness scenario for RandTree.

The paper claims the programming model yields "increased performance
and robustness to various deployment settings".  The E3 case study uses
one catastrophic failure; this scenario applies *continuous churn*:
random non-root nodes crash and later rejoin throughout the run, the
tree never settles, and we measure time-averaged tree quality instead
of a single end-state snapshot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..apps.randtree import RandTreeConfig, max_tree_depth, tree_depths
from ..obs import collect_cluster_metrics
from .tree_experiment import _build_cluster, _live_states


@dataclass
class ChurnResult:
    """Time-averaged tree quality under continuous churn."""

    variant: str
    seed: int
    n: int
    samples: int = 0
    mean_depth: float = 0.0
    max_depth: int = 0
    mean_attached_fraction: float = 0.0
    churn_events: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.variant:>20}  seed={self.seed}  mean depth={self.mean_depth:.2f}  "
            f"max={self.max_depth}  attached={self.mean_attached_fraction:.0%}  "
            f"events={self.churn_events}"
        )


def run_churn_experiment(
    variant: str,
    n: int = 21,
    seed: int = 0,
    config: Optional[RandTreeConfig] = None,
    warmup: float = 12.0,
    duration: float = 40.0,
    churn_period: float = 2.5,
    downtime: float = 4.0,
    sample_period: float = 1.0,
    chain_depth: int = 6,
    budget: int = 200,
    checkpoint_period: float = 0.5,
) -> ChurnResult:
    """Run one continuous-churn scenario.

    After a staggered warm-up join phase, every ``churn_period`` a
    random live non-root node crashes and restarts ``downtime`` seconds
    later with fresh state.  Tree depth and attached fraction are
    sampled every ``sample_period`` over the churn window.
    """
    cfg = config if config is not None else RandTreeConfig()
    cluster = _build_cluster(
        variant, n, seed, None, cfg, chain_depth, budget, checkpoint_period,
    )
    result = ChurnResult(variant=variant, seed=seed, n=n)
    churn_rng = random.Random(seed ^ 0xC0FFEE)

    cluster.node(cfg.root).start()
    for index, node_id in enumerate(nid for nid in range(n) if nid != cfg.root):
        cluster.sim.schedule_at(
            (index + 1) * 0.3, cluster.node(node_id).start, tag=f"churn.start:{node_id}",
        )
    cluster.run(until=warmup)

    # Schedule the churn process.
    t = warmup
    while t < warmup + duration - downtime:
        victim = churn_rng.randrange(1, n)
        cluster.sim.schedule_at(
            t, lambda v=victim: cluster.node(v).is_up and cluster.node(v).crash(),
            tag=f"churn.crash:{victim}",
        )
        cluster.sim.schedule_at(
            t + downtime,
            lambda v=victim: (not cluster.node(v).is_up) and cluster.node(v).restart(fresh_state=True),
            tag=f"churn.restart:{victim}",
        )
        result.churn_events += 1
        t += churn_period

    # Sample tree quality through the churn window.
    depth_sum = 0.0
    attached_sum = 0.0
    clock = warmup
    while clock < warmup + duration:
        cluster.run(until=clock + sample_period)
        clock += sample_period
        states = _live_states(cluster)
        live = len(states)
        depth = max_tree_depth(states, cfg.root)
        # Optimistic edges may reach crashed children that still appear
        # in a parent's list; only live nodes count as attached.
        attached = len(set(tree_depths(states, cfg.root)) & set(states))
        result.samples += 1
        depth_sum += depth
        result.max_depth = max(result.max_depth, depth)
        attached_sum += attached / max(1, live)
    result.mean_depth = depth_sum / result.samples
    result.mean_attached_fraction = attached_sum / result.samples
    result.metrics = collect_cluster_metrics(cluster)
    return result


__all__ = ["ChurnResult", "run_churn_experiment"]
