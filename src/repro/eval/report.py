"""Results-report generation.

Regenerates the quantitative content of EXPERIMENTS.md as a Markdown
document by actually running the experiments.  Two scopes:

* ``quick`` — small configurations (minutes): sanity-checks every
  experiment's *shape* on reduced sizes/seed counts;
* ``full`` — the exact configurations the benchmarks use (tens of
  minutes): reproduces the recorded numbers.

Used by ``examples/generate_report.py`` and tested in quick scope.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class ReportSection:
    """One experiment's rendered result."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Tuple]
    note: str = ""

    def to_markdown(self) -> str:
        lines = [f"## {self.experiment} — {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        if self.note:
            lines.append("")
            lines.append(self.note)
        lines.append("")
        return "\n".join(lines)


def e1_section() -> ReportSection:
    from ..metrics import compare_randtree

    report = compare_randtree()
    return ReportSection(
        experiment="E1",
        title="development effort (LoC, if-else per handler)",
        headers=("metric", "baseline", "exposed"),
        rows=[
            ("lines of code", report.baseline.loc, report.exposed.loc),
            ("if-else per handler",
             f"{report.baseline.branches_per_handler:.2f}",
             f"{report.exposed.branches_per_handler:.2f}"),
            ("LoC reduction", "", f"{report.loc_reduction:.0%}"),
        ],
        note="Paper: 487 → 280 LoC (−43%); complexity 1.94 → 0.28.",
    )


def tree_sections(n: int, seeds: Sequence[int]) -> List[ReportSection]:
    from .tree_experiment import run_tree_experiment

    variants = ("baseline", "choice-random", "choice-crystalball")
    join_rows = []
    rejoin_rows = []
    for variant in variants:
        joins, rejoins = [], []
        for seed in seeds:
            result = run_tree_experiment(variant, n=n, seed=seed)
            joins.append(result.depth_after_join)
            rejoins.append(result.depth_after_rejoin)
        join_rows.append((variant, f"{statistics.mean(joins):.2f}", joins))
        rejoin_rows.append((variant, f"{statistics.mean(rejoins):.2f}", rejoins))
    return [
        ReportSection("E2", f"tree depth after {n} joins",
                      ("variant", "mean depth", "per-seed"), join_rows,
                      note="Paper (31 nodes): 6 in all setups, optimal 5."),
        ReportSection("E3", "tree depth after subtree failure + rejoin",
                      ("variant", "mean depth", "per-seed"), rejoin_rows,
                      note="Paper: Baseline 10, Choice-Random 10, Choice-CrystalBall 9."),
    ]


def gossip_section(n: int, seeds: Sequence[int], rumor_count: int) -> ReportSection:
    from .gossip_experiment import GOSSIP_VARIANTS, run_gossip_experiment

    rows = []
    for variant in GOSSIP_VARIANTS:
        latencies = [
            run_gossip_experiment(variant, n=n, seed=seed, rumor_count=rumor_count)
            .mean_latency
            for seed in seeds
        ]
        rows.append((variant, f"{statistics.mean(latencies) * 1000:.0f} ms"))
    return ReportSection(
        "E4", "streaming gossip mean delivery latency",
        ("variant", "mean latency"), rows,
        note="Shape: restricted (BAR) pays a penalty vs free/model-resolved choice.",
    )


def paxos_section(seeds: Sequence[int], requests: int) -> ReportSection:
    from .paxos_experiment import PAXOS_VARIANTS, run_paxos_experiment

    rows = []
    for variant in PAXOS_VARIANTS:
        means = [
            run_paxos_experiment(variant, seed=seed, requests_per_node=requests)
            .mean_latency
            for seed in seeds
        ]
        rows.append((variant, f"{statistics.mean(means) * 1000:.0f} ms"))
    return ReportSection(
        "E6", "Paxos commit latency by proposer policy",
        ("variant", "mean latency"), rows,
        note="Shape: fixed ≫ mencius ≥ choice.",
    )


def swarm_section(seeds: Sequence[int], n: int, blocks: int) -> ReportSection:
    from .dissemination_experiment import run_swarm_experiment

    rows = []
    for setting in ("scarce", "abundant"):
        for variant in ("baseline-random", "baseline-rarest", "choice-adaptive"):
            means = [
                run_swarm_experiment(variant, setting=setting, seed=seed,
                                     n=n, block_count=blocks).mean_completion
                for seed in seeds
            ]
            rows.append((setting, variant, f"{statistics.mean(means):.1f} s"))
    return ReportSection(
        "E5", "swarm mean completion by next-block policy",
        ("setting", "variant", "mean completion"), rows,
        note="Shape: rarest wins when scarce; random ties when abundant; adaptive tracks.",
    )


def generate_report(scope: str = "quick") -> str:
    """Build the full Markdown report for the given scope."""
    if scope == "quick":
        tree_kwargs = dict(n=15, seeds=(1, 2))
        gossip_kwargs = dict(n=12, seeds=(1,), rumor_count=6)
        paxos_kwargs = dict(seeds=(1,), requests=5)
        swarm_kwargs = dict(seeds=(1,), n=9, blocks=24)
    elif scope == "full":
        tree_kwargs = dict(n=31, seeds=(1, 2, 3, 4, 5))
        gossip_kwargs = dict(n=32, seeds=(1, 2, 3, 4), rumor_count=10)
        paxos_kwargs = dict(seeds=(1, 2), requests=10)
        swarm_kwargs = dict(seeds=(1, 2, 3), n=17, blocks=96)
    else:
        raise ValueError(f"scope must be 'quick' or 'full', got {scope!r}")

    sections = [e1_section()]
    sections.extend(tree_sections(**tree_kwargs))
    sections.append(gossip_section(**gossip_kwargs))
    sections.append(swarm_section(**swarm_kwargs))
    sections.append(paxos_section(**paxos_kwargs))

    header = (
        "# Reproduction results\n\n"
        f"Scope: **{scope}**.  Generated by `repro.eval.report`; every\n"
        "number reproduces exactly for a given scope (fixed seeds,\n"
        "deterministic simulation).  Paper-vs-measured commentary lives\n"
        "in EXPERIMENTS.md.\n\n"
    )
    return header + "\n".join(section.to_markdown() for section in sections)


__all__ = ["ReportSection", "generate_report"]
