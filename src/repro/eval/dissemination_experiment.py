"""E5: next-block strategy across deployment settings.

Reproduces the BulletPrime observation the paper cites: "neither of
these strategies is decidedly superior" — random vs rarest-random
crosses over between scarce deployments (one seed: piece diversity is
everything, rarest wins) and abundant ones (many seeds: rarity
information is noise, random spreads load as well or better).  The
exposed-choice swarm with the adaptive resolver should track the better
policy in *both* settings without the application changing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..apps.dissemination import (
    AdaptiveBlockResolver,
    DisseminationConfig,
    RarestBlockResolver,
    all_complete,
    completion_times,
    make_baseline_swarm_factory,
    make_exposed_swarm_factory,
    make_views,
)
from ..choice.resolvers import RandomResolver
from ..net import Link, Topology
from ..obs import collect_cluster_metrics
from ..statemachine import Cluster

SWARM_VARIANTS = (
    "baseline-random",
    "baseline-rarest",
    "choice-random",
    "choice-rarest",
    "choice-adaptive",
)

SETTINGS = ("scarce", "abundant")


@dataclass
class SwarmResult:
    """Outcome of one swarm download run."""

    variant: str
    setting: str
    seed: int
    n: int
    mean_completion: Optional[float]
    last_completion: Optional[float]
    finished: int
    leechers: int
    metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        mean = f"{self.mean_completion:.1f}s" if self.mean_completion is not None else "n/a"
        last = f"{self.last_completion:.1f}s" if self.last_completion is not None else "DNF"
        return (
            f"{self.variant:>16} [{self.setting:>8}] seed={self.seed}  "
            f"mean={mean} last={last}  done={self.finished}/{self.leechers}"
        )


def swarm_topology(n: int, seed: int) -> Topology:
    """Flat low-latency swarm; bandwidth is governed by node uplinks."""
    rng = random.Random(seed)
    topo = Topology(n)
    for i in range(n):
        for j in range(i + 1, n):
            topo.set_symmetric(
                i, j, Link(latency=rng.uniform(0.01, 0.05), bandwidth=1e9),
            )
    return topo


def setting_config(setting: str, n: int, block_count: int) -> DisseminationConfig:
    """Deployment settings: scarce (1 seed) vs abundant (many seeds)."""
    if setting == "scarce":
        seeds: Tuple[int, ...] = (0,)
    elif setting == "abundant":
        seeds = tuple(range(max(2, n // 4)))
    else:
        raise ValueError(f"unknown setting {setting!r}; expected one of {SETTINGS}")
    return DisseminationConfig(n=n, block_count=block_count, seeds=seeds)


def run_swarm_experiment(
    variant: str,
    setting: str = "scarce",
    n: int = 17,
    seed: int = 0,
    block_count: int = 96,
    seed_uplink: float = 4e6,
    leecher_uplink: float = 4e6,
    max_time: float = 300.0,
    poll_interval: float = 0.5,
) -> SwarmResult:
    """Run one swarm download and report completion statistics."""
    config = setting_config(setting, n, block_count)
    views = make_views(n, config.view_size, seed)
    topology = swarm_topology(n, seed)

    if variant == "baseline-random":
        factory = make_baseline_swarm_factory(config, views, "random")
        cluster = Cluster(n, factory, topology=topology, seed=seed)
    elif variant == "baseline-rarest":
        factory = make_baseline_swarm_factory(config, views, "rarest")
        cluster = Cluster(n, factory, topology=topology, seed=seed)
    elif variant == "choice-random":
        factory = make_exposed_swarm_factory(config, views)
        cluster = Cluster(n, factory, topology=topology, seed=seed,
                          resolver_factory=lambda nid: RandomResolver(seed))
    elif variant == "choice-rarest":
        factory = make_exposed_swarm_factory(config, views)
        cluster = Cluster(n, factory, topology=topology, seed=seed,
                          resolver_factory=lambda nid: RarestBlockResolver())
    elif variant == "choice-adaptive":
        factory = make_exposed_swarm_factory(config, views)
        cluster = Cluster(n, factory, topology=topology, seed=seed,
                          resolver_factory=lambda nid: AdaptiveBlockResolver())
    else:
        raise ValueError(f"unknown variant {variant!r}; expected one of {SWARM_VARIANTS}")

    for node_id in range(n):
        uplink = seed_uplink if node_id in config.seeds else leecher_uplink
        cluster.network.set_uplink(node_id, uplink)

    cluster.start_all()
    while cluster.sim.now < max_time:
        cluster.run(until=min(max_time, cluster.sim.now + poll_interval))
        if all_complete(cluster.services):
            break

    times = completion_times(cluster.services)
    leechers = n - len(config.seeds)
    return SwarmResult(
        variant=variant,
        setting=setting,
        seed=seed,
        n=n,
        mean_completion=sum(times) / len(times) if times else None,
        last_completion=times[-1] if len(times) == leechers else None,
        finished=len(times),
        leechers=leechers,
        metrics=collect_cluster_metrics(cluster),
    )


__all__ = ["SWARM_VARIANTS", "SETTINGS", "SwarmResult", "swarm_topology",
           "setting_config", "run_swarm_experiment"]
