"""A7: safety under chaos.

The chaos engine (``repro.chaos``) makes the adversary explicit:
randomized but fully deterministic :class:`FaultPlan` schedules of
drops, duplicates, reordering, corruption, flapping links, partitions,
and crash-recovery with amnesia.  This harness sweeps those plans
against the two protocols the paper studies and checks what must
*never* break:

* RandTree — the overlay stays structurally sane throughout the run:
  no self-loops, no duplicate child entries, bounded degree, and no
  cycle among *consistent* parent/child edges (transient one-sided
  beliefs are allowed; a mutually-agreed cycle is not).
* Paxos — at most one value is chosen per instance, across every
  replica ("single decree").

Each run also produces a trace digest: a SHA-256 over the canonical
rendering of the full trace log.  Two runs of the same
``(configuration, seed)`` must produce byte-identical digests — the
determinism contract that makes a chaos failure replayable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..apps.randtree import (
    RandTreeConfig,
    consistent_edges,
    max_tree_depth,
    tree_depths,
)
from ..chaos import (
    ChaosController,
    ClockSkewEvent,
    CrashEvent,
    FaultPlan,
    FlapEvent,
    LinkFaultEvent,
    PartitionEvent,
    ReliabilityConfig,
    SlowNodeEvent,
    random_fault_plan,
    reliable_transport,
)
from ..obs import collect_cluster_metrics
from ..sim.trace import TraceLog, _jsonable
from ..statemachine import Cluster
from .paxos_experiment import agreement_holds, wan_topology
from .tree_experiment import VARIANTS, _build_cluster, _live_states

CHAOS_TREE_VARIANTS = VARIANTS


# ----------------------------------------------------------------------
# Trace digests (the determinism contract)
# ----------------------------------------------------------------------


def trace_digest(trace: TraceLog) -> str:
    """SHA-256 over the canonical rendering of every trace record.

    Identical ``(configuration, seed)`` runs must produce identical
    digests; any nondeterminism anywhere in the stack (an unnamed RNG,
    wall-clock leakage, unordered iteration) shows up as a digest
    mismatch long before it shows up as a flaky experiment.
    """
    h = hashlib.sha256()
    for rec in trace:
        row = {"t": rec.time, "c": rec.category, "n": rec.node,
               "d": _jsonable(rec.data)}
        h.update(json.dumps(row, sort_keys=True).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


# ----------------------------------------------------------------------
# RandTree structural invariants
# ----------------------------------------------------------------------


def check_randtree_invariants(
    states: Dict[int, Dict[str, Any]],
    config: RandTreeConfig,
) -> List[str]:
    """Violations of RandTree's structural safety in ``states``.

    ``states`` maps node id to a checkpoint dict (live nodes only —
    crashed nodes hold no authoritative beliefs).  The properties are
    exactly the ones the protocol's guards enforce, so they must hold
    at *every* instant of *any* chaos schedule:

    * no node is its own parent or child;
    * no node lists the same child twice;
    * no node exceeds ``config.max_children``;
    * the consistent-edge graph (parent lists child AND child agrees)
      is acyclic.  One-sided stale beliefs are legitimate transients —
      a swept child still pointing at its old parent — but a cycle of
      mutually-agreed edges would be an unrecoverable safety bug.
    """
    violations: List[str] = []
    for node_id, state in states.items():
        children = state.get("children", [])
        if state.get("parent") == node_id:
            violations.append(f"node {node_id} is its own parent")
        if node_id in children:
            violations.append(f"node {node_id} is its own child")
        if len(set(children)) != len(children):
            violations.append(f"node {node_id} lists a child twice: {children}")
        if len(children) > config.max_children:
            violations.append(
                f"node {node_id} exceeds degree bound: "
                f"{len(children)} > {config.max_children}"
            )
    adjacency = consistent_edges(states, config.root)
    # Iterative three-colour DFS over the consistent-edge graph.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {nid: WHITE for nid in adjacency}
    for start in sorted(adjacency):
        if colour[start] != WHITE:
            continue
        stack: List[tuple] = [(start, iter(adjacency[start]))]
        colour[start] = GREY
        while stack:
            node_id, children_iter = stack[-1]
            advanced = False
            for child in children_iter:
                if colour.get(child, BLACK) == GREY:
                    violations.append(
                        f"cycle through consistent edge {node_id}->{child}"
                    )
                elif colour.get(child) == WHITE:
                    colour[child] = GREY
                    stack.append((child, iter(adjacency[child])))
                    advanced = True
                    break
            if not advanced:
                colour[node_id] = BLACK
                stack.pop()
    return violations


# ----------------------------------------------------------------------
# Standard plans (the named sweep)
# ----------------------------------------------------------------------


def standard_plans(
    n: int,
    horizon: float,
    amnesia: bool = True,
    protect: tuple = (0,),
) -> List[FaultPlan]:
    """The three named plans every chaos sweep exercises.

    * ``message-chaos`` — sustained drop/duplicate/reorder/corrupt on
      every link, no topology events;
    * ``flap-partition`` — a flapping link plus a partition that heals;
    * ``crash-recovery`` — two crashes (one with amnesia when allowed)
      with staggered recovery, a slow node, and clock skew.

    ``protect`` nodes are never crashed and stay on the majority side
    of partitions.  All plans finish (heal/recover) by ``0.7 *
    horizon`` so runs can assert on converged end states.
    """
    mid = horizon / 2.0
    victims = [v for v in range(n) if v not in protect]
    side_b = victims[-max(1, n // 3):]
    side_a = [v for v in range(n) if v not in side_b]
    plans = [
        FaultPlan(name="message-chaos", events=[
            LinkFaultEvent(at=0.0, drop=0.08, duplicate=0.05, reorder=0.15,
                           reorder_jitter=0.25, corrupt=0.02),
        ]),
        FaultPlan(name="flap-partition", events=[
            FlapEvent(at=0.0, a=victims[0], b=victims[1] if len(victims) > 1
                      else protect[0], period=1.5, duty=0.4, until=0.6 * horizon),
            PartitionEvent(at=0.25 * horizon,
                           groups=(tuple(side_a), tuple(side_b)),
                           heal_at=0.55 * horizon),
            LinkFaultEvent(at=0.0, drop=0.03, reorder=0.05, reorder_jitter=0.1),
        ]),
        FaultPlan(name="crash-recovery", events=[
            CrashEvent(at=0.2 * horizon, node=victims[-1], amnesia=amnesia,
                       recover_at=0.45 * horizon),
            CrashEvent(at=0.3 * horizon, node=victims[len(victims) // 2],
                       amnesia=False, recover_at=0.6 * horizon),
            SlowNodeEvent(at=0.1 * horizon, node=victims[0], delay=0.05,
                          until=mid),
            ClockSkewEvent(at=0.0, node=victims[0], offset=0.3),
            LinkFaultEvent(at=0.0, drop=0.04, duplicate=0.03,
                           reorder=0.08, reorder_jitter=0.15),
        ]),
    ]
    return plans


# ----------------------------------------------------------------------
# RandTree under chaos
# ----------------------------------------------------------------------


@dataclass
class ChaosTreeResult:
    """One RandTree run under one fault plan."""

    variant: str
    seed: int
    n: int
    plan_name: str
    reliable: bool
    final_depth: int = 0
    joined: int = 0
    probes: int = 0
    violations: List[str] = field(default_factory=list)
    trace_digest: str = ""
    chaos_stats: Dict[str, int] = field(default_factory=dict)
    reliable_stats: Optional[Dict[str, int]] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def safe(self) -> bool:
        """No structural invariant was ever violated."""
        return not self.violations

    def summary(self) -> str:
        rel = " +reliable" if self.reliable else ""
        status = "SAFE" if self.safe else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.variant:>20}{rel}  seed={self.seed}  plan={self.plan_name:<16}"
            f"depth={self.final_depth}  joined={self.joined}/{self.n}  "
            f"probes={self.probes}  {status}"
        )


def run_chaos_tree_experiment(
    variant: str,
    seed: int = 0,
    n: int = 15,
    plan: Optional[FaultPlan] = None,
    reliability: Optional[ReliabilityConfig] = None,
    config: Optional[RandTreeConfig] = None,
    join_spacing: float = 0.2,
    settle: float = 8.0,
    probe_period: float = 0.5,
    checkpoint_period: float = 1.0,
    chain_depth: int = 6,
    budget: int = 250,
) -> ChaosTreeResult:
    """Join a RandTree while a fault plan runs against it.

    Nodes join staggered by ``join_spacing``; the plan (default: a
    randomized plan drawn from the run's seed) is armed from t=0; a
    probe checks the structural invariants every ``probe_period``
    simulated seconds; the run lasts until every plan event has healed
    plus ``settle``.  Pass a :class:`ReliabilityConfig` to wrap the
    transport in the at-least-once layer.
    """
    cfg = config if config is not None else RandTreeConfig()
    join_time = n * join_spacing
    if plan is None:
        # Named-stream derivation (chaos.plan), so plan draws stay
        # stable no matter what other consumers the run adds.
        plan = random_fault_plan(
            seed, n, duration=join_time + settle,
            protect=(cfg.root,),
        )
    wrapper = reliable_transport(reliability) if reliability is not None else None
    cluster = _build_cluster(
        variant, n, seed, None, cfg, chain_depth, budget,
        checkpoint_period=0.5, transport_wrapper=wrapper,
    )
    controller = ChaosController(cluster, plan, checkpoint_period=checkpoint_period)
    controller.arm()

    result = ChaosTreeResult(
        variant=variant, seed=seed, n=n, plan_name=plan.name or "custom",
        reliable=reliability is not None,
    )
    horizon = max(plan.horizon, join_time) + settle

    def probe() -> None:
        states = _live_states(cluster)
        result.probes += 1
        for violation in check_randtree_invariants(states, cfg):
            result.violations.append(f"t={cluster.sim.now:g}: {violation}")
        if cluster.sim.now + probe_period <= horizon:
            cluster.sim.schedule(probe_period, probe, tag="chaos.probe")

    cluster.node(cfg.root).start()
    others = [nid for nid in range(n) if nid != cfg.root]
    for index, node_id in enumerate(others):
        cluster.sim.schedule_at(
            (index + 1) * join_spacing,
            cluster.node(node_id).start,
            tag=f"chaos.start:{node_id}",
        )
    cluster.sim.schedule(probe_period, probe, tag="chaos.probe")
    cluster.run(until=horizon)

    states = _live_states(cluster)
    result.final_depth = max_tree_depth(states, cfg.root)
    result.joined = len(tree_depths(states, cfg.root))
    for violation in check_randtree_invariants(states, cfg):
        result.violations.append(f"t=end: {violation}")
    result.trace_digest = trace_digest(cluster.sim.trace)
    result.chaos_stats = controller.stats()
    if reliability is not None:
        result.reliable_stats = dict(cluster.transport.stats)
    result.metrics = collect_cluster_metrics(cluster)
    return result


# ----------------------------------------------------------------------
# Paxos under chaos
# ----------------------------------------------------------------------


@dataclass
class ChaosPaxosResult:
    """One Paxos run under one fault plan."""

    variant: str
    seed: int
    plan_name: str
    committed: int = 0
    expected: int = 0
    agreement: bool = True
    trace_digest: str = ""
    chaos_stats: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def safe(self) -> bool:
        """Single-decree agreement held across all replicas."""
        return self.agreement

    def summary(self) -> str:
        status = "SAFE" if self.safe else "AGREEMENT VIOLATED"
        return (
            f"{self.variant:>8}  seed={self.seed}  plan={self.plan_name:<16}"
            f"committed={self.committed}/{self.expected}  {status}"
        )


def run_chaos_paxos_experiment(
    variant: str = "mencius",
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    n: int = 5,
    requests_per_node: int = 6,
    request_interval: float = 0.5,
    max_time: float = 30.0,
) -> ChaosPaxosResult:
    """Run the WAN Paxos workload with a fault plan armed against it.

    Amnesia is never injected here: Paxos safety *assumes* acceptors
    persist promises, so crashes recover from stable storage (the
    controller's no-checkpoint degradation).  What chaos attacks is
    everything else — message loss, duplication, reordering,
    partitions, flapping links — and single-decree agreement must
    survive all of it.
    """
    if plan is None:
        plan = random_fault_plan(
            seed, n, duration=0.7 * max_time,
            amnesia_prob=0.0, crashes=1, name="random-paxos",
        )
    for event in plan.events:
        if isinstance(event, CrashEvent) and event.amnesia:
            raise ValueError(
                "amnesia crashes forfeit Paxos safety assumptions; "
                f"use amnesia=False in {plan.name!r}"
            )

    # Rebuild the reference experiment inline so the chaos controller
    # can be armed before the workload starts.
    from ..apps.paxos import PaxosConfig, make_paxos_factory

    config = PaxosConfig(
        n=n, request_interval=request_interval,
        requests_per_node=requests_per_node,
    )
    factory = make_paxos_factory(variant, config)
    cluster = Cluster(n, factory, topology=wan_topology(n), seed=seed)
    controller = ChaosController(cluster, plan)
    controller.arm()
    cluster.start_all()
    cluster.run(until=max_time)

    committed = sum(len(s.commit_latencies()) for s in cluster.services)
    return ChaosPaxosResult(
        variant=variant,
        seed=seed,
        plan_name=plan.name or "custom",
        committed=committed,
        expected=n * requests_per_node,
        agreement=agreement_holds(cluster),
        trace_digest=trace_digest(cluster.sim.trace),
        chaos_stats=controller.stats(),
        metrics=collect_cluster_metrics(cluster),
    )


# ----------------------------------------------------------------------
# Reliability recovers the loss-free outcome
# ----------------------------------------------------------------------


@dataclass
class ReliableJoinComparison:
    """E2 join outcome: loss-free vs lossy vs lossy-with-reliability."""

    seed: int
    n: int
    loss: float
    depth_loss_free: int = 0
    joined_loss_free: int = 0
    depth_reliable: int = 0
    joined_reliable: int = 0
    reliable_stats: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        """The reliable run matches the loss-free outcome."""
        return (
            self.depth_reliable == self.depth_loss_free
            and self.joined_reliable == self.joined_loss_free
        )

    def summary(self) -> str:
        status = "RECOVERED" if self.recovered else "DEGRADED"
        return (
            f"seed={self.seed}  loss={self.loss:.0%}  "
            f"loss-free: depth={self.depth_loss_free} joined={self.joined_loss_free}/{self.n}  "
            f"reliable: depth={self.depth_reliable} joined={self.joined_reliable}/{self.n}  "
            f"{status}"
        )


def run_reliable_join_comparison(
    seed: int = 0,
    n: int = 15,
    loss: float = 0.10,
    variant: str = "baseline",
    reliability: Optional[ReliabilityConfig] = None,
    join_spacing: float = 0.2,
    settle: float = 10.0,
) -> ReliableJoinComparison:
    """E2 join with and without chaos loss, reliability layer on.

    The claim under test: at-least-once delivery masks adversarial
    message loss — with ``loss`` injected on every link and the
    reliability layer enabled, the tree converges to the same final
    depth and membership as the loss-free run of the identical
    configuration and seed.
    """
    cfg = ReliabilityConfig(timeout=0.15, backoff=1.6, max_retries=8) \
        if reliability is None else reliability
    clean = run_chaos_tree_experiment(
        variant, seed=seed, n=n, plan=FaultPlan(name="loss-free"),
        join_spacing=join_spacing, settle=settle,
    )
    lossy_plan = FaultPlan(name=f"loss-{loss:.0%}", events=[
        LinkFaultEvent(at=0.0, drop=loss),
    ])
    masked = run_chaos_tree_experiment(
        variant, seed=seed, n=n, plan=lossy_plan, reliability=cfg,
        join_spacing=join_spacing, settle=settle,
    )
    return ReliableJoinComparison(
        seed=seed, n=n, loss=loss,
        depth_loss_free=clean.final_depth, joined_loss_free=clean.joined,
        depth_reliable=masked.final_depth, joined_reliable=masked.joined,
        reliable_stats=masked.reliable_stats or {},
        metrics=masked.metrics,
    )


__all__ = [
    "CHAOS_TREE_VARIANTS",
    "ChaosPaxosResult",
    "ChaosTreeResult",
    "ReliableJoinComparison",
    "check_randtree_invariants",
    "run_chaos_paxos_experiment",
    "run_chaos_tree_experiment",
    "run_reliable_join_comparison",
    "standard_plans",
    "trace_digest",
]
