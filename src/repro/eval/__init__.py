"""Experiment harness: one runner per experiment in DESIGN.md's index."""

from .chaos_experiment import (
    CHAOS_TREE_VARIANTS,
    ChaosPaxosResult,
    ChaosTreeResult,
    ReliableJoinComparison,
    check_randtree_invariants,
    run_chaos_paxos_experiment,
    run_chaos_tree_experiment,
    run_reliable_join_comparison,
    standard_plans,
    trace_digest,
)
from .churn_experiment import ChurnResult, run_churn_experiment

from .dissemination_experiment import (
    SETTINGS,
    SWARM_VARIANTS,
    SwarmResult,
    run_swarm_experiment,
    setting_config,
    swarm_topology,
)
from .gossip_experiment import (
    GOSSIP_VARIANTS,
    GossipResult,
    heterogeneous_topology,
    run_gossip_experiment,
)
from .paxos_experiment import (
    DEFAULT_LOADS,
    PAXOS_VARIANTS,
    PaxosResult,
    ThroughputResult,
    agreement_holds,
    at_most_once_holds,
    run_paxos_experiment,
    run_throughput_experiment,
    wan_topology,
)
from .trace_experiment import (
    TRACE_EXPERIMENTS,
    TraceSession,
    canary_property,
    run_trace_session,
)
from .tree_experiment import (
    TreeExperimentResult,
    VARIANTS,
    failed_subtree,
    optimal_depth,
    run_tree_experiment,
)

__all__ = [
    "CHAOS_TREE_VARIANTS",
    "ChaosPaxosResult",
    "ChaosTreeResult",
    "ReliableJoinComparison",
    "check_randtree_invariants",
    "run_chaos_paxos_experiment",
    "run_chaos_tree_experiment",
    "run_reliable_join_comparison",
    "standard_plans",
    "trace_digest",
    "ChurnResult",
    "run_churn_experiment",
    "SETTINGS",
    "SWARM_VARIANTS",
    "SwarmResult",
    "run_swarm_experiment",
    "setting_config",
    "swarm_topology",
    "GOSSIP_VARIANTS",
    "GossipResult",
    "heterogeneous_topology",
    "run_gossip_experiment",
    "DEFAULT_LOADS",
    "PAXOS_VARIANTS",
    "PaxosResult",
    "ThroughputResult",
    "agreement_holds",
    "at_most_once_holds",
    "run_paxos_experiment",
    "run_throughput_experiment",
    "wan_topology",
    "TRACE_EXPERIMENTS",
    "TraceSession",
    "canary_property",
    "run_trace_session",
    "TreeExperimentResult",
    "VARIANTS",
    "failed_subtree",
    "optimal_depth",
    "run_tree_experiment",
]
