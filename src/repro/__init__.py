"""Reproduction of "Simplifying Distributed System Development" (HotOS 2009).

A choice-exposing programming model for distributed systems with a
predictive CrystalBall runtime, plus every substrate it runs on:

- ``repro.sim`` — deterministic discrete-event simulation
- ``repro.net`` — network emulation (latency/bandwidth/loss, topologies)
- ``repro.statemachine`` — Mace-like state-machine service framework
- ``repro.choice`` — exposed choices, resolvers, and objectives
- ``repro.model`` — predictive network and state models
- ``repro.mc`` — explicit-state model checking / consequence prediction
- ``repro.runtime`` — the CrystalBall runtime (steering, prediction)
- ``repro.apps`` — RandTree, gossip, content distribution, Paxos
- ``repro.metrics`` — code metrics for the Section 4 comparison
- ``repro.eval`` — experiment harness

See README.md and DESIGN.md for the architecture and experiment index.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
