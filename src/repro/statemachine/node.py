"""Node host: binds a service to the simulator and network.

Figure 1 of the paper shows the CrystalBall runtime *interposing*
between the network and the state machine.  :class:`Node` implements
that interposition point: inbound and outbound interposers (the
CrystalBall runtime registers itself as one) can observe, filter, or
piggyback on every message, and the node owns live timers and the
choice resolver in use.

:class:`Cluster` is a convenience that wires ``n`` nodes over a
topology for experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..choice.choicepoint import ChoicePoint
from ..net import Network, Topology, full_mesh
from ..sim import LivenessRegistry, Simulator
from .context import LiveContext
from .service import Service


class InboundInterposer:
    """Observer/filter for messages arriving at a node.

    ``on_inbound`` returns ``False`` to suppress delivery to the
    service (used by execution steering's event filters).
    ``after_dispatch`` fires after every completed dispatch (message or
    timer), letting a runtime react to local state changes — e.g.
    broadcasting a fresh checkpoint the moment the state moved.
    """

    def on_inbound(self, node: "Node", src: int, msg: Any) -> bool:
        return True

    def after_dispatch(self, node: "Node") -> None:
        return None


class OutboundInterposer:
    """Observer/filter for messages a node is about to send."""

    def on_outbound(self, node: "Node", dst: int, msg: Any) -> bool:
        return True


@dataclass
class DispatchRecord:
    """The dispatch currently executing on a node.

    Captured (when ``Node.capture_dispatch`` is set) so a predictive
    resolver can *replay* the running handler in a sandbox from the
    pre-dispatch checkpoint, substituting each candidate at the pending
    choice point.  ``choices`` holds the values of choices already
    resolved earlier in this same dispatch, in order.
    """

    kind: str  # "deliver" or "timer"
    src: Optional[int]
    msg: Any
    timer_name: Optional[str]
    payload: Any
    checkpoint: Dict[str, Any]
    choices: List[Any] = field(default_factory=list)


class _FirstCandidateResolver:
    """Default resolver: deterministically pick the first candidate."""

    name = "first"

    def resolve(self, point: ChoicePoint, node: Optional[object] = None) -> Any:
        return point.candidates[0]


class Node:
    """Hosts one service instance on the simulated network."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        service: Service,
        choice_resolver: Optional[object] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.service = service
        self.choice_resolver = choice_resolver or _FirstCandidateResolver()
        self.inbound_interposers: List[InboundInterposer] = []
        self.outbound_interposers: List[OutboundInterposer] = []
        self._timers: Dict[str, int] = {}
        self._timer_payloads: Dict[str, Any] = {}
        self._timer_deadlines: Dict[str, float] = {}
        # Causal parent per armed timer: the event executing when the
        # timer was (re)armed, so a fire chains back to its cause.
        # Only populated when causal tracing is enabled.
        self._timer_causes: Dict[str, int] = {}
        self._timer_token = 0
        self.started = False
        # Chaos clock-skew injection: added to the service-visible clock
        # (ctx.now) only; simulator mechanics are unaffected.
        self.clock_skew = 0.0
        # Predictive resolvers set capture_dispatch so the node snapshots
        # its state before every dispatch (see DispatchRecord).
        self.capture_dispatch = False
        self.current_dispatch: Optional[DispatchRecord] = None
        # What is dispatching right now, captured or not: ("deliver",
        # message type) or ("timer", name).  With capture_kinds set (by
        # the amortized steering scheduler), armed capture checkpoints
        # only dispatches of those kinds — at high event rates snapshots
        # of every delivery would dwarf the choices they serve.
        self.current_dispatch_kind: Optional[tuple] = None
        self.capture_kinds: Optional[set] = None
        # The CrystalBall runtime attaches itself here when installed.
        self.crystalball: Optional[object] = None
        service.ctx = LiveContext(self)
        # Captured at construction so a restart can reset to pristine state.
        self._initial_checkpoint = service.checkpoint()
        network.attach(node_id, self._on_message, self._on_broken)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """Whether this node is currently live."""
        return self.network.liveness.is_up(self.node_id)

    def start(self) -> None:
        """Run the service's ``on_init`` (idempotent)."""
        if self.started:
            return
        self.started = True
        tracer = self.sim.causal
        if tracer is None:
            self.sim.trace.record(self.sim.now, "node.start", node=self.node_id)
            self.service.on_init()
            return
        event = tracer.local_event(self.node_id, "start", root=True)
        self.sim.trace.record(self.sim.now, "node.start", node=self.node_id)
        with tracer.executing(event):
            self.service.on_init()

    def crash(self) -> None:
        """Crash-stop this node: mark down and silence all timers."""
        self.network.liveness.fail(self.node_id)
        self._timers.clear()
        self._timer_payloads.clear()
        self._timer_deadlines.clear()
        self._timer_causes.clear()
        self.started = False
        self.sim.trace.record(self.sim.now, "node.crash", node=self.node_id)

    def restart(
        self,
        fresh_state: bool = True,
        checkpoint: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Recover a crashed node and re-run ``on_init``.

        With ``fresh_state`` (the default, matching crash-stop
        semantics without stable storage) the service state is reset to
        its post-construction checkpoint before restarting.  Passing an
        explicit ``checkpoint`` instead models crash-*recovery* with
        stable storage: the node resumes from that persisted state,
        losing everything since it was taken (the amnesia window).
        """
        self.network.liveness.recover(self.node_id)
        if checkpoint is not None:
            self.service.restore(checkpoint)
        elif fresh_state:
            self.service.restore(self._initial_checkpoint)
        self.started = True
        tracer = self.sim.causal
        if tracer is None:
            self.sim.trace.record(self.sim.now, "node.restart", node=self.node_id)
            self.service.on_init()
            return
        event = tracer.local_event(self.node_id, "restart", root=True)
        self.sim.trace.record(self.sim.now, "node.restart", node=self.node_id)
        with tracer.executing(event):
            self.service.on_init()

    # ------------------------------------------------------------------
    # Message path
    # ------------------------------------------------------------------

    def send_out(self, dst: int, msg: Any) -> bool:
        """Outbound path: interposers, then the network."""
        for interposer in self.outbound_interposers:
            if not interposer.on_outbound(self, dst, msg):
                self.sim.trace.record(
                    self.sim.now, "node.filtered_out", node=self.node_id,
                    dst=dst, msg=type(msg).__name__,
                )
                return False
        size = msg.wire_size() if hasattr(msg, "wire_size") else 1024
        return self.network.send(self.node_id, dst, msg, size_bytes=size)

    def broadcast_out(self, dsts, msg: Any) -> List[bool]:
        """Batched outbound fan-out of one message to many peers.

        Interposers run per destination (a chaos interposer may pass
        some peers and filter others); the surviving destinations go
        through the transport's ``send_many`` fast path when the
        attached transport has one, else an equivalent send loop.
        """
        results: List[bool] = []
        passed: List[int] = []
        for dst in dsts:
            ok = True
            for interposer in self.outbound_interposers:
                if not interposer.on_outbound(self, dst, msg):
                    self.sim.trace.record(
                        self.sim.now, "node.filtered_out", node=self.node_id,
                        dst=dst, msg=type(msg).__name__,
                    )
                    ok = False
                    break
            results.append(ok)
            if ok:
                passed.append(dst)
        if not passed:
            return results
        size = msg.wire_size() if hasattr(msg, "wire_size") else 1024
        send_many = getattr(self.network, "send_many", None)
        if send_many is not None:
            accepted = send_many(self.node_id, passed, msg, size_bytes=size)
        else:
            accepted = [
                self.network.send(self.node_id, dst, msg, size_bytes=size)
                for dst in passed
            ]
        it = iter(accepted)
        return [bool(flag and next(it)) for flag in results]

    def _on_message(self, src: int, dst: int, payload: Any) -> None:
        if not self.is_up:
            return
        for interposer in self.inbound_interposers:
            if not interposer.on_inbound(self, src, payload):
                self.sim.trace.record(
                    self.sim.now, "node.filtered_in", node=self.node_id,
                    src=src, msg=type(payload).__name__,
                )
                return
        self.current_dispatch_kind = ("deliver", type(payload))
        if self.capture_dispatch and (
            self.capture_kinds is None
            or self.current_dispatch_kind in self.capture_kinds
        ):
            self.current_dispatch = DispatchRecord(
                kind="deliver", src=src, msg=payload, timer_name=None,
                payload=None, checkpoint=self.service.checkpoint(),
            )
        try:
            self.service.deliver(src, payload)
        finally:
            self.current_dispatch = None
        self._after_dispatch()

    def _after_dispatch(self) -> None:
        for interposer in self.inbound_interposers:
            interposer.after_dispatch(self)

    def _on_broken(self, peer: int) -> None:
        if self.is_up:
            self.service.on_connection_broken(peer)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        """(Re)arm a named timer; re-arming supersedes the old deadline."""
        self._timer_token += 1
        token = self._timer_token
        self._timers[name] = token
        self._timer_payloads[name] = payload
        self._timer_deadlines[name] = self.sim.now + delay
        tracer = self.sim.causal
        if tracer is not None:
            cause = tracer.current_event_id()
            if cause is not None:
                self._timer_causes[name] = cause
            else:
                self._timer_causes.pop(name, None)
        self.sim.schedule(
            delay,
            lambda: self._fire_timer(name, token),
            tag=f"timer:{self.node_id}:{name}",
        )

    def cancel_timer(self, name: str) -> None:
        """Disarm a named timer (no-op if not armed)."""
        self._timers.pop(name, None)
        self._timer_payloads.pop(name, None)
        self._timer_deadlines.pop(name, None)
        self._timer_causes.pop(name, None)

    def _fire_timer(self, name: str, token: int) -> None:
        if not self.is_up:
            return
        if self._timers.get(name) != token:
            return  # superseded or cancelled
        payload = self._timer_payloads.pop(name, None)
        self._timers.pop(name, None)
        self._timer_deadlines.pop(name, None)
        tracer = self.sim.causal
        if tracer is None:
            self.sim.trace.record(self.sim.now, "node.timer", node=self.node_id, name=name)
            self._dispatch_timer(name, payload)
            return
        event = tracer.timer_event(
            self.node_id, name, self._timer_causes.pop(name, None),
        )
        self.sim.trace.record(self.sim.now, "node.timer", node=self.node_id, name=name)
        # Inlined tracer.executing(event) — see transport._deliver.
        scopes = tracer._current
        depth = len(scopes)
        scopes.append(event)
        try:
            self._dispatch_timer(name, payload)
        finally:
            del scopes[depth:]

    def _dispatch_timer(self, name: str, payload: Any) -> None:
        self.current_dispatch_kind = ("timer", name)
        if self.capture_dispatch and (
            self.capture_kinds is None
            or self.current_dispatch_kind in self.capture_kinds
        ):
            self.current_dispatch = DispatchRecord(
                kind="timer", src=None, msg=None, timer_name=name,
                payload=payload, checkpoint=self.service.checkpoint(),
            )
        try:
            self.service.fire_timer(name, payload)
        finally:
            self.current_dispatch = None
        self._after_dispatch()

    def pending_timers(self) -> List[tuple]:
        """Live timers as ``(name, deadline, payload)`` (for snapshots)."""
        return [
            (name, self._timer_deadlines[name], self._timer_payloads.get(name))
            for name in sorted(self._timers)
        ]

    # ------------------------------------------------------------------
    # Choices
    # ------------------------------------------------------------------

    def resolve_choice(self, point: ChoicePoint) -> Any:
        """Resolve an exposed choice with the node's resolver.

        The resolved value is recorded on the current dispatch (when
        captured) so predictive replays can reproduce earlier choices.
        """
        value = self.choice_resolver.resolve(point, node=self)
        if self.current_dispatch is not None:
            self.current_dispatch.choices.append(value)
        return value

    def __repr__(self) -> str:
        return f"Node(id={self.node_id}, service={type(self.service).__name__})"


ServiceFactory = Callable[[int], Service]
ResolverFactory = Callable[[int], object]


class Cluster:
    """``n`` nodes running one service class over a shared topology."""

    def __init__(
        self,
        n: int,
        service_factory: ServiceFactory,
        topology: Optional[Topology] = None,
        seed: int = 0,
        resolver_factory: Optional[ResolverFactory] = None,
        transport_wrapper: Optional[Callable[[Network], Any]] = None,
        causal: bool = False,
    ) -> None:
        self.sim = Simulator(seed=seed)
        # Causal tracing is opt-in: with it on, every send/deliver/
        # timer/choice record carries a happens-before stamp (see
        # repro.obs.causal); with it off (the default) the stamp paths
        # cost one attribute test each.
        self.causal = None
        if causal:
            from ..obs.causal import enable_causal_tracing

            self.causal = enable_causal_tracing(self.sim)
        self.topology = topology if topology is not None else full_mesh(n)
        if self.topology.n < n:
            raise ValueError(f"topology has {self.topology.n} nodes, cluster needs {n}")
        self.liveness = LivenessRegistry()
        self.network = Network(self.sim, self.topology, self.liveness)
        # Nodes talk through the (optionally wrapped) transport — e.g.
        # repro.chaos.reliable_transport adds at-least-once delivery —
        # while self.network stays the raw substrate for fault injection
        # and statistics.
        self.transport = (
            transport_wrapper(self.network) if transport_wrapper else self.network
        )
        self.nodes: List[Node] = []
        for node_id in range(n):
            resolver = resolver_factory(node_id) if resolver_factory else None
            service = service_factory(node_id)
            self.nodes.append(Node(node_id, self.sim, self.transport, service, resolver))

    def start_all(self, order: Optional[Sequence[int]] = None) -> None:
        """Start every node (in ``order`` if given, else by id)."""
        for node_id in order if order is not None else range(len(self.nodes)):
            self.nodes[node_id].start()

    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        return self.nodes[node_id]

    def service(self, node_id: int) -> Service:
        """The service instance hosted on ``node_id``."""
        return self.nodes[node_id].service

    @property
    def services(self) -> List[Service]:
        """All service instances, by node id."""
        return [node.service for node in self.nodes]

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the underlying simulator."""
        return self.sim.run(until=until, max_events=max_events)


__all__ = [
    "Node",
    "Cluster",
    "DispatchRecord",
    "InboundInterposer",
    "OutboundInterposer",
]
