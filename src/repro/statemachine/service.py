"""The state-machine service base class (Mace-like).

"As in many existing approaches, we assume that the distributed service
is implemented as a state machine that runs on every node" (Section 2).
A :class:`Service` subclass declares:

* ``state_fields`` — the names of its plain-data state attributes,
  which define its checkpoints;
* message handlers via ``@msg_handler(MsgClass)`` — several handlers
  for the same class put the service in NFA mode, with the runtime
  resolving which one applies;
* timer handlers via ``@timer_handler("name")``.

All side effects go through the bound context, so the same service code
runs live and inside model-checker sandboxes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..choice.choicepoint import ChoiceError, ChoicePoint
from .context import Context
from .handlers import HandlerSpec, collect_handlers
from .serialization import checkpoint_state, digest, restore_state


class DispatchError(Exception):
    """Raised when a message or timer cannot be dispatched."""


class Service:
    """Base class for distributed services."""

    state_fields: Sequence[str] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        cls._msg_handlers, cls._timer_handlers = collect_handlers(cls)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.ctx: Optional[Context] = None

    # ------------------------------------------------------------------
    # Lifecycle (overridable)
    # ------------------------------------------------------------------

    def on_init(self) -> None:
        """Called when the node starts (or restarts after a failure)."""

    def on_connection_broken(self, peer: int) -> None:
        """Called when the transport connection with ``peer`` breaks."""

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def send(self, dst: int, msg: Any) -> None:
        """Send ``msg`` to node ``dst``."""
        self.ctx.send(dst, msg)

    def broadcast(self, dsts: Sequence[int], msg: Any) -> None:
        """Send the same ``msg`` to every node in ``dsts``.

        Behaviourally identical to a per-destination ``send`` loop; on a
        live node the fan-out goes through the transport's batched
        ``send_many`` fast path (one queue insertion per distinct
        arrival time instead of one per destination).
        """
        self.ctx.broadcast(dsts, msg)

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        """(Re)arm the named timer ``delay`` seconds from now."""
        self.ctx.set_timer(name, delay, payload)

    def cancel_timer(self, name: str) -> None:
        """Cancel the named timer if armed."""
        self.ctx.cancel_timer(name)

    def now(self) -> float:
        """Current time as seen by this service."""
        return self.ctx.now()

    def rng(self, stream: str = "default"):
        """Named deterministic random stream scoped to this node."""
        return self.ctx.random(stream)

    def choose(self, label: str, candidates: Sequence[Any], **info: Any) -> Any:
        """Expose a choice to the runtime and return the resolved value.

        This is the paper's core API.  With a single candidate the value
        is returned directly (no non-determinism to resolve).
        """
        candidates = list(candidates)
        if not candidates:
            raise ChoiceError(f"choice {label!r} at node {self.node_id}: no candidates")
        if len(candidates) == 1:
            return candidates[0]
        point = ChoicePoint(label=label, candidates=candidates, node_id=self.node_id, info=info)
        return self.ctx.choose(point)

    def record(self, category: str, **data: Any) -> None:
        """Append an application trace record."""
        self.ctx.record(category, **data)

    # ------------------------------------------------------------------
    # Dispatch (called by the host / explorer)
    # ------------------------------------------------------------------

    def applicable_handlers(self, src: int, msg: Any) -> List[HandlerSpec]:
        """Registered handlers for ``msg`` whose guards pass."""
        specs = self._msg_handlers.get(type(msg), [])
        return [spec for spec in specs if spec.applicable(self, src, msg)]

    def deliver(self, src: int, msg: Any) -> bool:
        """Dispatch an inbound message.

        With several applicable handlers (NFA mode) the context resolves
        which one runs.  Returns ``False`` for messages with no
        applicable handler (they are traced and ignored, matching
        transport semantics of unhandled messages).
        """
        specs = self.applicable_handlers(src, msg)
        if not specs:
            self.record("service.unhandled", msg=type(msg).__name__, src=src)
            return False
        if len(specs) == 1:
            spec = specs[0]
        else:
            spec = self.ctx.choose_handler(src, msg, specs)
        self.invoke_handler(spec, src, msg)
        return True

    def invoke_handler(self, spec: HandlerSpec, src: int, msg: Any) -> None:
        """Run one specific handler (used directly by the explorer)."""
        spec.fn(self, src, msg)

    def fire_timer(self, name: str, payload: Any = None) -> None:
        """Dispatch a timer expiry to its registered handler."""
        fn = self._timer_handlers.get(name)
        if fn is None:
            raise DispatchError(f"{type(self).__name__} has no handler for timer {name!r}")
        fn(self, payload)

    def timer_names(self) -> List[str]:
        """Names of all timers this service can handle."""
        return list(self._timer_handlers)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Deep-copied plain-data snapshot of the declared state fields."""
        return checkpoint_state(self, self.state_fields)

    def restore(self, checkpoint: Dict[str, Any]) -> None:
        """Install a checkpoint produced by :meth:`checkpoint`."""
        restore_state(self, checkpoint)

    def state_digest(self) -> str:
        """Stable digest of the current state (for MC state hashing)."""
        return digest(self.checkpoint())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node_id={self.node_id})"


__all__ = ["Service", "DispatchError"]
