"""Handler registration for state-machine services.

Two decorator families:

* :func:`msg_handler` marks a method as handling a message class.  A
  service may register *several* handlers for the same message type —
  the non-deterministic finite automaton (NFA) form from Section 3.1 of
  the paper ("the programmer can write several, simpler handlers for
  the same type of message... It is then the runtime's task to resolve
  the non-determinism").  Optional ``guard`` predicates restrict when a
  handler is applicable.
* :func:`timer_handler` marks a method as handling a named timer.

``collect_handlers`` builds the per-class registries; it is invoked by
``Service.__init_subclass__``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

Guard = Callable[[object, int, object], bool]


@dataclass(frozen=True)
class HandlerSpec:
    """A registered message handler.

    ``name`` identifies the handler in traces and choice labels;
    ``guard`` (if any) is evaluated as ``guard(service, src, msg)``
    before the handler is considered applicable.
    """

    name: str
    msg_cls: type
    fn: Callable
    guard: Optional[Guard] = None

    def applicable(self, service: object, src: int, msg: object) -> bool:
        """Whether this handler may process ``msg`` from ``src`` now."""
        if self.guard is None:
            return True
        return bool(self.guard(service, src, msg))


def msg_handler(msg_cls: type, guard: Optional[Guard] = None) -> Callable:
    """Decorator registering a method as a handler for ``msg_cls``."""

    def decorate(fn: Callable) -> Callable:
        registrations = getattr(fn, "_msg_registrations", [])
        registrations.append((msg_cls, guard))
        fn._msg_registrations = registrations
        return fn

    return decorate


def timer_handler(timer_name: str) -> Callable:
    """Decorator registering a method as the handler for a named timer."""

    def decorate(fn: Callable) -> Callable:
        names = getattr(fn, "_timer_registrations", [])
        names.append(timer_name)
        fn._timer_registrations = names
        return fn

    return decorate


def collect_handlers(
    cls: type,
) -> Tuple[Dict[type, List[HandlerSpec]], Dict[str, Callable]]:
    """Walk a service class (and bases) building handler registries.

    Returns ``(msg_handlers, timer_handlers)`` where ``msg_handlers``
    maps message class to the ordered list of specs (definition order,
    base classes first) and ``timer_handlers`` maps timer name to the
    bound-method function.
    """
    msg_handlers: Dict[type, List[HandlerSpec]] = {}
    timer_handlers: Dict[str, Callable] = {}
    seen_methods = set()
    for klass in reversed(cls.__mro__):
        for attr_name, attr in vars(klass).items():
            if attr_name in seen_methods:
                continue
            registrations = getattr(attr, "_msg_registrations", None)
            if registrations:
                seen_methods.add(attr_name)
                for msg_cls, guard in registrations:
                    spec = HandlerSpec(name=attr_name, msg_cls=msg_cls, fn=attr, guard=guard)
                    msg_handlers.setdefault(msg_cls, []).append(spec)
            timer_names = getattr(attr, "_timer_registrations", None)
            if timer_names:
                seen_methods.add(attr_name)
                for timer_name in timer_names:
                    timer_handlers[timer_name] = attr
    return msg_handlers, timer_handlers


__all__ = ["HandlerSpec", "msg_handler", "timer_handler", "collect_handlers", "Guard"]
