"""Execution contexts for services.

A service's downcalls (send, timers, choices, randomness, tracing) all
flow through its bound context, which makes the same handler code
runnable in two worlds:

* :class:`LiveContext` — attached to a real :class:`~repro.statemachine.node.Node`
  in the simulation: sends go to the network, choices to the node's
  resolver.
* :class:`SandboxContext` — used by the model checker: effects are
  *collected* instead of executed, and choices are replayed from a
  script; a choice beyond the script raises :class:`ChoiceRequested` so
  the explorer can branch on each candidate.

This mirrors the CrystalBall architecture, where the same state-machine
code runs both live and inside consequence prediction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..choice.choicepoint import ChoiceError, ChoicePoint
from ..sim.rng import derive_seed
from .handlers import HandlerSpec


class ChoiceRequested(Exception):
    """A sandboxed handler reached an unscripted choice.

    Carries the choice point and the script consumed so far; the
    explorer extends the script with each candidate and re-runs.
    """

    def __init__(self, point: ChoicePoint, consumed: List[Any]) -> None:
        super().__init__(f"unscripted choice {point.label!r} at node {point.node_id}")
        self.point = point
        self.consumed = consumed


@dataclass
class Effects:
    """What a sandboxed handler invocation did."""

    sent: List[Tuple[int, Any]] = field(default_factory=list)
    timers_set: List[Tuple[str, float, Any]] = field(default_factory=list)
    timers_cancelled: List[str] = field(default_factory=list)
    choices_made: List[Tuple[str, Any]] = field(default_factory=list)


class Context:
    """Downcall interface every service context implements."""

    def now(self) -> float:
        raise NotImplementedError

    def send(self, dst: int, msg: Any) -> None:
        raise NotImplementedError

    def broadcast(self, dsts, msg: Any) -> None:
        """Send ``msg`` to each destination; contexts with a batched
        fast path override this, others get the equivalent loop."""
        for dst in dsts:
            self.send(dst, msg)

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        raise NotImplementedError

    def cancel_timer(self, name: str) -> None:
        raise NotImplementedError

    def choose(self, point: ChoicePoint) -> Any:
        raise NotImplementedError

    def choose_handler(self, src: int, msg: Any, specs: List[HandlerSpec]) -> HandlerSpec:
        raise NotImplementedError

    def random(self, stream: str) -> random.Random:
        raise NotImplementedError

    def record(self, category: str, **data: Any) -> None:
        raise NotImplementedError


class LiveContext(Context):
    """Context bound to a live node in the simulation."""

    def __init__(self, node) -> None:
        self.node = node

    def now(self) -> float:
        # clock_skew is chaos-injected: the service's view of time can
        # drift from simulated truth, but scheduling stays exact.
        return self.node.sim.now + self.node.clock_skew

    def send(self, dst: int, msg: Any) -> None:
        self.node.send_out(dst, msg)

    def broadcast(self, dsts, msg: Any) -> None:
        self.node.broadcast_out(dsts, msg)

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        self.node.set_timer(name, delay, payload)

    def cancel_timer(self, name: str) -> None:
        self.node.cancel_timer(name)

    def choose(self, point: ChoicePoint) -> Any:
        value = self.node.resolve_choice(point)
        # The choice event joins the current execution scope (see
        # CausalTracer.choice_event): everything this dispatch does
        # after the resolution is causally downstream of the choice,
        # so forensics can root explanation chains at choice points.
        tracer = self.node.sim.causal
        if tracer is not None:
            tracer.choice_event(self.node.node_id, point.label)
        self.record("choice.resolve", label=point.label, value=_compact(value),
                    n_candidates=len(point.candidates))
        return value

    def choose_handler(self, src: int, msg: Any, specs: List[HandlerSpec]) -> HandlerSpec:
        point = ChoicePoint(
            label=f"handler:{type(msg).__name__}",
            candidates=list(specs),
            node_id=self.node.node_id,
            info={"src": src, "msg": msg},
        )
        spec = self.node.resolve_choice(point)
        tracer = self.node.sim.causal
        if tracer is not None:
            tracer.choice_event(self.node.node_id, point.label)
        self.record("choice.handler", label=point.label, value=spec.name)
        return spec

    def random(self, stream: str) -> random.Random:
        return self.node.sim.rng.stream(f"node{self.node.node_id}.{stream}")

    def record(self, category: str, **data: Any) -> None:
        self.node.sim.trace.record(self.node.sim.now, category, node=self.node.node_id, **data)


class SandboxContext(Context):
    """Context used inside model-checker exploration.

    ``choice_script`` is the sequence of values to return from
    successive ``choose`` calls (handler choices included); running past
    its end raises :class:`ChoiceRequested`.
    """

    def __init__(
        self,
        node_id: int,
        now: float = 0.0,
        choice_script: Optional[List[Any]] = None,
        rng_seed: int = 0,
    ) -> None:
        self.node_id = node_id
        self._now = now
        self.effects = Effects()
        self._script = list(choice_script or [])
        self._consumed: List[Any] = []
        self._rng_seed = rng_seed
        # Whether the handler observed the clock; the chain memo uses
        # this to decide if a cached chain depends on the world's time.
        self.time_read = False

    def now(self) -> float:
        self.time_read = True
        return self._now

    def send(self, dst: int, msg: Any) -> None:
        self.effects.sent.append((dst, msg))

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        self.effects.timers_set.append((name, delay, payload))

    def cancel_timer(self, name: str) -> None:
        self.effects.timers_cancelled.append(name)

    def choose(self, point: ChoicePoint) -> Any:
        if self._script:
            value = self._script.pop(0)
            if value not in point.candidates:
                raise ChoiceError(
                    f"scripted value {value!r} not among candidates of {point.label!r}"
                )
            self._consumed.append(value)
            self.effects.choices_made.append((point.label, value))
            return value
        raise ChoiceRequested(point, list(self._consumed))

    def choose_handler(self, src: int, msg: Any, specs: List[HandlerSpec]) -> HandlerSpec:
        point = ChoicePoint(
            label=f"handler:{type(msg).__name__}",
            candidates=list(specs),
            node_id=self.node_id,
            info={"src": src},
        )
        return self.choose(point)

    def random(self, stream: str) -> random.Random:
        # Fresh deterministic stream per invocation: exploration must be
        # replayable, and draws must not leak between explored branches.
        return random.Random(derive_seed(self._rng_seed, f"sandbox:{self.node_id}:{stream}"))

    def record(self, category: str, **data: Any) -> None:
        # Exploration is silent; the explorer traces at a higher level.
        return None


def _compact(value: Any) -> Any:
    """Shrink a choice value for tracing (handler specs become names)."""
    if isinstance(value, HandlerSpec):
        return value.name
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    return type(value).__name__


__all__ = [
    "Context",
    "LiveContext",
    "SandboxContext",
    "Effects",
    "ChoiceRequested",
]
