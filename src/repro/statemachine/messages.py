"""Wire message base class.

Application messages are frozen-ish dataclasses deriving from
:class:`Message`.  They must contain only plain data (see
``serialization``) so they can live inside checkpoints and model-checker
world states.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Hashable

from .serialization import freeze


@dataclass
class Message:
    """Base class for all wire messages.

    Subclasses are ordinary dataclasses; the class name doubles as the
    message type on the wire.
    """

    @classmethod
    def msg_type(cls) -> str:
        """Wire type name of this message class."""
        return cls.__name__

    def wire_size(self) -> int:
        """Approximate on-the-wire size in bytes.

        A fixed header plus a crude per-field estimate; applications
        carrying bulk payloads (content distribution blocks) override
        this with their real block size.
        """
        size = 64
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (bytes, str)):
                size += len(value)
            elif isinstance(value, (list, tuple, set, frozenset, dict)):
                size += 8 * max(1, len(value))
            else:
                size += 8
        return size

    def frozen(self) -> Hashable:
        """Canonical hashable form (for model-checker state hashing)."""
        return freeze(self)


__all__ = ["Message"]
