"""Layered service composition (Mace-style).

Mace services are built in layers — an overlay protocol runs on top of
transports and membership services on the same node.  A
:class:`ServiceStack` hosts an ordered set of named layer services as a
single node-level service:

* wire messages are wrapped in a :class:`LayerEnvelope` and routed to
  the addressed layer;
* timers, random streams, trace categories, and choice labels are
  namespaced per layer;
* checkpoints aggregate every layer's checkpoint, so model checking,
  checkpoint exchange, and dispatch replay work on stacks unchanged;
* layers reach each other through :meth:`ServiceStack.layer` (downcalls
  to lower layers, upcalls by calling methods on an upper layer).

Because a layer's downcalls go through a :class:`LayerContext` that
*delegates to the stack's own context*, the same layer code runs live
and inside model-checker sandboxes — composition preserves the one
service / two worlds property (docs/internals.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..choice.choicepoint import ChoicePoint
from .context import Context
from .handlers import HandlerSpec
from .messages import Message
from .serialization import snapshot_value
from .service import Service
from .handlers import msg_handler

LAYER_SEPARATOR = ":"


@dataclass
class LayerEnvelope(Message):
    """Wire wrapper addressing a message to one layer of the peer stack."""

    layer: str
    inner: Any

    def wire_size(self) -> int:
        base = 16 + len(self.layer)
        if hasattr(self.inner, "wire_size"):
            return base + self.inner.wire_size()
        return base + 64


class LayerContext(Context):
    """A layer's view of the stack's context.

    Delegates every downcall to the hosting stack's current context
    (live or sandboxed), namespacing names so layers cannot collide.
    """

    def __init__(self, stack: "ServiceStack", layer_name: str) -> None:
        self.stack = stack
        self.layer_name = layer_name

    def _scoped(self, name: str) -> str:
        return f"{self.layer_name}{LAYER_SEPARATOR}{name}"

    def now(self) -> float:
        return self.stack.ctx.now()

    def send(self, dst: int, msg: Any) -> None:
        self.stack.ctx.send(dst, LayerEnvelope(layer=self.layer_name, inner=msg))

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        self.stack.ctx.set_timer(self._scoped(name), delay, payload)

    def cancel_timer(self, name: str) -> None:
        self.stack.ctx.cancel_timer(self._scoped(name))

    def choose(self, point: ChoicePoint) -> Any:
        scoped = ChoicePoint(
            label=self._scoped(point.label),
            candidates=point.candidates,
            node_id=point.node_id,
            info=point.info,
        )
        return self.stack.ctx.choose(scoped)

    def choose_handler(self, src: int, msg: Any, specs: List[HandlerSpec]) -> HandlerSpec:
        return self.stack.ctx.choose_handler(src, msg, specs)

    def random(self, stream: str):
        return self.stack.ctx.random(self._scoped(stream))

    def record(self, category: str, **data: Any) -> None:
        self.stack.ctx.record(f"{self.layer_name}.{category}", **data)


class ServiceStack(Service):
    """Hosts named layer services as one node-level service."""

    def __init__(self, node_id: int, layers: Sequence[Tuple[str, Service]]) -> None:
        super().__init__(node_id)
        if not layers:
            raise ValueError("a service stack needs at least one layer")
        self._order: List[str] = []
        self.layers: Dict[str, Service] = {}
        for name, layer in layers:
            if LAYER_SEPARATOR in name:
                raise ValueError(f"layer name {name!r} may not contain {LAYER_SEPARATOR!r}")
            if name in self.layers:
                raise ValueError(f"duplicate layer name {name!r}")
            self._order.append(name)
            self.layers[name] = layer
            layer.ctx = LayerContext(self, name)
            layer.stack = self

    # ------------------------------------------------------------------
    # Layer access (down/upcalls)
    # ------------------------------------------------------------------

    def layer(self, name: str) -> Service:
        """The layer service registered under ``name``."""
        return self.layers[name]

    # ------------------------------------------------------------------
    # Lifecycle and dispatch
    # ------------------------------------------------------------------

    def on_init(self) -> None:
        for name in self._order:
            self.layers[name].on_init()

    def on_connection_broken(self, peer: int) -> None:
        for name in self._order:
            self.layers[name].on_connection_broken(peer)

    @msg_handler(LayerEnvelope)
    def route_envelope(self, src: int, msg: LayerEnvelope) -> None:
        layer = self.layers.get(msg.layer)
        if layer is None:
            self.record("stack.unknown_layer", layer=msg.layer,
                        msg=type(msg.inner).__name__)
            return
        layer.deliver(src, msg.inner)

    def fire_timer(self, name: str, payload: Any = None) -> None:
        layer_name, _, timer_name = name.partition(LAYER_SEPARATOR)
        layer = self.layers.get(layer_name)
        if layer is None or not timer_name:
            from .service import DispatchError

            raise DispatchError(f"stack has no layer timer {name!r}")
        layer.fire_timer(timer_name, payload)

    def timer_names(self) -> List[str]:
        names = []
        for layer_name in self._order:
            for timer in self.layers[layer_name].timer_names():
                names.append(f"{layer_name}{LAYER_SEPARATOR}{timer}")
        return names

    # ------------------------------------------------------------------
    # Checkpoints (aggregate of all layers)
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {name: self.layers[name].checkpoint() for name in self._order}

    def restore(self, checkpoint: Dict[str, Any]) -> None:
        for name, layer_state in checkpoint.items():
            self.layers[name].restore(snapshot_value(layer_state))

    def __repr__(self) -> str:
        return f"ServiceStack(node_id={self.node_id}, layers={self._order})"


def make_stack_factory(layer_factories: Sequence[Tuple[str, Any]]):
    """Factory of identical stacks from per-layer factories.

    ``layer_factories`` is an ordered list of ``(name, factory)`` where
    each factory maps a node id to that layer's service instance.
    """

    def factory(node_id: int) -> ServiceStack:
        return ServiceStack(
            node_id, [(name, make(node_id)) for name, make in layer_factories],
        )

    return factory


__all__ = ["ServiceStack", "LayerEnvelope", "LayerContext", "make_stack_factory",
           "LAYER_SEPARATOR"]
