"""Checkpoint serialization and canonical state freezing.

Services declare plain-data ``state_fields``; checkpoints are deep
copies of those fields.  The model checker needs to recognize states it
has already visited, so :func:`freeze` converts any plain-data value to
a canonical hashable form and :func:`digest` produces a stable hash.

Plain data means: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, and ``dict``/``list``/``tuple``/``set``/``frozenset``/
``collections.deque`` of plain data, plus dataclass instances whose
fields are plain data (covers wire messages).  Deques round-trip as
deques (and freeze with their own tag) so queue-shaped service state
survives checkpoint/restore with its type intact.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import deque
from typing import Any, Dict, Hashable

_SCALARS = (type(None), bool, int, float, str, bytes)


class SerializationError(TypeError):
    """Raised when a value is not plain data."""


def snapshot_value(value: Any) -> Any:
    """Deep-copy a plain-data value for a checkpoint.

    Dataclass instances are copied by reconstructing them, so mutable
    fields inside a message are not shared between a checkpoint and the
    live state.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        return {snapshot_value(k): snapshot_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [snapshot_value(v) for v in value]
    if isinstance(value, deque):
        return deque(snapshot_value(v) for v in value)
    if isinstance(value, tuple):
        return tuple(snapshot_value(v) for v in value)
    if isinstance(value, (set, frozenset)):
        copied = {snapshot_value(v) for v in value}
        return frozenset(copied) if isinstance(value, frozenset) else copied
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: snapshot_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return type(value)(**fields)
    raise SerializationError(
        f"value of type {type(value).__name__} is not plain data: {value!r}"
    )


def freeze(value: Any) -> Hashable:
    """Convert a plain-data value to a canonical hashable form.

    The encoding is injective per type (containers are tagged) so that
    e.g. ``[1, 2]`` and ``(1, 2)`` freeze differently.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        items = tuple(sorted(((freeze(k), freeze(v)) for k, v in value.items()),
                             key=lambda kv: repr(kv[0])))
        return ("__dict__", items)
    if isinstance(value, list):
        return ("__list__", tuple(freeze(v) for v in value))
    if isinstance(value, deque):
        return ("__deque__", tuple(freeze(v) for v in value))
    if isinstance(value, tuple):
        return ("__tuple__", tuple(freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("__set__", tuple(sorted((freeze(v) for v in value), key=repr)))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, freeze(getattr(value, f.name))) for f in dataclasses.fields(value)
        )
        return ("__dc__", type(value).__name__, fields)
    raise SerializationError(
        f"value of type {type(value).__name__} is not plain data: {value!r}"
    )


def encode_frozen(frozen_value: Hashable) -> bytes:
    """Canonical byte encoding of an already-frozen value.

    This is the single encoder behind every digest in the system
    (service checkpoints, world states, event keys): digesting anything
    means ``sha256(encode_frozen(freeze(value)))``.
    """
    return repr(frozen_value).encode("utf-8")


def digest_of_frozen(frozen_value: Hashable) -> str:
    """Stable hex digest of an already-frozen value."""
    return hashlib.sha256(encode_frozen(frozen_value)).hexdigest()[:16]


def digest(value: Any) -> str:
    """Stable hex digest of a plain-data value (via :func:`freeze`)."""
    return digest_of_frozen(freeze(value))


def checkpoint_state(obj: Any, field_names) -> Dict[str, Any]:
    """Snapshot the named attributes of ``obj`` into a checkpoint dict."""
    return {name: snapshot_value(getattr(obj, name)) for name in field_names}


def restore_state(obj: Any, checkpoint: Dict[str, Any]) -> None:
    """Install a checkpoint dict onto ``obj`` (deep-copying values)."""
    for name, value in checkpoint.items():
        setattr(obj, name, snapshot_value(value))


__all__ = [
    "SerializationError",
    "snapshot_value",
    "freeze",
    "encode_frozen",
    "digest_of_frozen",
    "digest",
    "checkpoint_state",
    "restore_state",
]
