"""Mace-like state-machine service framework.

Services are state machines driven by message and timer handler
invocations, with checkpointing, NFA-mode multiple handlers, and all
side effects routed through a swappable context (live vs sandboxed).
"""

from .context import ChoiceRequested, Context, Effects, LiveContext, SandboxContext
from .handlers import HandlerSpec, msg_handler, timer_handler
from .messages import Message
from .node import Cluster, DispatchRecord, InboundInterposer, Node, OutboundInterposer
from .serialization import (
    SerializationError,
    checkpoint_state,
    digest,
    freeze,
    restore_state,
    snapshot_value,
)
from .service import DispatchError, Service
from .stack import LayerContext, LayerEnvelope, ServiceStack, make_stack_factory

__all__ = [
    "ChoiceRequested",
    "Context",
    "Effects",
    "LiveContext",
    "SandboxContext",
    "HandlerSpec",
    "msg_handler",
    "timer_handler",
    "Message",
    "Cluster",
    "DispatchRecord",
    "InboundInterposer",
    "Node",
    "OutboundInterposer",
    "SerializationError",
    "checkpoint_state",
    "digest",
    "freeze",
    "restore_state",
    "snapshot_value",
    "DispatchError",
    "Service",
    "LayerContext",
    "LayerEnvelope",
    "ServiceStack",
    "make_stack_factory",
]
