"""Explicit-state model checking and consequence prediction.

World states over checkpointed services, enabled-action enumeration,
bounded BFS, and CrystalBall's causal-chain consequence prediction,
with optional network-model time weighting ("model checker as
simulator").
"""

from .actions import (
    Action,
    DeliverAction,
    DropAction,
    InjectAction,
    TimerAction,
    action_key,
)
from .chain_memo import ChainMemo, ChainRecorder, Footprint
from .consequence import (
    ActionOutcome,
    ConsequencePredictor,
    PredictionReport,
    score_outcome,
    score_report,
)
from .liveness import BoundedLivenessChecker, LivenessProperty, LivenessResult
from .randomwalk import RandomWalkSimulator, SampleReport, Walk
from .explorer import (
    DEFAULT_STEP_TIME,
    ExplorationError,
    ExplorationResult,
    Explorer,
    ServicePool,
    Violation,
    consumed_event_key,
    created_event_keys,
)
from .properties import SafetyProperty, all_nodes, pairwise, violated_properties
from .world import InFlightMessage, PendingTimer, WorldState, world_from_services

__all__ = [
    "Action",
    "DeliverAction",
    "DropAction",
    "InjectAction",
    "TimerAction",
    "action_key",
    "ChainMemo",
    "ChainRecorder",
    "Footprint",
    "ActionOutcome",
    "ConsequencePredictor",
    "PredictionReport",
    "score_outcome",
    "score_report",
    "BoundedLivenessChecker",
    "LivenessProperty",
    "LivenessResult",
    "RandomWalkSimulator",
    "SampleReport",
    "Walk",
    "DEFAULT_STEP_TIME",
    "ExplorationError",
    "ExplorationResult",
    "Explorer",
    "ServicePool",
    "Violation",
    "consumed_event_key",
    "created_event_keys",
    "SafetyProperty",
    "all_nodes",
    "pairwise",
    "violated_properties",
    "InFlightMessage",
    "PendingTimer",
    "WorldState",
    "world_from_services",
]
