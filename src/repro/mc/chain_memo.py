"""Cross-round memoization of consequence-prediction chains.

The steady-state prediction loop re-explores the full causal chain of
every enabled action each period even though consecutive snapshot
worlds are nearly identical — the same amortize-across-invocations
insight behind the paper's Section 3.4 "choices based on previous
similar scenarios" fast path, applied to exploration itself instead of
choice resolution.

A :class:`ChainMemo` caches, per initial action key, the outcome of
one chain exploration together with its *causal footprint*: digests of
exactly the world inputs the chain read —

* the states of every node it materialized (plus the down set);
* the property-verdict environment its safety checks depended on;
* the root's time and the network-model delays, when the chain
  observed the clock;
* the ``(key, delay)`` sequence of root timers it re-armed or fired;
* the root's in-flight-message and pending-timer key sequences
  restricted to the chain's event universe (order matters: scan order
  determines action order, which determines report serialization).

On the next round the footprint is re-evaluated against the new root;
if every component matches, the cached outcome is *rebased* onto the
new root by replaying stored per-world deltas (changed node states,
event multiset diffs), producing worlds byte-identical — digest for
digest — to what a fresh exploration would have built.  Anything else
is a miss and the chain is re-explored.

Budget accounting stays deterministic: an entry records the budget it
ran under, whether it was truncated, and the maximum in-progress state
count at any budget check; it is reused only for budgets that provably
take the identical truncation path.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from .actions import Action
from .explorer import Explorer, Violation
from .world import InFlightMessage, PendingTimer, WorldState

ENV_NONE = 0
ENV_STATES = 1
ENV_WORLD = 2


class ChainRecorder:
    """Collects the causal footprint of one chain exploration.

    Installed on the :class:`~repro.mc.explorer.Explorer` as
    ``explorer.recorder`` for the duration of a single chain; the
    explorer's materialization, enumeration, delay, and rearm paths
    feed it, and ``_explore_chain`` feeds the event universe and the
    budget-accounting fields.
    """

    __slots__ = ("nodes", "events", "rearms", "delays", "time_read",
                 "truncated", "max_pending")

    def __init__(self) -> None:
        self.nodes: Set[int] = set()
        self.events: Set[Tuple] = set()
        self.rearms: Set[Tuple[int, str]] = set()
        self.delays: List[Tuple[int, int, int, float]] = []
        self.time_read = False
        self.truncated = False
        # Highest outcome.states seen at a budget check with work still
        # stacked; any budget strictly above it provably never truncates.
        self.max_pending = -1


@dataclass(frozen=True)
class Footprint:
    """What a cached chain read, as a recomputable specification."""

    nodes: Tuple[int, ...]
    env_level: int
    prop_gates: Tuple[str, ...]
    time_read: bool
    rearms: FrozenSet[Tuple[int, str]]
    events: FrozenSet[Tuple]
    delays: Tuple[Tuple[int, int, int, float], ...]


@dataclass
class _WorldPatch:
    """Delta from a root world to one stored chain world."""

    states: Dict[int, Dict[str, Any]]
    digests: Dict[int, str]
    removed_msgs: Tuple[Tuple, ...]
    added_msgs: Tuple[InFlightMessage, ...]
    removed_timers: Tuple[Tuple[Tuple, float], ...]
    added_timers: Tuple[PendingTimer, ...]
    dt: float
    ddepth: int


@dataclass
class _CachedChain:
    """One memoized chain exploration."""

    footprint: Footprint
    value: Tuple
    budget_given: int
    truncated: bool
    max_pending: int
    states: int
    leaf_patches: Tuple[_WorldPatch, ...]
    violations: Tuple[Tuple[str, Tuple[Action, ...], _WorldPatch], ...]


# ----------------------------------------------------------------------
# Footprint evaluation
# ----------------------------------------------------------------------

def _ordered_msg_keys(world: WorldState) -> List[Tuple]:
    keys = getattr(world, "_memo_msg_keys", None)
    if keys is None:
        keys = [m.key() for m in world.inflight]
        world._memo_msg_keys = keys
    return keys


def _ordered_timer_keys(world: WorldState) -> List[Tuple]:
    keys = getattr(world, "_memo_timer_keys", None)
    if keys is None:
        keys = [t.key() for t in world.timers]
        world._memo_timer_keys = keys
    return keys


def _states_env(world: WorldState) -> Tuple:
    """Digest of every node state plus the down set, cached per world."""
    cached = getattr(world, "_memo_env", None)
    if cached is None:
        cached = (
            tuple((nid, world._node_digest(nid)) for nid in sorted(world.node_states)),
            tuple(sorted(world.down)),
        )
        world._memo_env = cached
    return cached


def footprint_value(root: WorldState, fp: Footprint) -> Tuple:
    """Evaluate a footprint specification against a root world.

    Computed identically at store time (against the old root) and at
    lookup time (against the new root); equality of the two values is
    the reuse condition (property gates and delay drift are checked
    separately — they are predicates, not values).
    """
    parts: List[Any] = [root.down]
    node_states = root.node_states
    parts.append(tuple(
        (nid, root._node_digest(nid) if nid in node_states else None)
        for nid in fp.nodes
    ))
    if fp.env_level == ENV_STATES:
        parts.append(_states_env(root))
    elif fp.env_level == ENV_WORLD:
        parts.append((root.digest(), root.time))
    if fp.time_read:
        parts.append(root.time)
    if fp.rearms:
        rearms = fp.rearms
        parts.append(tuple(
            (t.key(), t.delay) for t in root.timers if (t.node, t.name) in rearms
        ))
    if fp.events:
        events = fp.events
        parts.append(tuple(k for k in _ordered_msg_keys(root) if k in events))
        parts.append(tuple(k for k in _ordered_timer_keys(root) if k in events))
    return tuple(parts)


def _gates_open(root: WorldState, fp: Footprint) -> bool:
    """Whether every gated property verdict holds at the new root."""
    if not fp.prop_gates:
        return True
    cache = getattr(root, "_prop_cache", None)
    if not cache:
        return False
    return all(cache.get(name) is True for name in fp.prop_gates)


def _delays_match(fp: Footprint, network_model) -> bool:
    """Re-verify recorded delivery delays against the (possibly
    mutated) network model — only needed when the chain read time."""
    if not fp.time_read or not fp.delays:
        return True
    if network_model is None:
        return True
    transfer_time = network_model.transfer_time
    for src, dst, size, delay in fp.delays:
        if transfer_time(src, dst, size) != delay:
            return False
    return True


# ----------------------------------------------------------------------
# World patching
# ----------------------------------------------------------------------

def _timer_id_counter(world: WorldState) -> Counter:
    return Counter((t.key(), t.delay) for t in world.timers)


def _make_patch(root: WorldState, world: WorldState) -> _WorldPatch:
    """Delta that rebuilds ``world`` from ``root`` (or any root whose
    footprint-relevant parts are identical)."""
    root_states = root.node_states
    states = {
        nid: s for nid, s in world.node_states.items()
        if root_states.get(nid) is not s
    }
    digests = {nid: world._node_digest(nid) for nid in states}

    root_msgs = Counter(_ordered_msg_keys(root))
    world_msgs = Counter(_ordered_msg_keys(world))
    removed_msgs = tuple((root_msgs - world_msgs).elements())
    need = world_msgs - root_msgs
    added_msgs: List[InFlightMessage] = []
    if need:
        pending = Counter(need)
        # Reverse scan: chain-created events sit at the tail, and a key
        # present in both root and chain worlds must resolve to the
        # chain's instances (last occurrences), preserving list order.
        for m in reversed(world.inflight):
            key = m.key()
            if pending.get(key, 0) > 0:
                pending[key] -= 1
                added_msgs.append(m)
        added_msgs.reverse()

    root_timers = _timer_id_counter(root)
    world_timers = _timer_id_counter(world)
    removed_timers = tuple((root_timers - world_timers).elements())
    need_t = world_timers - root_timers
    added_timers: List[PendingTimer] = []
    if need_t:
        pending_t = Counter(need_t)
        for t in reversed(world.timers):
            tid = (t.key(), t.delay)
            if pending_t.get(tid, 0) > 0:
                pending_t[tid] -= 1
                added_timers.append(t)
        added_timers.reverse()

    return _WorldPatch(
        states=states,
        digests=digests,
        removed_msgs=removed_msgs,
        added_msgs=tuple(added_msgs),
        removed_timers=removed_timers,
        added_timers=tuple(added_timers),
        dt=world.time - root.time,
        ddepth=world.depth - root.depth,
    )


def _apply_patch(root: WorldState, patch: _WorldPatch) -> WorldState:
    """Rebase a stored chain world onto a new root.

    Produces a world digest-identical to what re-exploring the chain
    from ``root`` would have built, at O(delta) cost.
    """
    node_states = dict(root.node_states)
    node_states.update(patch.states)
    inflight = list(root.inflight)
    for key in patch.removed_msgs:
        for index, m in enumerate(inflight):
            if m.key() == key:
                del inflight[index]
                break
        else:
            raise LookupError(f"message to remove not in root: {key!r}")
    inflight.extend(patch.added_msgs)
    timers = list(root.timers)
    for tid in patch.removed_timers:
        for index, t in enumerate(timers):
            if (t.key(), t.delay) == tid:
                del timers[index]
                break
        else:
            raise LookupError(f"timer to remove not in root: {tid!r}")
    timers.extend(patch.added_timers)
    world = WorldState(
        node_states=node_states,
        inflight=inflight,
        timers=timers,
        down=root.down,
        time=root.time + patch.dt,
        depth=root.depth + patch.ddepth,
        copy_states=False,
    )
    world._digest_parent = root
    world._node_digests.update(patch.digests)
    return world


# ----------------------------------------------------------------------
# The memo
# ----------------------------------------------------------------------

class ChainMemo:
    """LRU cache of chain explorations keyed by initial action.

    Thread-safe (the parallel predictor looks up and stores from worker
    threads).  ``bind()`` ties the memo to an exploration configuration
    and flushes it when the configuration changes; ``invalidate()`` is
    the hook for external world-model changes (topology, chaos,
    steering installs) that footprints cannot see.
    """

    def __init__(self, max_entries: int = 256, variants_per_action: int = 4) -> None:
        self.max_entries = max_entries
        self.variants_per_action = variants_per_action
        self._entries: "OrderedDict[Tuple, List[_CachedChain]]" = OrderedDict()
        self._lock = threading.Lock()
        self._count = 0
        self._config: Optional[Tuple] = None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidation_reasons: Dict[str, int] = {}
        self.rebase_errors = 0

    def __len__(self) -> int:
        return self._count

    def bind(self, config: Tuple) -> None:
        """Flush if the exploration configuration changed."""
        with self._lock:
            if self._config is not None and self._config != config:
                self._invalidate_locked()
            self._config = config

    def invalidate(self, reason: str = "") -> None:
        """Drop every entry (topology/chaos/steering changed)."""
        with self._lock:
            if self._entries and reason:
                self.invalidation_reasons[reason] = (
                    self.invalidation_reasons.get(reason, 0) + 1
                )
            self._invalidate_locked()

    def _invalidate_locked(self) -> None:
        if self._entries:
            self.invalidations += 1
        self._entries.clear()
        self._count = 0

    # -- read path ------------------------------------------------------

    def lookup(
        self,
        root: WorldState,
        action: Action,
        budget: int,
        explorer: Explorer,
    ) -> Optional[Tuple[int, List[Violation], List[WorldState]]]:
        """``(states, violations, leaf_worlds)`` rebased onto ``root``
        if a cached chain's footprint matches, else ``None``."""
        key = action.key()
        with self._lock:
            chains = self._entries.get(key)
            if chains:
                self._entries.move_to_end(key)
                candidates = list(chains)
            else:
                candidates = []
        for chain in reversed(candidates):  # newest first
            if not (budget == chain.budget_given
                    or (not chain.truncated and budget > chain.max_pending)):
                continue
            fp = chain.footprint
            if not _gates_open(root, fp):
                continue
            if footprint_value(root, fp) != chain.value:
                continue
            if not _delays_match(fp, explorer.network_model):
                continue
            rebased = self._rebase(root, chain)
            if rebased is None:
                continue
            with self._lock:
                self.hits += 1
            return rebased
        with self._lock:
            self.misses += 1
        return None

    def _rebase(
        self, root: WorldState, chain: _CachedChain
    ) -> Optional[Tuple[int, List[Violation], List[WorldState]]]:
        try:
            violations = [
                Violation(property_name=name, path=path,
                          world=_apply_patch(root, patch))
                for name, path, patch in chain.violations
            ]
            leaves = [_apply_patch(root, patch) for patch in chain.leaf_patches]
        except Exception:
            # A footprint mismatch the value comparison failed to catch
            # would be a bug; degrade to a miss rather than crash the
            # prediction loop, and count it so tests can assert zero.
            with self._lock:
                self.rebase_errors += 1
            return None
        return chain.states, violations, leaves

    # -- write path -----------------------------------------------------

    def store(
        self,
        root: WorldState,
        action: Action,
        budget: int,
        outcome,
        recorder: ChainRecorder,
        explorer: Explorer,
    ) -> None:
        """Memoize a freshly explored chain with its footprint."""
        env = ENV_NONE
        gates: List[str] = []
        cache = getattr(root, "_prop_cache", {})
        violated = {v.property_name for v in outcome.violations}
        for prop in explorer.properties:
            scope = getattr(prop, "scope", "world")
            if scope == "nodes":
                # Chains downstream of a violated per-node property do
                # full scans; so do chains rooted where the verdict was
                # not already True.  Either escalates to the full-state
                # environment; otherwise the root verdict is the gate.
                if cache.get(prop.name) is True and prop.name not in violated:
                    gates.append(prop.name)
                else:
                    env = max(env, ENV_STATES)
            elif scope == "states":
                env = max(env, ENV_STATES)
            else:
                env = max(env, ENV_WORLD)
        fp = Footprint(
            nodes=tuple(sorted(recorder.nodes)),
            env_level=env,
            prop_gates=tuple(gates),
            time_read=recorder.time_read,
            rearms=frozenset(recorder.rearms),
            events=frozenset(recorder.events),
            delays=tuple(recorder.delays),
        )
        chain = _CachedChain(
            footprint=fp,
            value=footprint_value(root, fp),
            budget_given=budget,
            truncated=recorder.truncated,
            max_pending=recorder.max_pending,
            states=outcome.states,
            leaf_patches=tuple(
                _make_patch(root, world) for world in outcome.leaf_worlds
            ),
            violations=tuple(
                (v.property_name, v.path, _make_patch(root, v.world))
                for v in outcome.violations
            ),
        )
        key = action.key()
        with self._lock:
            chains = self._entries.get(key)
            if chains is None:
                chains = self._entries[key] = []
            chains.append(chain)
            self._count += 1
            self._entries.move_to_end(key)
            while len(chains) > self.variants_per_action:
                chains.pop(0)
                self._count -= 1
                self.evictions += 1
            while self._count > self.max_entries and len(self._entries) > 1:
                old_key, old_chains = self._entries.popitem(last=False)
                if old_key == key:
                    # Never evict the entry just stored; put it back.
                    self._entries[old_key] = old_chains
                    self._entries.move_to_end(old_key)
                    break
                self._count -= len(old_chains)
                self.evictions += len(old_chains)
            self.stores += 1

    # -- reporting ------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Memo effectiveness counters, JSON-able."""
        with self._lock:
            return {
                "entries": self._count,
                "actions": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "invalidation_reasons": dict(self.invalidation_reasons),
                "rebase_errors": self.rebase_errors,
                "hit_rate": self.hit_rate,
            }


__all__ = ["ChainMemo", "ChainRecorder", "Footprint", "footprint_value"]
