"""Random-walk simulation over world states.

Section 3.3.2: integrating network performance information "into a
state-space exploration algorithm turns a model checker into a
simulator that runs a large number of simulations."  Where exhaustive
exploration is too wide (deep horizons, many concurrent events),
:class:`RandomWalkSimulator` samples executions instead: each walk
picks a uniformly random enabled action at every step, so a batch of
walks estimates the *distribution* of a metric over possible futures
rather than its exact envelope.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .explorer import Explorer
from .world import WorldState

Metric = Callable[[WorldState], float]


@dataclass
class Walk:
    """One sampled execution."""

    final_world: WorldState
    steps: int
    ended_early: bool  # no enabled actions before the depth bound


@dataclass
class SampleReport:
    """A batch of walks plus optional metric samples."""

    walks: List[Walk] = field(default_factory=list)
    metric_samples: List[float] = field(default_factory=list)

    @property
    def mean_metric(self) -> Optional[float]:
        if not self.metric_samples:
            return None
        return sum(self.metric_samples) / len(self.metric_samples)

    @property
    def mean_final_time(self) -> Optional[float]:
        if not self.walks:
            return None
        return sum(w.final_world.time for w in self.walks) / len(self.walks)


class RandomWalkSimulator:
    """Samples random executions of a world."""

    def __init__(self, explorer: Explorer, seed: int = 0) -> None:
        self.explorer = explorer
        self._rng = random.Random(seed)

    def walk(self, world: WorldState, max_steps: int = 20) -> Walk:
        """One random execution of up to ``max_steps`` actions."""
        current = world
        steps = 0
        while steps < max_steps:
            actions = self.explorer.enabled_actions(current)
            if not actions:
                return Walk(final_world=current, steps=steps, ended_early=True)
            action = actions[self._rng.randrange(len(actions))]
            successors = self.explorer.successors(current, action)
            if not successors:
                return Walk(final_world=current, steps=steps, ended_early=True)
            current = successors[self._rng.randrange(len(successors))]
            steps += 1
        return Walk(final_world=current, steps=steps, ended_early=False)

    def sample(
        self,
        world: WorldState,
        walks: int = 32,
        max_steps: int = 20,
        metric: Optional[Metric] = None,
    ) -> SampleReport:
        """Run ``walks`` independent executions; evaluate ``metric`` on
        each final world."""
        report = SampleReport()
        for _ in range(walks):
            outcome = self.walk(world, max_steps=max_steps)
            report.walks.append(outcome)
            if metric is not None:
                report.metric_samples.append(float(metric(outcome.final_world)))
        return report


__all__ = ["RandomWalkSimulator", "Walk", "SampleReport"]
