"""Explicit-state exploration of world states.

The :class:`Explorer` enumerates what can happen next from a world
(deliveries per applicable handler, timer firings, optional drops and
generic-node injections), computes successor worlds by running the real
handler code in a sandbox, and performs bounded BFS with visited-state
hashing.  Exposed choices inside handlers are *branching points*: every
candidate value yields its own successor (Section 3.1's
non-deterministic automaton semantics).

Given a :class:`~repro.model.NetworkModel`, successor worlds advance
their time estimate by predicted delivery delays — "integrating this
information into a state-space exploration algorithm turns a model
checker into a simulator" (Section 3.3.2).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..statemachine.context import ChoiceRequested, SandboxContext
from ..statemachine.service import Service
from .actions import Action, DeliverAction, DropAction, InjectAction, TimerAction
from .properties import SafetyProperty, violated_properties
from .world import InFlightMessage, PendingTimer, WorldState

ServiceFactory = Callable[[int], Service]

DEFAULT_STEP_TIME = 0.05


class ExplorationError(Exception):
    """Raised on malformed exploration requests."""


@dataclass
class Violation:
    """A safety property violated along an explored path."""

    property_name: str
    path: Tuple[Action, ...]
    world: WorldState

    @property
    def initial_action(self) -> Action:
        """The first action of the violating path (what steering must avoid)."""
        return self.path[0]

    def describe(self) -> str:
        steps = " ; ".join(a.describe() for a in self.path)
        return f"{self.property_name} after [{steps}]"


@dataclass
class ExplorationResult:
    """Outcome of a bounded BFS."""

    states_explored: int = 0
    transitions: int = 0
    violations: List[Violation] = field(default_factory=list)
    max_depth: int = 0
    truncated: bool = False

    @property
    def found_violation(self) -> bool:
        return bool(self.violations)


class ServicePool:
    """Per-node service instances reused across materializations.

    The seed hot path re-ran the factory (plus a full ``restore``) once
    per in-flight message just to list applicable handlers.  The pool
    runs the factory once per node and re-installs checkpoints via
    ``restore()`` on every use.  Aliasing rule: ``restore_state``
    deep-copies, so a pooled instance never holds references into world
    state dicts — it is exactly as isolated as a fresh instance, as
    long as services keep all dispatch-mutable state in
    ``state_fields`` (the same contract checkpointing already demands).
    """

    def __init__(self, factory: ServiceFactory) -> None:
        self.factory = factory
        self._instances: Dict[int, Service] = {}
        # The state dict an instance currently mirrors, while no caller
        # may have mutated it since (read-only acquires only).
        self._clean: Dict[int, Optional[Dict[str, Any]]] = {}
        self.factory_calls = 0
        self.restores = 0
        self.restores_skipped = 0

    def acquire(self, world: WorldState, node_id: int, readonly: bool = False) -> Service:
        """A service for ``node_id`` restored to its state in ``world``.

        ``readonly`` promises the caller only *reads* the service (e.g.
        listing applicable handlers — guards must not mutate state, the
        same contract exploration already demands).  Consecutive
        acquires against the same state dict then skip the restore;
        a non-readonly acquire marks the instance dirty.
        """
        service = self._instances.get(node_id)
        if service is None:
            service = self.factory(node_id)
            self._instances[node_id] = service
            self.factory_calls += 1
        service.ctx = None
        state = world.state_of(node_id)
        if self._clean.get(node_id) is state:
            self.restores_skipped += 1
        else:
            service.restore(state)
            self.restores += 1
        self._clean[node_id] = state if readonly else None
        return service

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires that skipped the restore (clean hits)."""
        total = self.restores + self.restores_skipped
        return self.restores_skipped / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Pool effectiveness counters, JSON-able."""
        return {
            "factory_calls": self.factory_calls,
            "restores": self.restores,
            "restores_skipped": self.restores_skipped,
            "hit_rate": self.hit_rate,
        }


class Explorer:
    """Enumerates and applies enabled actions over world states."""

    def __init__(
        self,
        service_factory: ServiceFactory,
        properties: Iterable[SafetyProperty] = (),
        network_model: Optional[object] = None,
        include_drops: bool = False,
        generic_node: Optional[object] = None,
        rng_seed: int = 0,
        max_choice_variants: int = 64,
        service_pooling: bool = True,
    ) -> None:
        self.service_factory = service_factory
        self.properties = list(properties)
        self.network_model = network_model
        self.include_drops = include_drops
        self.generic_node = generic_node
        self.rng_seed = rng_seed
        self.max_choice_variants = max_choice_variants
        self.pool: Optional[ServicePool] = (
            ServicePool(service_factory) if service_pooling else None
        )
        # Chain-memo footprint recorder; installed per chain by the
        # predictor's memoized path, None on every other code path so
        # the hot path pays one attribute check.
        self.recorder = None

    def spawn(self) -> "Explorer":
        """A configuration clone with its own service pool.

        Pooled services are not thread-safe; the parallel predictor
        gives each worker chain its own spawned explorer.
        """
        return Explorer(
            self.service_factory,
            properties=self.properties,
            network_model=self.network_model,
            include_drops=self.include_drops,
            generic_node=self.generic_node,
            rng_seed=self.rng_seed,
            max_choice_variants=self.max_choice_variants,
            service_pooling=self.pool is not None,
        )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(
        self, world: WorldState, node_id: int, readonly: bool = False
    ) -> Service:
        """Instantiate the node's service from its checkpoint in ``world``."""
        if self.recorder is not None:
            self.recorder.nodes.add(node_id)
        if self.pool is not None:
            return self.pool.acquire(world, node_id, readonly=readonly)
        service = self.service_factory(node_id)
        service.restore(world.state_of(node_id))
        return service

    # ------------------------------------------------------------------
    # Enabled actions
    # ------------------------------------------------------------------

    def enabled_actions(
        self,
        world: WorldState,
        only_event_keys: Optional[set] = None,
    ) -> List[Action]:
        """All actions possible from ``world``, in deterministic order.

        ``only_event_keys`` restricts enumeration to actions consuming
        one of the given event keys (message/timer ``key()`` tuples).
        Consequence prediction passes its causal frontier here so
        non-frontier destinations never materialize; generic-node
        injections consume no event and are skipped under a filter.
        """
        actions: List[Action] = []
        seen_messages = set()
        recorder = self.recorder
        # Message and timer keys are structurally disjoint (a message
        # key is (src, dst:int, payload); a timer key is (node,
        # name:str, payload)), so the filter splits once and whole
        # scans are skipped when the frontier has no key of that kind.
        msg_filter = timer_filter = None
        if only_event_keys is not None:
            msg_filter = {k for k in only_event_keys if type(k[1]) is int}
            timer_filter = only_event_keys - msg_filter
        # Each destination materializes once per world, shared across
        # all its in-flight messages (guards must not mutate state).
        materialized: Dict[int, Service] = {}
        if msg_filter is None or msg_filter:
            for message in world.inflight:
                key = message.key()
                if key in seen_messages:
                    continue  # identical duplicates are equivalent to explore once
                seen_messages.add(key)
                if msg_filter is not None and key not in msg_filter:
                    continue
                if recorder is not None:
                    # The up/known checks below read this destination's
                    # membership, so it is part of the footprint even if
                    # it never materializes.
                    recorder.nodes.add(message.dst)
                if not world.is_up(message.dst) or message.dst not in world.node_states:
                    continue
                service = materialized.get(message.dst)
                if service is None:
                    service = self.materialize(world, message.dst, readonly=True)
                    materialized[message.dst] = service
                for spec in service.applicable_handlers(message.src, message.msg):
                    actions.append(
                        DeliverAction(src=message.src, dst=message.dst,
                                      msg=message.msg, handler=spec.name)
                    )
        if timer_filter is None or timer_filter:
            for timer in world.timers:
                if timer_filter is not None and timer.key() not in timer_filter:
                    continue
                if recorder is not None:
                    recorder.nodes.add(timer.node)
                if world.is_up(timer.node) and timer.node in world.node_states:
                    actions.append(TimerAction(node=timer.node, name=timer.name, payload=timer.payload))
        if self.include_drops and (msg_filter is None or msg_filter):
            seen_messages.clear()
            for message in world.inflight:
                key = message.key()
                if key in seen_messages:
                    continue
                seen_messages.add(key)
                if msg_filter is not None and key not in msg_filter:
                    continue
                actions.append(DropAction(src=message.src, dst=message.dst, msg=message.msg))
        if self.generic_node is not None and only_event_keys is None:
            for src, dst, msg in self.generic_node.possible_messages(world.live_nodes()):
                actions.append(InjectAction(src=src, dst=dst, msg=msg))
        return actions

    # ------------------------------------------------------------------
    # Applying actions
    # ------------------------------------------------------------------

    def successors(self, world: WorldState, action: Action) -> List[WorldState]:
        """All successor worlds of applying ``action`` (one per inner
        choice-script variant)."""
        if isinstance(action, DeliverAction):
            return self._apply_deliver(world, action)
        if isinstance(action, TimerAction):
            return self._apply_timer(world, action)
        if isinstance(action, DropAction):
            return [
                world.evolve(
                    remove_inflight=InFlightMessage(action.src, action.dst, action.msg),
                    time_delta=0.0,
                )
            ]
        if isinstance(action, InjectAction):
            return [
                world.evolve(
                    add_inflight=[InFlightMessage(action.src, action.dst, action.msg)],
                    time_delta=0.0,
                )
            ]
        raise ExplorationError(f"unknown action type {type(action).__name__}")

    def _delivery_delay(self, src: int, dst: int, msg: Any) -> float:
        if self.network_model is None:
            return DEFAULT_STEP_TIME
        size = msg.wire_size() if hasattr(msg, "wire_size") else 1024
        delay = self.network_model.transfer_time(src, dst, size)
        if self.recorder is not None:
            self.recorder.delays.append((src, dst, size, delay))
        return delay

    def _apply_deliver(self, world: WorldState, action: DeliverAction) -> List[WorldState]:
        def invoke(service: Service) -> None:
            specs = [s for s in service.applicable_handlers(action.src, action.msg)
                     if s.name == action.handler]
            if not specs:
                # Guard no longer passes after restoration drift; treat
                # the delivery as a no-op rather than crashing exploration.
                return
            service.invoke_handler(specs[0], action.src, action.msg)

        variants = self._invoke_variants(world, action.dst, invoke)
        delay = self._delivery_delay(action.src, action.dst, action.msg)
        removed = InFlightMessage(action.src, action.dst, action.msg)
        return [
            self._build_successor(world, action.dst, checkpoint, effects,
                                  remove_inflight=removed, time_delta=delay)
            for checkpoint, effects in variants
        ]

    def _apply_timer(self, world: WorldState, action: TimerAction) -> List[WorldState]:
        matching = [t for t in world.timers
                    if t.node == action.node and t.name == action.name]
        if not matching:
            raise ExplorationError(f"timer not pending: {action!r}")
        timer = matching[0]

        def invoke(service: Service) -> None:
            service.fire_timer(action.name, action.payload)

        variants = self._invoke_variants(world, action.node, invoke)
        return [
            self._build_successor(
                world, action.node, checkpoint, effects,
                remove_timers_extra=[(timer.node, timer.name)],
                time_delta=max(timer.delay, 0.0) or DEFAULT_STEP_TIME,
            )
            for checkpoint, effects in variants
        ]

    def _invoke_variants(
        self,
        world: WorldState,
        node_id: int,
        invoke: Callable[[Service], None],
    ) -> List[Tuple[Dict[str, Any], Any]]:
        """Run a handler under every inner choice-script variant.

        Each exposed choice reached inside the handler multiplies the
        branches (bounded by ``max_choice_variants``).  Returns a list
        of ``(new_checkpoint, effects)``.
        """
        results: List[Tuple[Dict[str, Any], Any]] = []
        stack: List[List[Any]] = [[]]
        expansions = 0
        recorder = self.recorder
        while stack:
            script = stack.pop()
            service = self.materialize(world, node_id)
            ctx = SandboxContext(
                node_id, now=world.time, choice_script=list(script),
                rng_seed=self.rng_seed,
            )
            service.ctx = ctx
            branched = False
            try:
                invoke(service)
            except ChoiceRequested as request:
                branched = True
                expansions += 1
                # Past the bound, the branch family is dropped entirely.
                if expansions <= self.max_choice_variants:
                    for candidate in reversed(request.point.candidates):
                        stack.append(list(request.consumed) + [candidate])
            if recorder is not None and ctx.time_read:
                recorder.time_read = True
            if not branched:
                results.append((service.checkpoint(), ctx.effects))
        return results

    def _build_successor(
        self,
        world: WorldState,
        node_id: int,
        checkpoint: Dict[str, Any],
        effects,
        remove_inflight: Optional[InFlightMessage] = None,
        remove_timers_extra: Iterable[Tuple[int, str]] = (),
        time_delta: float = DEFAULT_STEP_TIME,
    ) -> WorldState:
        add_inflight = [
            InFlightMessage(src=node_id, dst=dst, msg=msg) for dst, msg in effects.sent
        ]
        remove_timers = [(node_id, name) for name in effects.timers_cancelled]
        remove_timers.extend(remove_timers_extra)
        add_timers = [
            PendingTimer(node=node_id, name=name, payload=payload, delay=delay)
            for name, delay, payload in effects.timers_set
        ]
        if self.recorder is not None:
            # Every (node, name) this step cancels, fires, or re-arms:
            # evolve() removes matching *root* timers wholesale, so the
            # memo must pin their (key, delay) sequence in the root.
            self.recorder.rearms.update(remove_timers)
            self.recorder.rearms.update((t.node, t.name) for t in add_timers)
        # checkpoint comes from Service.checkpoint(), already a fresh
        # deep copy nothing else aliases, so the world adopts it as-is.
        return world.evolve(
            node_id=node_id,
            new_state=checkpoint,
            remove_inflight=remove_inflight,
            add_inflight=add_inflight,
            remove_timers=remove_timers,
            add_timers=add_timers,
            time_delta=time_delta,
            copy_state=False,
        )

    # ------------------------------------------------------------------
    # Property checking and search
    # ------------------------------------------------------------------

    def check(self, world: WorldState) -> List[str]:
        """Names of properties violated in ``world``."""
        names = violated_properties(world, self.properties)
        # Verdicts are cached on the world itself now; successors read
        # this world's cache, never its ancestry, so the parent link
        # can go (keeps retained evolve chains bounded).
        world._prop_parent = None
        return names

    def bfs(
        self,
        root: WorldState,
        max_depth: int = 5,
        max_states: int = 10_000,
    ) -> ExplorationResult:
        """Bounded breadth-first exploration from ``root``.

        Evaluates every safety property in every visited state; returns
        counts, violations (with their paths), and whether the state
        budget truncated the search.
        """
        result = ExplorationResult()
        visited = {root.digest()}
        result.states_explored = 1
        for name in self.check(root):
            result.violations.append(Violation(property_name=name, path=(), world=root))
        frontier: deque = deque([(root, ())])
        while frontier:
            world, path = frontier.popleft()
            relative_depth = world.depth - root.depth
            result.max_depth = max(result.max_depth, relative_depth)
            if relative_depth >= max_depth:
                continue
            for action in self.enabled_actions(world):
                for successor in self.successors(world, action):
                    result.transitions += 1
                    key = successor.digest()
                    if key in visited:
                        continue
                    if result.states_explored >= max_states:
                        result.truncated = True
                        return result
                    visited.add(key)
                    result.states_explored += 1
                    new_path = path + (action,)
                    for name in self.check(successor):
                        result.violations.append(
                            Violation(property_name=name, path=new_path, world=successor)
                        )
                    frontier.append((successor, new_path))
        return result


def _message_key_counter(world: WorldState) -> Counter:
    """Memoized multiset of in-flight message keys for one world.

    Worlds are treated as frozen once exploration reads them (the same
    contract digesting already relies on), so the counter is computed
    once per world — it serves as ``after`` for one edge and ``before``
    for every outgoing edge of that successor.
    """
    cached = getattr(world, "_msg_key_counter", None)
    if cached is None:
        cached = Counter(m.key() for m in world.inflight)
        world._msg_key_counter = cached
    return cached


def _timer_key_set(world: WorldState) -> set:
    """Memoized set of pending-timer keys for one world."""
    cached = getattr(world, "_timer_key_set", None)
    if cached is None:
        cached = {t.key() for t in world.timers}
        world._timer_key_set = cached
    return cached


def created_event_keys(before: WorldState, after: WorldState) -> set:
    """Keys of messages/timers present in ``after`` but not ``before``.

    Used by consequence prediction to follow causal chains: the events
    an action *created* are exactly what its chain may consume next.
    """
    created = set((_message_key_counter(after) - _message_key_counter(before)).keys())
    before_timers = _timer_key_set(before)
    created.update(k for k in _timer_key_set(after) if k not in before_timers)
    return created


def consumed_event_key(action: Action) -> Optional[Tuple]:
    """The event key an action consumes (``None`` for injections).

    Derived from the action's memoized ``key()`` (whose last payload
    component is the frozen message/timer payload), so the payload is
    frozen at most once per action object.
    """
    if isinstance(action, (DeliverAction, DropAction)):
        return (action.src, action.dst, action.key()[3])
    if isinstance(action, TimerAction):
        return (action.node, action.name, action.key()[3])
    return None


__all__ = [
    "Explorer",
    "ServicePool",
    "ExplorationError",
    "ExplorationResult",
    "Violation",
    "ServiceFactory",
    "created_event_keys",
    "consumed_event_key",
    "DEFAULT_STEP_TIME",
]
