"""Explicit-state exploration of world states.

The :class:`Explorer` enumerates what can happen next from a world
(deliveries per applicable handler, timer firings, optional drops and
generic-node injections), computes successor worlds by running the real
handler code in a sandbox, and performs bounded BFS with visited-state
hashing.  Exposed choices inside handlers are *branching points*: every
candidate value yields its own successor (Section 3.1's
non-deterministic automaton semantics).

Given a :class:`~repro.model.NetworkModel`, successor worlds advance
their time estimate by predicted delivery delays — "integrating this
information into a state-space exploration algorithm turns a model
checker into a simulator" (Section 3.3.2).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..statemachine.context import ChoiceRequested, SandboxContext
from ..statemachine.service import Service
from .actions import Action, DeliverAction, DropAction, InjectAction, TimerAction
from .properties import SafetyProperty, violated_properties
from .world import InFlightMessage, PendingTimer, WorldState

ServiceFactory = Callable[[int], Service]

DEFAULT_STEP_TIME = 0.05


class ExplorationError(Exception):
    """Raised on malformed exploration requests."""


@dataclass
class Violation:
    """A safety property violated along an explored path."""

    property_name: str
    path: Tuple[Action, ...]
    world: WorldState

    @property
    def initial_action(self) -> Action:
        """The first action of the violating path (what steering must avoid)."""
        return self.path[0]

    def describe(self) -> str:
        steps = " ; ".join(a.describe() for a in self.path)
        return f"{self.property_name} after [{steps}]"


@dataclass
class ExplorationResult:
    """Outcome of a bounded BFS."""

    states_explored: int = 0
    transitions: int = 0
    violations: List[Violation] = field(default_factory=list)
    max_depth: int = 0
    truncated: bool = False

    @property
    def found_violation(self) -> bool:
        return bool(self.violations)


class Explorer:
    """Enumerates and applies enabled actions over world states."""

    def __init__(
        self,
        service_factory: ServiceFactory,
        properties: Iterable[SafetyProperty] = (),
        network_model: Optional[object] = None,
        include_drops: bool = False,
        generic_node: Optional[object] = None,
        rng_seed: int = 0,
        max_choice_variants: int = 64,
    ) -> None:
        self.service_factory = service_factory
        self.properties = list(properties)
        self.network_model = network_model
        self.include_drops = include_drops
        self.generic_node = generic_node
        self.rng_seed = rng_seed
        self.max_choice_variants = max_choice_variants

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self, world: WorldState, node_id: int) -> Service:
        """Instantiate the node's service from its checkpoint in ``world``."""
        service = self.service_factory(node_id)
        service.restore(world.state_of(node_id))
        return service

    # ------------------------------------------------------------------
    # Enabled actions
    # ------------------------------------------------------------------

    def enabled_actions(self, world: WorldState) -> List[Action]:
        """All actions possible from ``world``, in deterministic order."""
        actions: List[Action] = []
        seen_messages = set()
        for message in world.inflight:
            key = message.key()
            if key in seen_messages:
                continue  # identical duplicates are equivalent to explore once
            seen_messages.add(key)
            if not world.is_up(message.dst) or message.dst not in world.node_states:
                continue
            service = self.materialize(world, message.dst)
            for spec in service.applicable_handlers(message.src, message.msg):
                actions.append(
                    DeliverAction(src=message.src, dst=message.dst,
                                  msg=message.msg, handler=spec.name)
                )
        for timer in world.timers:
            if world.is_up(timer.node) and timer.node in world.node_states:
                actions.append(TimerAction(node=timer.node, name=timer.name, payload=timer.payload))
        if self.include_drops:
            seen_messages.clear()
            for message in world.inflight:
                key = message.key()
                if key in seen_messages:
                    continue
                seen_messages.add(key)
                actions.append(DropAction(src=message.src, dst=message.dst, msg=message.msg))
        if self.generic_node is not None:
            for src, dst, msg in self.generic_node.possible_messages(world.live_nodes()):
                actions.append(InjectAction(src=src, dst=dst, msg=msg))
        return actions

    # ------------------------------------------------------------------
    # Applying actions
    # ------------------------------------------------------------------

    def successors(self, world: WorldState, action: Action) -> List[WorldState]:
        """All successor worlds of applying ``action`` (one per inner
        choice-script variant)."""
        if isinstance(action, DeliverAction):
            return self._apply_deliver(world, action)
        if isinstance(action, TimerAction):
            return self._apply_timer(world, action)
        if isinstance(action, DropAction):
            return [
                world.evolve(
                    remove_inflight=InFlightMessage(action.src, action.dst, action.msg),
                    time_delta=0.0,
                )
            ]
        if isinstance(action, InjectAction):
            return [
                world.evolve(
                    add_inflight=[InFlightMessage(action.src, action.dst, action.msg)],
                    time_delta=0.0,
                )
            ]
        raise ExplorationError(f"unknown action type {type(action).__name__}")

    def _delivery_delay(self, src: int, dst: int, msg: Any) -> float:
        if self.network_model is None:
            return DEFAULT_STEP_TIME
        size = msg.wire_size() if hasattr(msg, "wire_size") else 1024
        return self.network_model.transfer_time(src, dst, size)

    def _apply_deliver(self, world: WorldState, action: DeliverAction) -> List[WorldState]:
        def invoke(service: Service) -> None:
            specs = [s for s in service.applicable_handlers(action.src, action.msg)
                     if s.name == action.handler]
            if not specs:
                # Guard no longer passes after restoration drift; treat
                # the delivery as a no-op rather than crashing exploration.
                return
            service.invoke_handler(specs[0], action.src, action.msg)

        variants = self._invoke_variants(world, action.dst, invoke)
        delay = self._delivery_delay(action.src, action.dst, action.msg)
        removed = InFlightMessage(action.src, action.dst, action.msg)
        return [
            self._build_successor(world, action.dst, checkpoint, effects,
                                  remove_inflight=removed, time_delta=delay)
            for checkpoint, effects in variants
        ]

    def _apply_timer(self, world: WorldState, action: TimerAction) -> List[WorldState]:
        matching = [t for t in world.timers
                    if t.node == action.node and t.name == action.name]
        if not matching:
            raise ExplorationError(f"timer not pending: {action!r}")
        timer = matching[0]

        def invoke(service: Service) -> None:
            service.fire_timer(action.name, action.payload)

        variants = self._invoke_variants(world, action.node, invoke)
        return [
            self._build_successor(
                world, action.node, checkpoint, effects,
                remove_timers_extra=[(timer.node, timer.name)],
                time_delta=max(timer.delay, 0.0) or DEFAULT_STEP_TIME,
            )
            for checkpoint, effects in variants
        ]

    def _invoke_variants(
        self,
        world: WorldState,
        node_id: int,
        invoke: Callable[[Service], None],
    ) -> List[Tuple[Dict[str, Any], Any]]:
        """Run a handler under every inner choice-script variant.

        Each exposed choice reached inside the handler multiplies the
        branches (bounded by ``max_choice_variants``).  Returns a list
        of ``(new_checkpoint, effects)``.
        """
        results: List[Tuple[Dict[str, Any], Any]] = []
        stack: List[List[Any]] = [[]]
        expansions = 0
        while stack:
            script = stack.pop()
            service = self.materialize(world, node_id)
            ctx = SandboxContext(
                node_id, now=world.time, choice_script=list(script),
                rng_seed=self.rng_seed,
            )
            service.ctx = ctx
            try:
                invoke(service)
            except ChoiceRequested as request:
                expansions += 1
                if expansions > self.max_choice_variants:
                    continue  # bound the blow-up; drop this branch family
                for candidate in reversed(request.point.candidates):
                    stack.append(list(request.consumed) + [candidate])
                continue
            results.append((service.checkpoint(), ctx.effects))
        return results

    def _build_successor(
        self,
        world: WorldState,
        node_id: int,
        checkpoint: Dict[str, Any],
        effects,
        remove_inflight: Optional[InFlightMessage] = None,
        remove_timers_extra: Iterable[Tuple[int, str]] = (),
        time_delta: float = DEFAULT_STEP_TIME,
    ) -> WorldState:
        add_inflight = [
            InFlightMessage(src=node_id, dst=dst, msg=msg) for dst, msg in effects.sent
        ]
        remove_timers = [(node_id, name) for name in effects.timers_cancelled]
        remove_timers.extend(remove_timers_extra)
        add_timers = [
            PendingTimer(node=node_id, name=name, payload=payload, delay=delay)
            for name, delay, payload in effects.timers_set
        ]
        return world.evolve(
            node_id=node_id,
            new_state=checkpoint,
            remove_inflight=remove_inflight,
            add_inflight=add_inflight,
            remove_timers=remove_timers,
            add_timers=add_timers,
            time_delta=time_delta,
        )

    # ------------------------------------------------------------------
    # Property checking and search
    # ------------------------------------------------------------------

    def check(self, world: WorldState) -> List[str]:
        """Names of properties violated in ``world``."""
        return violated_properties(world, self.properties)

    def bfs(
        self,
        root: WorldState,
        max_depth: int = 5,
        max_states: int = 10_000,
    ) -> ExplorationResult:
        """Bounded breadth-first exploration from ``root``.

        Evaluates every safety property in every visited state; returns
        counts, violations (with their paths), and whether the state
        budget truncated the search.
        """
        result = ExplorationResult()
        visited = {root.digest()}
        result.states_explored = 1
        for name in self.check(root):
            result.violations.append(Violation(property_name=name, path=(), world=root))
        frontier: deque = deque([(root, ())])
        while frontier:
            world, path = frontier.popleft()
            relative_depth = world.depth - root.depth
            result.max_depth = max(result.max_depth, relative_depth)
            if relative_depth >= max_depth:
                continue
            for action in self.enabled_actions(world):
                for successor in self.successors(world, action):
                    result.transitions += 1
                    key = successor.digest()
                    if key in visited:
                        continue
                    if result.states_explored >= max_states:
                        result.truncated = True
                        return result
                    visited.add(key)
                    result.states_explored += 1
                    new_path = path + (action,)
                    for name in self.check(successor):
                        result.violations.append(
                            Violation(property_name=name, path=new_path, world=successor)
                        )
                    frontier.append((successor, new_path))
        return result


def created_event_keys(before: WorldState, after: WorldState) -> set:
    """Keys of messages/timers present in ``after`` but not ``before``.

    Used by consequence prediction to follow causal chains: the events
    an action *created* are exactly what its chain may consume next.
    """
    before_msgs = Counter(m.key() for m in before.inflight)
    after_msgs = Counter(m.key() for m in after.inflight)
    created = set((after_msgs - before_msgs).keys())
    before_timers = {t.key() for t in before.timers}
    for timer in after.timers:
        if timer.key() not in before_timers:
            created.add(timer.key())
    return created


def consumed_event_key(action: Action) -> Optional[Tuple]:
    """The event key an action consumes (``None`` for injections)."""
    from ..statemachine.serialization import freeze

    if isinstance(action, (DeliverAction, DropAction)):
        return (action.src, action.dst, freeze(action.msg))
    if isinstance(action, TimerAction):
        return (action.node, action.name, freeze(action.payload))
    return None


__all__ = [
    "Explorer",
    "ExplorationError",
    "ExplorationResult",
    "Violation",
    "ServiceFactory",
    "created_event_keys",
    "consumed_event_key",
    "DEFAULT_STEP_TIME",
]
