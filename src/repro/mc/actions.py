"""Actions the explorer can take from a world state.

Enabled actions mirror what can happen next in the real deployment:
delivering an in-flight message to one of its applicable handlers,
firing a pending timer, dropping a message (universally possible under
the fault model, and exactly what execution steering exploits), or a
generic-node injection (Section 3.3.2's under-specified environment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..statemachine.serialization import freeze


def _memoized_key(action: Any, build) -> Tuple:
    """Cache an action's key on the (frozen) instance.

    Keys are consulted repeatedly on the prediction hot path (causal
    frontiers, report indexing, steering dedup); the payload ``freeze``
    should run once per action object, not once per consultation.
    """
    key = getattr(action, "_key", None)
    if key is None:
        key = build()
        object.__setattr__(action, "_key", key)
    return key


@dataclass(frozen=True)
class DeliverAction:
    """Deliver an in-flight message to a specific handler of ``dst``."""

    src: int
    dst: int
    msg: Any
    handler: str

    def key(self) -> Tuple:
        """Stable identity (used by steering filters and dedup)."""
        return _memoized_key(
            self, lambda: ("deliver", self.src, self.dst, freeze(self.msg), self.handler)
        )

    def describe(self) -> str:
        return f"deliver {type(self.msg).__name__} {self.src}->{self.dst} via {self.handler}"


@dataclass(frozen=True)
class TimerAction:
    """Fire a pending timer at ``node``."""

    node: int
    name: str
    payload: Any = None

    def key(self) -> Tuple:
        return _memoized_key(
            self, lambda: ("timer", self.node, self.name, freeze(self.payload))
        )

    def describe(self) -> str:
        return f"timer {self.name} at {self.node}"


@dataclass(frozen=True)
class DropAction:
    """Lose an in-flight message (fault-model action)."""

    src: int
    dst: int
    msg: Any

    def key(self) -> Tuple:
        return _memoized_key(
            self, lambda: ("drop", self.src, self.dst, freeze(self.msg))
        )

    def describe(self) -> str:
        return f"drop {type(self.msg).__name__} {self.src}->{self.dst}"


@dataclass(frozen=True)
class InjectAction:
    """A generic (dummy) node sends a havoc message to ``dst``."""

    src: int
    dst: int
    msg: Any

    def key(self) -> Tuple:
        return _memoized_key(
            self, lambda: ("inject", self.src, self.dst, freeze(self.msg))
        )

    def describe(self) -> str:
        return f"inject {type(self.msg).__name__} {self.src}->{self.dst}"


Action = Any  # union of the dataclasses above


def action_key(action: Action) -> Tuple:
    """Canonical identity of any action."""
    return action.key()


__all__ = [
    "DeliverAction",
    "TimerAction",
    "DropAction",
    "InjectAction",
    "Action",
    "action_key",
]
