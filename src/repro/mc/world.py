"""World states for model checking.

A :class:`WorldState` is CrystalBall's unit of exploration: the
checkpointed service state of every known node, the set of in-flight
messages, the pending timers, and which nodes are down.  Worlds are
plain data, cloneable, and hashable via a stable digest so the explorer
can recognize revisits.

Time in a world is an *estimate*: when the explorer is given a network
model it advances ``time`` by predicted delivery delays, turning the
model checker into a simulator (Section 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..statemachine.serialization import freeze, snapshot_value


@dataclass(frozen=True)
class InFlightMessage:
    """A message sent but not yet delivered."""

    src: int
    dst: int
    msg: Any

    def key(self) -> Tuple:
        """Canonical identity used for matching and digests."""
        return (self.src, self.dst, freeze(self.msg))


@dataclass(frozen=True)
class PendingTimer:
    """An armed timer in some node's runtime.

    ``delay`` is the interval it was armed with, kept for performance
    estimation; in exploration any pending timer may fire next.
    """

    node: int
    name: str
    payload: Any
    delay: float = 0.0

    def key(self) -> Tuple:
        return (self.node, self.name, freeze(self.payload))


class WorldState:
    """A global snapshot: node states + in-flight events."""

    def __init__(
        self,
        node_states: Dict[int, Dict[str, Any]],
        inflight: Iterable[InFlightMessage] = (),
        timers: Iterable[PendingTimer] = (),
        down: Iterable[int] = (),
        time: float = 0.0,
        depth: int = 0,
        copy_states: bool = True,
    ) -> None:
        # State dicts inside a world are treated as immutable: services
        # are always *restored* from them (which copies) and never hold
        # references into them.  ``copy_states=False`` lets internal
        # paths (clone/evolve, checkpoints that are already copies)
        # share them, keeping successor generation O(changed node)
        # instead of O(all nodes).
        if copy_states:
            self.node_states = {
                nid: snapshot_value(state) for nid, state in node_states.items()
            }
        else:
            self.node_states = dict(node_states)
        self.inflight: List[InFlightMessage] = list(inflight)
        self.timers: List[PendingTimer] = list(timers)
        self.down: FrozenSet[int] = frozenset(down)
        self.time = time
        self.depth = depth

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        """Known node ids, ascending."""
        return sorted(self.node_states)

    def state_of(self, node_id: int) -> Dict[str, Any]:
        """Checkpoint dict of one node (live reference, do not mutate)."""
        return self.node_states[node_id]

    def is_up(self, node_id: int) -> bool:
        """Whether the node is up in this world."""
        return node_id not in self.down

    def live_nodes(self) -> List[int]:
        """Known node ids that are up."""
        return [nid for nid in self.node_ids if nid not in self.down]

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def clone(self) -> "WorldState":
        """Deep copy (state dicts copied; messages/timers are immutable)."""
        return WorldState(
            node_states=self.node_states,
            inflight=self.inflight,
            timers=self.timers,
            down=self.down,
            time=self.time,
            depth=self.depth,
            copy_states=False,
        )

    def evolve(
        self,
        node_id: Optional[int] = None,
        new_state: Optional[Dict[str, Any]] = None,
        remove_inflight: Optional[InFlightMessage] = None,
        add_inflight: Iterable[InFlightMessage] = (),
        remove_timers: Iterable[Tuple[int, str]] = (),
        add_timers: Iterable[PendingTimer] = (),
        time_delta: float = 0.0,
    ) -> "WorldState":
        """Return a successor world with the given deltas applied.

        ``remove_inflight`` removes one instance matching by key (a
        multiset removal); ``remove_timers`` removes all timers with the
        given ``(node, name)``; ``add_timers`` then re-arms (so a re-armed
        timer supersedes its predecessor, matching live semantics).
        """
        successor = self.clone()
        if node_id is not None and new_state is not None:
            successor.node_states = dict(successor.node_states)
            successor.node_states[node_id] = snapshot_value(new_state)
        if remove_inflight is not None:
            target = remove_inflight.key()
            for index, message in enumerate(successor.inflight):
                if message.key() == target:
                    successor.inflight = (
                        successor.inflight[:index] + successor.inflight[index + 1:]
                    )
                    break
            else:
                raise ValueError(f"message not in flight: {remove_inflight!r}")
        removals = set(remove_timers)
        if removals:
            successor.timers = [
                t for t in successor.timers if (t.node, t.name) not in removals
            ]
        added = list(add_timers)
        if added:
            rearmed = {(t.node, t.name) for t in added}
            successor.timers = [
                t for t in successor.timers if (t.node, t.name) not in rearmed
            ] + added
        extra = list(add_inflight)
        if extra:
            successor.inflight = successor.inflight + extra
        successor.time = self.time + time_delta
        successor.depth = self.depth + 1
        return successor

    def with_down(self, down: Iterable[int]) -> "WorldState":
        """Copy of this world with a different down-set."""
        successor = self.clone()
        successor.down = frozenset(down)
        return successor

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def frozen(self) -> Tuple:
        """Canonical hashable form (time/depth excluded: they are
        bookkeeping, not protocol state)."""
        states = tuple(
            (nid, freeze(self.node_states[nid])) for nid in sorted(self.node_states)
        )
        messages = tuple(sorted((m.key() for m in self.inflight), key=repr))
        timers = tuple(sorted((t.key() for t in self.timers), key=repr))
        return (states, messages, timers, tuple(sorted(self.down)))

    def digest(self) -> str:
        """Stable hex digest for visited-state tracking."""
        return digest_of_frozen(self.frozen())

    def __repr__(self) -> str:
        return (
            f"WorldState(nodes={len(self.node_states)}, inflight={len(self.inflight)}, "
            f"timers={len(self.timers)}, down={sorted(self.down)}, depth={self.depth})"
        )


def digest_of_frozen(frozen_value: Tuple) -> str:
    """Digest an already-frozen composite value."""
    import hashlib

    return hashlib.sha256(repr(frozen_value).encode("utf-8")).hexdigest()[:16]


def world_from_services(services, node_hosts=None, down: Iterable[int] = (), time: float = 0.0) -> WorldState:
    """Build a world from live service instances (and optionally their
    hosting nodes, to capture pending timers)."""
    node_states = {service.node_id: service.checkpoint() for service in services}
    timers: List[PendingTimer] = []
    if node_hosts is not None:
        for host in node_hosts:
            for name, deadline, payload in host.pending_timers():
                timers.append(
                    PendingTimer(node=host.node_id, name=name, payload=payload,
                                 delay=max(0.0, deadline - time))
                )
    # checkpoint() already deep-copies, so the world can adopt the dicts.
    return WorldState(node_states=node_states, timers=timers, down=down, time=time,
                      copy_states=False)


__all__ = [
    "InFlightMessage",
    "PendingTimer",
    "WorldState",
    "world_from_services",
]
