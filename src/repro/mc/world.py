"""World states for model checking.

A :class:`WorldState` is CrystalBall's unit of exploration: the
checkpointed service state of every known node, the set of in-flight
messages, the pending timers, and which nodes are down.  Worlds are
plain data, cloneable, and hashable via a stable digest so the explorer
can recognize revisits.

Time in a world is an *estimate*: when the explorer is given a network
model it advances ``time`` by predicted delivery delays, turning the
model checker into a simulator (Section 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..statemachine.serialization import digest_of_frozen, freeze, snapshot_value


@dataclass(frozen=True)
class InFlightMessage:
    """A message sent but not yet delivered.

    ``key()`` and ``digest()`` are memoized per instance: worlds along
    an exploration path share message objects, so each payload is
    frozen once per object lifetime instead of once per world visit.
    """

    src: int
    dst: int
    msg: Any

    def key(self) -> Tuple:
        """Canonical identity used for matching and digests."""
        key = getattr(self, "_key", None)
        if key is None:
            key = (self.src, self.dst, freeze(self.msg))
            object.__setattr__(self, "_key", key)
        return key

    def digest(self) -> str:
        """Memoized digest of :meth:`key` (world-digest building block)."""
        cached = getattr(self, "_digest", None)
        if cached is None:
            cached = digest_of_frozen(self.key())
            object.__setattr__(self, "_digest", cached)
        return cached


@dataclass(frozen=True)
class PendingTimer:
    """An armed timer in some node's runtime.

    ``delay`` is the interval it was armed with, kept for performance
    estimation; in exploration any pending timer may fire next.
    """

    node: int
    name: str
    payload: Any
    delay: float = 0.0

    def key(self) -> Tuple:
        key = getattr(self, "_key", None)
        if key is None:
            key = (self.node, self.name, freeze(self.payload))
            object.__setattr__(self, "_key", key)
        return key

    def digest(self) -> str:
        """Memoized digest of :meth:`key` (world-digest building block)."""
        cached = getattr(self, "_digest", None)
        if cached is None:
            cached = digest_of_frozen(self.key())
            object.__setattr__(self, "_digest", cached)
        return cached


class WorldState:
    """A global snapshot: node states + in-flight events."""

    def __init__(
        self,
        node_states: Dict[int, Dict[str, Any]],
        inflight: Iterable[InFlightMessage] = (),
        timers: Iterable[PendingTimer] = (),
        down: Iterable[int] = (),
        time: float = 0.0,
        depth: int = 0,
        copy_states: bool = True,
    ) -> None:
        # State dicts inside a world are treated as immutable: services
        # are always *restored* from them (which copies) and never hold
        # references into them.  ``copy_states=False`` lets internal
        # paths (clone/evolve, checkpoints that are already copies)
        # share them, keeping successor generation O(changed node)
        # instead of O(all nodes).
        if copy_states:
            self.node_states = {
                nid: snapshot_value(state) for nid, state in node_states.items()
            }
        else:
            self.node_states = dict(node_states)
        self.inflight: List[InFlightMessage] = list(inflight)
        self.timers: List[PendingTimer] = list(timers)
        self.down: FrozenSet[int] = frozenset(down)
        self.time = time
        self.depth = depth
        # Per-node digest cache, filled lazily by digest() and pulled
        # from ancestors on demand: clone() records a parent link
        # instead of copying the cache, and _node_digest() walks that
        # chain while the state dict is the *same object* — so a
        # successor re-hashes O(changed nodes), not O(cluster), no
        # matter in which order worlds get digested.  Valid because
        # state dicts inside a world are immutable by contract (see
        # above).  digest() drops the parent link once every node is
        # cached locally, keeping ancestor chains short.
        self._node_digests: Dict[int, str] = {}
        self._digest_parent: Optional["WorldState"] = None
        # Incremental property checking (see properties.pairwise):
        # _prop_parent is the world this one was evolved from,
        # _changed_nodes the ids whose state dicts differ from it, and
        # _prop_cache memoizes property verdicts by name.  with_down()
        # clears the parent link (the live set changed, so per-node
        # deltas no longer describe the difference).
        self._prop_cache: Dict[str, bool] = {}
        self._prop_parent: Optional["WorldState"] = None
        self._changed_nodes: set = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        """Known node ids, ascending."""
        return sorted(self.node_states)

    def state_of(self, node_id: int) -> Dict[str, Any]:
        """Checkpoint dict of one node (live reference, do not mutate)."""
        return self.node_states[node_id]

    def is_up(self, node_id: int) -> bool:
        """Whether the node is up in this world."""
        return node_id not in self.down

    def live_nodes(self) -> List[int]:
        """Known node ids that are up."""
        return [nid for nid in self.node_ids if nid not in self.down]

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def clone(self) -> "WorldState":
        """Deep copy (state dicts copied; messages/timers are immutable)."""
        successor = WorldState(
            node_states=self.node_states,
            inflight=self.inflight,
            timers=self.timers,
            down=self.down,
            time=self.time,
            depth=self.depth,
            copy_states=False,
        )
        successor._digest_parent = self
        successor._prop_parent = self
        return successor

    def evolve(
        self,
        node_id: Optional[int] = None,
        new_state: Optional[Dict[str, Any]] = None,
        remove_inflight: Optional[InFlightMessage] = None,
        add_inflight: Iterable[InFlightMessage] = (),
        remove_timers: Iterable[Tuple[int, str]] = (),
        add_timers: Iterable[PendingTimer] = (),
        time_delta: float = 0.0,
        copy_state: bool = True,
    ) -> "WorldState":
        """Return a successor world with the given deltas applied.

        ``remove_inflight`` removes one instance matching by key (a
        multiset removal); ``remove_timers`` removes all timers with the
        given ``(node, name)``; ``add_timers`` then re-arms (so a re-armed
        timer supersedes its predecessor, matching live semantics).

        ``copy_state=False`` adopts ``new_state`` without snapshotting;
        only pass it for dicts that are already fresh copies nothing
        else aliases (e.g. a ``Service.checkpoint()`` result).
        """
        successor = self.clone()
        if node_id is not None and new_state is not None:
            successor.node_states = dict(successor.node_states)
            successor.node_states[node_id] = (
                snapshot_value(new_state) if copy_state else new_state
            )
            successor._changed_nodes.add(node_id)
        if remove_inflight is not None:
            target = remove_inflight.key()
            for index, message in enumerate(successor.inflight):
                if message.key() == target:
                    successor.inflight = (
                        successor.inflight[:index] + successor.inflight[index + 1:]
                    )
                    break
            else:
                raise ValueError(f"message not in flight: {remove_inflight!r}")
        removals = set(remove_timers)
        if removals:
            successor.timers = [
                t for t in successor.timers if (t.node, t.name) not in removals
            ]
        added = list(add_timers)
        if added:
            rearmed = {(t.node, t.name) for t in added}
            successor.timers = [
                t for t in successor.timers if (t.node, t.name) not in rearmed
            ] + added
        extra = list(add_inflight)
        if extra:
            successor.inflight = successor.inflight + extra
        successor.time = self.time + time_delta
        successor.depth = self.depth + 1
        return successor

    def with_down(self, down: Iterable[int]) -> "WorldState":
        """Copy of this world with a different down-set."""
        successor = self.clone()
        successor.down = frozenset(down)
        successor._prop_parent = None
        return successor

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _node_digest(self, node_id: int) -> str:
        """Cached digest of one node's checkpoint dict.

        On a miss, walks the clone-parent chain while the ancestor holds
        the *same dict object* for this node — an identity check, so a
        hit is always sound — and pulls its cached digest in before
        falling back to a full freeze+hash.
        """
        cached = self._node_digests.get(node_id)
        if cached is not None:
            return cached
        state = self.node_states[node_id]
        ancestor = self._digest_parent
        last_match: Optional["WorldState"] = None
        while ancestor is not None and ancestor.node_states.get(node_id) is state:
            cached = ancestor._node_digests.get(node_id)
            if cached is not None:
                break
            last_match = ancestor
            ancestor = ancestor._digest_parent
        if cached is None:
            cached = digest_of_frozen(freeze(state))
            if last_match is not None:
                # Publish at the highest ancestor sharing this state so
                # sibling branches find it instead of re-freezing.
                last_match._node_digests[node_id] = cached
        self._node_digests[node_id] = cached
        return cached

    def frozen(self) -> Tuple:
        """Canonical hashable form (time/depth excluded: they are
        bookkeeping, not protocol state).  Events are ordered by their
        cached digests, so ordering cost is O(events), not O(repr)."""
        states = tuple(
            (nid, freeze(self.node_states[nid])) for nid in sorted(self.node_states)
        )
        messages = tuple(
            m.key() for m in sorted(self.inflight, key=InFlightMessage.digest)
        )
        timers = tuple(t.key() for t in sorted(self.timers, key=PendingTimer.digest))
        return (states, messages, timers, tuple(sorted(self.down)))

    def digest(self) -> str:
        """Stable hex digest for visited-state tracking.

        A combine of per-part digests: per-node state digests (cached,
        maintained incrementally across :meth:`evolve`) and per-event
        digests (memoized on the immutable message/timer objects).  The
        expensive ``freeze`` of a node state therefore runs once per
        distinct state, not once per ``digest()`` call.
        """
        parts = (
            tuple((nid, self._node_digest(nid)) for nid in sorted(self.node_states)),
            tuple(sorted(m.digest() for m in self.inflight)),
            tuple(sorted(t.digest() for t in self.timers)),
            tuple(sorted(self.down)),
        )
        # Every node digest is cached locally now; release the parent
        # link so undigested ancestor chains stay bounded.
        self._digest_parent = None
        return digest_of_frozen(parts)

    def recompute_digest(self) -> str:
        """Digest recomputed from scratch, bypassing every cache.

        Test/debug oracle for the incremental-digest invariant:
        ``world.digest() == world.recompute_digest()`` must hold after
        any sequence of :meth:`evolve`/:meth:`with_down` steps.
        """
        fresh = WorldState(
            node_states=self.node_states,
            inflight=[InFlightMessage(m.src, m.dst, m.msg) for m in self.inflight],
            timers=[
                PendingTimer(t.node, t.name, t.payload, t.delay) for t in self.timers
            ],
            down=self.down,
            time=self.time,
            depth=self.depth,
            copy_states=False,
        )
        return fresh.digest()

    def __repr__(self) -> str:
        return (
            f"WorldState(nodes={len(self.node_states)}, inflight={len(self.inflight)}, "
            f"timers={len(self.timers)}, down={sorted(self.down)}, depth={self.depth})"
        )


def world_from_services(services, node_hosts=None, down: Iterable[int] = (), time: float = 0.0) -> WorldState:
    """Build a world from live service instances (and optionally their
    hosting nodes, to capture pending timers)."""
    node_states = {service.node_id: service.checkpoint() for service in services}
    timers: List[PendingTimer] = []
    if node_hosts is not None:
        for host in node_hosts:
            for name, deadline, payload in host.pending_timers():
                timers.append(
                    PendingTimer(node=host.node_id, name=name, payload=payload,
                                 delay=max(0.0, deadline - time))
                )
    # checkpoint() already deep-copies, so the world can adopt the dicts.
    return WorldState(node_states=node_states, timers=timers, down=down, time=time,
                      copy_states=False)


__all__ = [
    "InFlightMessage",
    "PendingTimer",
    "WorldState",
    "digest_of_frozen",
    "world_from_services",
]
