"""Consequence prediction (the CrystalBall exploration strategy).

"Consequence prediction focuses on exploring causally related chains of
events, and is fast enough to look several levels of state space into
the future fairly quickly" (Section 2).  For each action enabled in the
current world, the predictor executes it and then follows only the
events *caused* by the chain so far (messages the handlers sent, timers
they set), rather than interleaving unrelated traffic.  The output maps
each initial action to the violations found downstream of it and the
leaf worlds of its chains — exactly what execution steering and
predictive choice resolution consume.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Set, Tuple

from ..choice.objectives import Objective, SAFETY_PENALTY
from ..obs import MetricsRegistry
from ..statemachine.serialization import digest_of_frozen
from .actions import Action
from .chain_memo import ChainMemo, ChainRecorder
from .explorer import (
    Explorer,
    Violation,
    consumed_event_key,
    created_event_keys,
)
from .world import WorldState


@dataclass
class ActionOutcome:
    """What consequence prediction learned about one initial action."""

    action: Action
    violations: List[Violation] = field(default_factory=list)
    leaf_worlds: List[WorldState] = field(default_factory=list)
    states: int = 0

    @property
    def is_safe(self) -> bool:
        """No property violation found downstream of this action."""
        return not self.violations


@dataclass
class PredictionReport:
    """Outcomes for every enabled action from a world."""

    outcomes: List[ActionOutcome] = field(default_factory=list)
    total_states: int = 0
    budget_exhausted: bool = False
    # Memo accounting for this prediction pass; excluded from equality
    # so memo-on and memo-off reports compare equal.
    memo_hits: int = field(default=0, compare=False)
    memo_misses: int = field(default=0, compare=False)
    _index: Optional[Dict[Tuple, ActionOutcome]] = field(
        default=None, repr=False, compare=False
    )
    _indexed_count: int = field(default=0, repr=False, compare=False)

    def unsafe_actions(self) -> List[Action]:
        """Initial actions predicted to lead to a violation."""
        return [o.action for o in self.outcomes if not o.is_safe]

    def dump(self) -> Tuple:
        """Canonical hashable form of the report's *predictive content*.

        Includes everything steering and choice resolution consume —
        initial action keys in order, per-outcome state counts,
        violations (name, path, world digest) and leaf-world digests in
        exploration order — and excludes memo accounting.  Two
        prediction passes are byte-identical iff their dumps are equal.
        """
        return (
            self.total_states,
            self.budget_exhausted,
            tuple(
                (
                    o.action.key(),
                    o.states,
                    tuple(
                        (v.property_name,
                         tuple(a.key() for a in v.path),
                         v.world.digest())
                        for v in o.violations
                    ),
                    tuple(w.digest() for w in o.leaf_worlds),
                )
                for o in self.outcomes
            ),
        )

    def digest(self) -> str:
        """Stable hex digest of :meth:`dump`."""
        return digest_of_frozen(self.dump())

    def near_violations(self) -> Dict[str, int]:
        """Predicted-violation counts per property name.

        The near-violation signal fuzz coverage climbs: a pass that
        predicts violations downstream of the current world flags
        trouble before it materializes live, even when every live
        check still holds.
        """
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for violation in outcome.violations:
                name = violation.property_name
                counts[name] = counts.get(name, 0) + 1
        return counts

    def min_violation_depth(self) -> Optional[int]:
        """Shortest action path to any predicted violation (or None).

        The distance-to-violation across every explored chain: 1 means
        one action away from a property breach.
        """
        depths = [len(v.path) for o in self.outcomes for v in o.violations]
        return min(depths) if depths else None

    def summary(self) -> Dict[str, Any]:
        """Small JSON-able digest of the pass, for run reports."""
        violations = sum(len(o.violations) for o in self.outcomes)
        return {
            "actions": len(self.outcomes),
            "total_states": self.total_states,
            "unsafe_actions": sum(1 for o in self.outcomes if not o.is_safe),
            "violations": violations,
            "near_violations": self.near_violations(),
            "min_violation_depth": self.min_violation_depth(),
            "budget_exhausted": self.budget_exhausted,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }

    def outcome_for(self, action_key: Tuple) -> Optional[ActionOutcome]:
        """The outcome whose initial action has the given key.

        O(1) via a lazily-built index, rebuilt whenever outcomes were
        appended since the last lookup.
        """
        if self._index is None or self._indexed_count != len(self.outcomes):
            self._index = {o.action.key(): o for o in self.outcomes}
            self._indexed_count = len(self.outcomes)
        return self._index.get(action_key)


class ConsequencePredictor:
    """Bounded causal-chain exploration from a snapshot world.

    With ``workers > 1`` the independent initial-action chains fan out
    over a thread pool, each on its own :meth:`Explorer.spawn` clone
    (pooled services are not thread-safe).  Merge order and budget
    accounting are deterministic and byte-identical to serial mode: the
    outcomes are folded in enabled-action order, and any chain that
    would have been truncated by the serial running budget is re-run
    serially with that exact remaining budget.
    """

    def __init__(
        self,
        explorer: Explorer,
        chain_depth: int = 4,
        budget: int = 2_000,
        workers: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        memo: Optional[ChainMemo] = None,
    ) -> None:
        if chain_depth < 1:
            raise ValueError(f"chain_depth must be >= 1, got {chain_depth}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.explorer = explorer
        self.chain_depth = chain_depth
        self.budget = budget
        self.workers = workers
        # None means fully uninstrumented (not even counters) — the
        # predictor is the hot path, so the baseline stays untouched.
        self.metrics = metrics
        # Cross-round chain memo (owned by the caller, typically the
        # controller, so it survives predictor instances).  Bound to
        # this exploration configuration: a memo reused across a config
        # change flushes instead of serving stale chains.
        self.memo = memo
        if memo is not None:
            memo.bind((
                chain_depth,
                explorer.rng_seed,
                explorer.max_choice_variants,
                explorer.include_drops,
                tuple((p.name, getattr(p, "scope", "world"))
                      for p in explorer.properties),
            ))

    def predict(self, world: WorldState) -> PredictionReport:
        """Explore the causal chains of every enabled action."""
        metrics = self.metrics
        timed = metrics is not None and metrics.enabled
        started = perf_counter() if timed else 0.0
        # Evaluate the root once up front: its cached verdicts let every
        # first-level successor check properties incrementally instead
        # of full-scanning (the verdict itself is not part of the
        # report, matching the original behavior).
        self.explorer.check(world)
        actions = self.explorer.enabled_actions(world)
        # One entry per chain explored this pass: True for a memo hit.
        # A plain list: worker threads append concurrently (atomic under
        # the GIL) and the totals fold in after the merge.
        tallies: List[bool] = []
        if self.workers > 1 and len(actions) > 1:
            outcomes = self._explore_parallel(world, actions, tallies)
        else:
            outcomes = None
        report = PredictionReport()
        for index, action in enumerate(actions):
            remaining = self.budget - report.total_states
            if remaining <= 0:
                report.budget_exhausted = True
                break
            if outcomes is None:
                outcome = self._explore_chain_memo(
                    self.explorer, world, action, remaining, tallies
                )
            else:
                outcome = outcomes[index]
                if outcome.states >= remaining and remaining < self.budget:
                    # The serial pass would have truncated this chain:
                    # replay it with the exact remaining budget (chain
                    # exploration is deterministic) so both modes agree.
                    outcome = self._explore_chain_memo(
                        self.explorer, world, action, remaining, tallies
                    )
            report.outcomes.append(outcome)
            report.total_states += outcome.states
        report.memo_hits = sum(1 for hit in tallies if hit)
        report.memo_misses = len(tallies) - report.memo_hits
        if metrics is not None:
            metrics.counter("mc.predictions").inc()
            metrics.counter("mc.states").inc(report.total_states)
            predicted = sum(len(o.violations) for o in report.outcomes)
            if predicted:
                metrics.counter("mc.near_violations").inc(predicted)
                min_depth = report.min_violation_depth()
                if min_depth is not None:
                    metrics.gauge("mc.min_violation_depth").set(min_depth)
            pool = self.explorer.pool
            if pool is not None:
                metrics.gauge("mc.pool.hit_rate").set(pool.hit_rate)
            if self.memo is not None:
                metrics.counter("mc.memo.hits").inc(report.memo_hits)
                metrics.counter("mc.memo.misses").inc(report.memo_misses)
                metrics.gauge("mc.memo.entries").set(len(self.memo))
                metrics.gauge("mc.memo.hit_rate").set(self.memo.hit_rate)
        if timed:
            elapsed = perf_counter() - started
            metrics.histogram("mc.predict.seconds").observe(elapsed)
            metrics.histogram("mc.predict.states").observe(report.total_states)
            if elapsed > 0.0:
                metrics.gauge("mc.states_per_sec").set(report.total_states / elapsed)
        return report

    def _explore_parallel(
        self, world: WorldState, actions: List[Action], tallies: List[bool]
    ) -> List[ActionOutcome]:
        """Explore every chain concurrently, each with the full budget
        (the upper bound of what any serial chain could receive)."""
        metrics = self.metrics
        timed = metrics is not None and metrics.enabled
        chain_times: List[float] = []

        def run(action: Action) -> ActionOutcome:
            start = perf_counter() if timed else 0.0
            outcome = self._explore_chain_memo(
                self.explorer.spawn(), world, action, self.budget, tallies
            )
            if timed:
                chain_times.append(perf_counter() - start)
            return outcome

        wall_start = perf_counter() if timed else 0.0
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, action) for action in actions]
            results = [future.result() for future in futures]
        if timed:
            wall = perf_counter() - wall_start
            if wall > 0.0:
                busy = sum(chain_times) / (self.workers * wall)
                metrics.gauge("mc.workers.utilization").set(min(1.0, busy))
        return results

    def _explore_chain_memo(
        self,
        explorer: Explorer,
        root: WorldState,
        action: Action,
        budget: int,
        tallies: List[bool],
    ) -> ActionOutcome:
        """Memo-aware chain exploration: serve a cached chain rebased
        onto ``root`` when its footprint matches, else explore fresh
        under a recorder and store the result."""
        memo = self.memo
        if memo is None:
            return self._explore_chain(explorer, root, action, budget)
        cached = memo.lookup(root, action, budget, explorer)
        if cached is not None:
            tallies.append(True)
            states, violations, leaves = cached
            return ActionOutcome(
                action=action, violations=violations,
                leaf_worlds=leaves, states=states,
            )
        tallies.append(False)
        recorder = ChainRecorder()
        explorer.recorder = recorder
        try:
            outcome = self._explore_chain(explorer, root, action, budget)
        finally:
            explorer.recorder = None
        memo.store(root, action, budget, outcome, recorder, explorer)
        return outcome

    def _explore_chain(
        self, explorer: Explorer, root: WorldState, action: Action, budget: int
    ) -> ActionOutcome:
        recorder = explorer.recorder
        outcome = ActionOutcome(action=action)
        # Stack entries: (world, causal frontier of event keys, path, depth).
        stack: List[Tuple[WorldState, Set[Tuple], Tuple[Action, ...], int]] = []
        for successor in explorer.successors(root, action):
            outcome.states += 1
            path = (action,)
            for name in explorer.check(successor):
                outcome.violations.append(
                    Violation(property_name=name, path=path, world=successor)
                )
            frontier = created_event_keys(root, successor)
            if recorder is not None:
                recorder.events |= frontier
            stack.append((successor, frontier, path, 1))
        if recorder is not None:
            consumed0 = consumed_event_key(action)
            if consumed0 is not None:
                recorder.events.add(consumed0)
        while stack:
            if recorder is not None and outcome.states > recorder.max_pending:
                recorder.max_pending = outcome.states
            if outcome.states >= budget:
                if recorder is not None:
                    recorder.truncated = True
                break
            world, frontier, path, depth = stack.pop()
            if depth >= self.chain_depth or not frontier:
                outcome.leaf_worlds.append(world)
                continue
            # The frontier doubles as the enumeration filter: only
            # frontier destinations materialize.  The explicit
            # consumed-key check stays as the causal-semantics guard.
            causal_actions = [
                a for a in explorer.enabled_actions(world, only_event_keys=frontier)
                if consumed_event_key(a) in frontier
            ]
            if not causal_actions:
                outcome.leaf_worlds.append(world)
                continue
            for causal in causal_actions:
                consumed = consumed_event_key(causal)
                for successor in explorer.successors(world, causal):
                    outcome.states += 1
                    new_path = path + (causal,)
                    for name in explorer.check(successor):
                        outcome.violations.append(
                            Violation(property_name=name, path=new_path, world=successor)
                        )
                    new_frontier = (frontier - {consumed}) | created_event_keys(world, successor)
                    if recorder is not None:
                        recorder.events |= new_frontier
                    stack.append((successor, new_frontier, new_path, depth + 1))
        return outcome


def score_outcome(
    outcome: ActionOutcome,
    objective: Objective,
    aggregate: str = "mean",
) -> float:
    """Score an action outcome against an objective.

    Violations dominate everything (each costs :data:`SAFETY_PENALTY`);
    otherwise the objective is evaluated over the chain's leaf worlds
    and aggregated by ``mean``, ``min`` (pessimistic) or ``max``
    (optimistic).
    """
    if outcome.violations:
        return -SAFETY_PENALTY * len(outcome.violations)
    if not outcome.leaf_worlds:
        return 0.0
    scores = [objective.score(world) for world in outcome.leaf_worlds]
    if aggregate == "mean":
        return sum(scores) / len(scores)
    if aggregate == "min":
        return min(scores)
    if aggregate == "max":
        return max(scores)
    raise ValueError(f"unknown aggregate {aggregate!r}")


def score_report(
    report: PredictionReport,
    objective: Objective,
    aggregate: str = "mean",
) -> float:
    """The report-level future score: outcome scores averaged.

    This is the quantity both choice-scoring paths (the per-choice
    resolver and the amortized policy's scored rounds) add to a
    candidate's immediate score; factored here so the two stay
    definitionally identical.  An empty report scores 0.
    """
    if not report.outcomes:
        return 0.0
    return sum(
        score_outcome(outcome, objective, aggregate=aggregate)
        for outcome in report.outcomes
    ) / len(report.outcomes)


__all__ = [
    "ConsequencePredictor",
    "ActionOutcome",
    "PredictionReport",
    "score_outcome",
    "score_report",
]
