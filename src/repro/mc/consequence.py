"""Consequence prediction (the CrystalBall exploration strategy).

"Consequence prediction focuses on exploring causally related chains of
events, and is fast enough to look several levels of state space into
the future fairly quickly" (Section 2).  For each action enabled in the
current world, the predictor executes it and then follows only the
events *caused* by the chain so far (messages the handlers sent, timers
they set), rather than interleaving unrelated traffic.  The output maps
each initial action to the violations found downstream of it and the
leaf worlds of its chains — exactly what execution steering and
predictive choice resolution consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..choice.objectives import Objective, SAFETY_PENALTY
from .actions import Action
from .explorer import (
    Explorer,
    Violation,
    consumed_event_key,
    created_event_keys,
)
from .world import WorldState


@dataclass
class ActionOutcome:
    """What consequence prediction learned about one initial action."""

    action: Action
    violations: List[Violation] = field(default_factory=list)
    leaf_worlds: List[WorldState] = field(default_factory=list)
    states: int = 0

    @property
    def is_safe(self) -> bool:
        """No property violation found downstream of this action."""
        return not self.violations


@dataclass
class PredictionReport:
    """Outcomes for every enabled action from a world."""

    outcomes: List[ActionOutcome] = field(default_factory=list)
    total_states: int = 0
    budget_exhausted: bool = False

    def unsafe_actions(self) -> List[Action]:
        """Initial actions predicted to lead to a violation."""
        return [o.action for o in self.outcomes if not o.is_safe]

    def outcome_for(self, action_key: Tuple) -> Optional[ActionOutcome]:
        """The outcome whose initial action has the given key."""
        for outcome in self.outcomes:
            if outcome.action.key() == action_key:
                return outcome
        return None


class ConsequencePredictor:
    """Bounded causal-chain exploration from a snapshot world."""

    def __init__(
        self,
        explorer: Explorer,
        chain_depth: int = 4,
        budget: int = 2_000,
    ) -> None:
        if chain_depth < 1:
            raise ValueError(f"chain_depth must be >= 1, got {chain_depth}")
        self.explorer = explorer
        self.chain_depth = chain_depth
        self.budget = budget

    def predict(self, world: WorldState) -> PredictionReport:
        """Explore the causal chains of every enabled action."""
        report = PredictionReport()
        for action in self.explorer.enabled_actions(world):
            remaining = self.budget - report.total_states
            if remaining <= 0:
                report.budget_exhausted = True
                break
            outcome = self._explore_chain(world, action, remaining)
            report.outcomes.append(outcome)
            report.total_states += outcome.states
        return report

    def _explore_chain(self, root: WorldState, action: Action, budget: int) -> ActionOutcome:
        outcome = ActionOutcome(action=action)
        # Stack entries: (world, causal frontier of event keys, path, depth).
        stack: List[Tuple[WorldState, Set[Tuple], Tuple[Action, ...], int]] = []
        for successor in self.explorer.successors(root, action):
            outcome.states += 1
            path = (action,)
            for name in self.explorer.check(successor):
                outcome.violations.append(
                    Violation(property_name=name, path=path, world=successor)
                )
            frontier = created_event_keys(root, successor)
            stack.append((successor, frontier, path, 1))
        while stack:
            if outcome.states >= budget:
                break
            world, frontier, path, depth = stack.pop()
            if depth >= self.chain_depth or not frontier:
                outcome.leaf_worlds.append(world)
                continue
            causal_actions = [
                a for a in self.explorer.enabled_actions(world)
                if consumed_event_key(a) in frontier
            ]
            if not causal_actions:
                outcome.leaf_worlds.append(world)
                continue
            for causal in causal_actions:
                consumed = consumed_event_key(causal)
                for successor in self.explorer.successors(world, causal):
                    outcome.states += 1
                    new_path = path + (causal,)
                    for name in self.explorer.check(successor):
                        outcome.violations.append(
                            Violation(property_name=name, path=new_path, world=successor)
                        )
                    new_frontier = (frontier - {consumed}) | created_event_keys(world, successor)
                    stack.append((successor, new_frontier, new_path, depth + 1))
        return outcome


def score_outcome(
    outcome: ActionOutcome,
    objective: Objective,
    aggregate: str = "mean",
) -> float:
    """Score an action outcome against an objective.

    Violations dominate everything (each costs :data:`SAFETY_PENALTY`);
    otherwise the objective is evaluated over the chain's leaf worlds
    and aggregated by ``mean``, ``min`` (pessimistic) or ``max``
    (optimistic).
    """
    if outcome.violations:
        return -SAFETY_PENALTY * len(outcome.violations)
    if not outcome.leaf_worlds:
        return 0.0
    scores = [objective.score(world) for world in outcome.leaf_worlds]
    if aggregate == "mean":
        return sum(scores) / len(scores)
    if aggregate == "min":
        return min(scores)
    if aggregate == "max":
        return max(scores)
    raise ValueError(f"unknown aggregate {aggregate!r}")


__all__ = [
    "ConsequencePredictor",
    "ActionOutcome",
    "PredictionReport",
    "score_outcome",
]
