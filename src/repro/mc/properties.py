"""Safety properties over world states.

"Systems such as MaceMC and CrystalBall already contain the ability to
specify safety and liveness properties" (Section 3.2).  A
:class:`SafetyProperty` is a named predicate over a
:class:`~repro.mc.world.WorldState`; the explorer evaluates the full
set at every state it visits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List

Predicate = Callable[[Any], bool]


@dataclass(frozen=True)
class SafetyProperty:
    """A predicate that must hold in every reachable state."""

    name: str
    predicate: Predicate

    def holds(self, world: Any) -> bool:
        """Whether the property holds in ``world``."""
        return bool(self.predicate(world))


def violated_properties(world: Any, properties: Iterable[SafetyProperty]) -> List[str]:
    """Names of all properties violated in ``world``."""
    return [prop.name for prop in properties if not prop.holds(world)]


def all_nodes(predicate: Callable[[int, dict], bool], name: str) -> SafetyProperty:
    """Property: ``predicate(node_id, state)`` holds at every live node."""

    def check(world: Any) -> bool:
        return all(
            predicate(node_id, world.state_of(node_id))
            for node_id in world.live_nodes()
        )

    return SafetyProperty(name=name, predicate=check)


def pairwise(predicate: Callable[[int, dict, int, dict], bool], name: str) -> SafetyProperty:
    """Property: ``predicate`` holds for every ordered pair of live nodes.

    This is the shape of CrystalBall's cross-node consistency
    properties (e.g. "if b lists a as a child, a's parent is b").
    """

    def check(world: Any) -> bool:
        live = world.live_nodes()
        for a in live:
            for b in live:
                if a == b:
                    continue
                if not predicate(a, world.state_of(a), b, world.state_of(b)):
                    return False
        return True

    return SafetyProperty(name=name, predicate=check)


__all__ = ["SafetyProperty", "violated_properties", "all_nodes", "pairwise"]
