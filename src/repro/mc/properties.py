"""Safety properties over world states.

"Systems such as MaceMC and CrystalBall already contain the ability to
specify safety and liveness properties" (Section 3.2).  A
:class:`SafetyProperty` is a named predicate over a
:class:`~repro.mc.world.WorldState`; the explorer evaluates the full
set at every state it visits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List

Predicate = Callable[[Any], bool]


@dataclass(frozen=True)
class SafetyProperty:
    """A predicate that must hold in every reachable state.

    ``scope`` declares what the predicate may read, so the chain memo
    can bound a property's footprint without instrumenting it:

    * ``"nodes"`` — per-node predicate over live nodes (``all_nodes``);
    * ``"states"`` — reads live node states and the down set
      (``pairwise``, or any whole-membrane predicate);
    * ``"world"`` — may read anything, including time (the conservative
      default for hand-rolled properties).
    """

    name: str
    predicate: Predicate
    scope: str = "world"

    def holds(self, world: Any) -> bool:
        """Whether the property holds in ``world``."""
        return bool(self.predicate(world))


def violated_properties(world: Any, properties: Iterable[SafetyProperty]) -> List[str]:
    """Names of all properties violated in ``world``."""
    return [prop.name for prop in properties if not prop.holds(world)]


def _live_states(world: Any):
    """``(node_id, state)`` pairs of the world's live nodes, hoisted
    out of the per-pair loops (one attribute walk per check, not per
    predicate call)."""
    node_states = getattr(world, "node_states", None)
    if node_states is None:
        return [(nid, world.state_of(nid)) for nid in world.live_nodes()]
    down = world.down
    if down:
        return [(nid, s) for nid, s in node_states.items() if nid not in down]
    return list(node_states.items())


def _incremental_basis(world: Any, name: str):
    """``(changed_node_ids, own_cache)`` when ``world`` differs from a
    parent world that already satisfied property ``name``, else
    ``(None, own_cache)``.

    Built on the bookkeeping :class:`~repro.mc.world.WorldState`
    maintains (``_prop_parent``/``_changed_nodes``/``_prop_cache``); any
    world-like object without it simply gets the full scan.  Sound
    because worlds evolved from a parent share every unchanged node's
    state dict by reference: a per-node (or per-pair) predicate can only
    change its verdict at a changed node.
    """
    cache = getattr(world, "_prop_cache", None)
    parent = getattr(world, "_prop_parent", None)
    changed = getattr(world, "_changed_nodes", None)
    if parent is None or changed is None:
        return None, cache
    if getattr(parent, "_prop_cache", {}).get(name) is not True:
        return None, cache
    return changed, cache


def all_nodes(predicate: Callable[[int, dict], bool], name: str) -> SafetyProperty:
    """Property: ``predicate(node_id, state)`` holds at every live node.

    Evaluation is incremental where possible: if the world's parent
    satisfied the property and only some nodes' states changed, only
    the changed nodes are re-checked.
    """

    def check(world: Any) -> bool:
        changed, cache = _incremental_basis(world, name)
        if cache is not None and name in cache:
            return cache[name]
        if changed is not None:
            result = all(
                predicate(nid, world.state_of(nid)) for nid in changed
                if world.is_up(nid) and nid in world.node_states
            )
        else:
            result = all(predicate(nid, s) for nid, s in _live_states(world))
        if cache is not None:
            cache[name] = result
        return result

    return SafetyProperty(name=name, predicate=check, scope="nodes")


def pairwise(predicate: Callable[[int, dict, int, dict], bool], name: str) -> SafetyProperty:
    """Property: ``predicate`` holds for every ordered pair of live nodes.

    This is the shape of CrystalBall's cross-node consistency
    properties (e.g. "if b lists a as a child, a's parent is b").

    Evaluation is incremental where possible: a world whose parent
    satisfied the property and which differs only in some nodes'
    states re-checks only the ordered pairs involving a changed node —
    O(changed * live) predicate calls instead of O(live^2).
    """

    def check(world: Any) -> bool:
        changed, cache = _incremental_basis(world, name)
        if cache is not None and name in cache:
            return cache[name]
        states = _live_states(world)
        result = True
        if changed is not None:
            for c in changed:
                if not world.is_up(c) or c not in world.node_states:
                    continue
                sc = world.state_of(c)
                for other, so in states:
                    if other == c:
                        continue
                    if not predicate(c, sc, other, so) or not predicate(other, so, c, sc):
                        result = False
                        break
                if not result:
                    break
        else:
            for a, sa in states:
                for b, sb in states:
                    if a == b:
                        continue
                    if not predicate(a, sa, b, sb):
                        result = False
                        break
                if not result:
                    break
        if cache is not None:
            cache[name] = result
        return result

    return SafetyProperty(name=name, predicate=check, scope="states")


__all__ = ["SafetyProperty", "violated_properties", "all_nodes", "pairwise"]
