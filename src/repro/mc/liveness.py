"""Bounded liveness checking.

"Systems such as MaceMC and CrystalBall already contain the ability to
specify safety and liveness properties" (Section 3.2).  Over a finite
horizon the practical liveness question is *reachability of progress*:
can the system still reach a state satisfying the progress predicate?
:class:`BoundedLivenessChecker` answers it by bounded BFS, returning a
witness path when progress is reachable and the explored frontier
statistics when it is not (a bounded-liveness violation candidate, in
MaceMC terminology a potential dead state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .actions import Action
from .explorer import Explorer
from .world import WorldState

Predicate = Callable[[WorldState], bool]


@dataclass(frozen=True)
class LivenessProperty:
    """A progress condition that must remain reachable."""

    name: str
    predicate: Predicate


@dataclass
class LivenessResult:
    """Outcome of a bounded progress-reachability check."""

    property_name: str
    reachable: bool
    witness_path: Tuple[Action, ...] = ()
    witness_world: Optional[WorldState] = None
    states_explored: int = 0
    truncated: bool = False

    @property
    def violated(self) -> bool:
        """Progress unreachable within the bound *and* the search was
        exhaustive — a genuine dead region of the state space."""
        return not self.reachable and not self.truncated


class BoundedLivenessChecker:
    """Checks whether a progress predicate is reachable from a world."""

    def __init__(self, explorer: Explorer, max_depth: int = 6, max_states: int = 10_000) -> None:
        self.explorer = explorer
        self.max_depth = max_depth
        self.max_states = max_states

    def check(self, world: WorldState, prop: LivenessProperty) -> LivenessResult:
        """Bounded BFS for a state satisfying ``prop``."""
        if prop.predicate(world):
            return LivenessResult(property_name=prop.name, reachable=True,
                                  witness_world=world, states_explored=1)
        visited = {world.digest()}
        frontier: deque = deque([(world, ())])
        states = 1
        truncated = False
        while frontier:
            current, path = frontier.popleft()
            if current.depth - world.depth >= self.max_depth:
                continue
            for action in self.explorer.enabled_actions(current):
                for successor in self.explorer.successors(current, action):
                    key = successor.digest()
                    if key in visited:
                        continue
                    if states >= self.max_states:
                        truncated = True
                        frontier.clear()
                        break
                    visited.add(key)
                    states += 1
                    new_path = path + (action,)
                    if prop.predicate(successor):
                        return LivenessResult(
                            property_name=prop.name, reachable=True,
                            witness_path=new_path, witness_world=successor,
                            states_explored=states,
                        )
                    frontier.append((successor, new_path))
                else:
                    continue
                break
        return LivenessResult(
            property_name=prop.name, reachable=False,
            states_explored=states, truncated=truncated,
        )

    def check_all(self, world: WorldState, properties: List[LivenessProperty]) -> List[LivenessResult]:
        """Check every liveness property independently."""
        return [self.check(world, prop) for prop in properties]


__all__ = ["LivenessProperty", "LivenessResult", "BoundedLivenessChecker"]
