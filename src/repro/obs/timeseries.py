"""Time-series telemetry: cadenced sampling of registry instruments.

The :class:`~repro.obs.registry.MetricsRegistry` holds *cumulative*
instruments — a 60-second throughput run ends with one committed-ops
total and no idea whether commits flowed steadily or stalled for 40
seconds under a partition.  A :class:`TelemetrySampler` closes that gap:
it reads selected instruments (or arbitrary probe callables) on a fixed
*simulated-time* cadence, keeps each as a bounded in-memory
:class:`Series` ring with automatic downsampling, and optionally
forwards every tick to a :class:`~repro.obs.stream.RunStream` for live
tailing and to a :class:`FlightRecorder` for postmortems.

Digest neutrality is the design constraint everything here obeys:

* sampler ticks ride the simulator's event queue on a dedicated
  ``telemetry.sample`` tag, draw **no** RNG, and never mutate service,
  network, or runtime state — the application event sequence is
  byte-identical with sampling on or off;
* nothing is appended to the trace log, so trace digests cannot move;
* host-time correlation (like spans) lives only in stream records,
  outside every digest.

``benchmarks/bench_o3_stream.py`` holds the receipts: <5% wall-time
overhead on the T1 quick workload with identical trace and decided-log
digests either way.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .registry import Gauge, Histogram, MetricsRegistry, render_key


class Series:
    """A bounded time-series ring with automatic downsampling.

    Points are ``(t, value)`` pairs appended in time order.  Once
    ``max_points`` is reached the series halves its resolution: adjacent
    pairs merge (per the aggregation policy) and the sampling ``stride``
    doubles, so a fixed memory budget covers an arbitrarily long run at
    progressively coarser grain — the classic downsampling ring.

    Aggregations: ``last`` (right for cumulative counters), ``mean``
    (gauges), ``max`` / ``min`` / ``sum`` (rates and peaks).
    """

    AGGREGATIONS = ("last", "mean", "max", "min", "sum")

    __slots__ = ("name", "max_points", "agg", "stride", "_points", "_bucket")

    def __init__(self, name: str, max_points: int = 512, agg: str = "last") -> None:
        if max_points < 4:
            raise ValueError(f"max_points must be >= 4, got {max_points}")
        if agg not in self.AGGREGATIONS:
            raise ValueError(f"unknown aggregation {agg!r}; expected one of "
                             f"{self.AGGREGATIONS}")
        self.name = name
        self.max_points = max_points
        self.agg = agg
        self.stride = 1
        self._points: List[Tuple[float, float]] = []
        self._bucket: List[Tuple[float, float]] = []

    def _fold(self, bucket: List[Tuple[float, float]]) -> Tuple[float, float]:
        t = bucket[-1][0]
        values = [v for _, v in bucket]
        if self.agg == "last":
            return t, values[-1]
        if self.agg == "mean":
            return t, sum(values) / len(values)
        if self.agg == "max":
            return t, max(values)
        if self.agg == "min":
            return t, min(values)
        return t, sum(values)

    def append(self, t: float, value: float) -> None:
        self._bucket.append((t, value))
        if len(self._bucket) < self.stride:
            return
        self._points.append(self._fold(self._bucket))
        self._bucket = []
        if len(self._points) >= self.max_points:
            # Halve resolution: merge adjacent pairs, double the stride.
            merged = [
                self._fold(self._points[i:i + 2])
                for i in range(0, len(self._points), 2)
            ]
            self._points = merged
            self.stride *= 2

    def points(self) -> List[Tuple[float, float]]:
        """All retained points (including a partially-filled bucket)."""
        if self._bucket:
            return self._points + [self._fold(self._bucket)]
        return list(self._points)

    def last(self) -> Optional[Tuple[float, float]]:
        pts = self.points()
        return pts[-1] if pts else None

    def __len__(self) -> int:
        return len(self._points) + (1 if self._bucket else 0)

    def __repr__(self) -> str:
        return (f"Series({self.name!r}, points={len(self)}, "
                f"stride={self.stride}, agg={self.agg!r})")


class TelemetrySampler:
    """Cadenced sampling of instruments over a simulator's virtual clock.

    Probes are zero-argument callables registered under a series name;
    convenience registrars wrap registry instruments.  :meth:`start`
    schedules the first tick; every tick reads all probes once, appends
    to the in-memory series, and forwards one consolidated reading to
    the attached stream and flight recorder.

    ``until`` bounds rescheduling so a sampler never keeps an otherwise
    drained event queue alive past the experiment horizon.
    """

    TAG = "telemetry.sample"

    def __init__(
        self,
        sim: Any,
        cadence: float = 1.0,
        stream: Optional[Any] = None,
        recorder: Optional["FlightRecorder"] = None,
        max_points: int = 512,
    ) -> None:
        if cadence <= 0:
            raise ValueError(f"cadence must be positive, got {cadence!r}")
        self.sim = sim
        self.cadence = cadence
        self.stream = stream
        self.recorder = recorder
        self.max_points = max_points
        self.series: Dict[str, Series] = {}
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self.samples_taken = 0
        self._running = False
        self._until: Optional[float] = None

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------

    def watch(self, name: str, probe: Callable[[], float], agg: str = "last") -> Series:
        """Register a probe callable under ``name``; returns its series."""
        if name in self.series:
            raise ValueError(f"series {name!r} already registered")
        series = Series(name, max_points=self.max_points, agg=agg)
        self.series[name] = series
        self._probes.append((name, probe))
        return series

    def watch_counter(self, counter: Any) -> Series:
        """Sample a registry counter's cumulative value."""
        return self.watch(render_key(counter.name, counter.labels),
                          lambda: counter.value, agg="last")

    def watch_gauge(self, gauge: Gauge) -> Series:
        """Sample a gauge (mean-aggregated when downsampled)."""
        return self.watch(render_key(gauge.name, gauge.labels),
                          lambda: gauge.value, agg="mean")

    def watch_histogram(self, hist: Histogram) -> List[Series]:
        """Sample a histogram's count and streaming p95."""
        key = render_key(hist.name, hist.labels)
        return [
            self.watch(f"{key}.count", lambda: hist.count, agg="last"),
            self.watch(f"{key}.p95",
                       lambda: hist.quantile(0.95) or 0.0, agg="mean"),
        ]

    def watch_registry(self, registry: MetricsRegistry, prefix: str = "") -> int:
        """Watch every *current* counter and gauge matching ``prefix``;
        returns how many series were registered."""
        added = 0
        for counter in registry._counters.values():
            key = render_key(counter.name, counter.labels)
            if key.startswith(prefix) and key not in self.series:
                self.watch_counter(counter)
                added += 1
        for gauge in registry._gauges.values():
            key = render_key(gauge.name, gauge.labels)
            if key.startswith(prefix) and key not in self.series:
                self.watch_gauge(gauge)
                added += 1
        return added

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, until: Optional[float] = None) -> None:
        """Begin cadenced sampling (first tick one cadence from now)."""
        if self._running:
            return
        self._running = True
        self._until = until
        self.sim.schedule(self.cadence, self._tick, tag=self.TAG)

    def stop(self) -> None:
        """Stop sampling; the next pending tick becomes a no-op."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        next_time = self.sim.now + self.cadence
        if self._until is not None and next_time > self._until:
            self._running = False
            return
        self.sim.schedule(self.cadence, self._tick, tag=self.TAG)

    def sample_now(self) -> Dict[str, float]:
        """Read every probe once at the current simulated time."""
        now = self.sim.now
        values: Dict[str, float] = {}
        for name, probe in self._probes:
            value = probe()
            values[name] = value
            self.series[name].append(now, value)
        self.samples_taken += 1
        if self.stream is not None:
            self.stream.write_sample(values, t=now)
        if self.recorder is not None:
            self.recorder.note_sample(now, values)
        return values

    def snapshot(self) -> Dict[str, Any]:
        """All series as plain JSON-able dicts (name -> points/stride)."""
        return {
            name: {
                "agg": series.agg,
                "stride": series.stride,
                "points": [[round(t, 6), v] for t, v in series.points()],
            }
            for name, series in self.series.items()
        }

    def __repr__(self) -> str:
        return (f"TelemetrySampler(cadence={self.cadence}, "
                f"series={len(self.series)}, samples={self.samples_taken}, "
                f"running={self._running})")


class FlightRecorder:
    """A crash-safe ring of the last ``window`` seconds of telemetry.

    The production-postmortem shape: samples and causal-stamped events
    accumulate in bounded deques, older entries evict as simulated time
    advances, and :meth:`dump` writes the whole ring as JSON the moment
    something goes wrong — a live safety violation, a steering decision
    storm, or an exception out of the prediction loop.  The dump is the
    "what were the last N seconds like" artifact a one-shot final report
    cannot reconstruct.
    """

    def __init__(
        self,
        window: float = 30.0,
        dump_path: Optional[str] = None,
        max_entries: int = 4096,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = window
        self.dump_path = dump_path
        self.samples: deque = deque(maxlen=max_entries)
        self.events: deque = deque(maxlen=max_entries)
        self.dumps_written = 0
        self.last_dump: Optional[Dict[str, Any]] = None

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        while self.samples and self.samples[0]["t"] < horizon:
            self.samples.popleft()
        while self.events and self.events[0]["t"] < horizon:
            self.events.popleft()

    def note_sample(self, t: float, values: Dict[str, float]) -> None:
        self.samples.append({"t": round(t, 6), "v": dict(values)})
        self._evict(t)

    def note_event(self, t: float, kind: str,
                   data: Optional[Dict[str, Any]] = None,
                   causal: Optional[Any] = None) -> None:
        entry: Dict[str, Any] = {"t": round(t, 6), "event": kind,
                                 "data": data or {}}
        if causal is not None:
            entry["causal"] = causal
        self.events.append(entry)
        self._evict(t)

    def snapshot(self, reason: str = "", now: Optional[float] = None) -> Dict[str, Any]:
        """The ring as one JSON-able postmortem document."""
        return {
            "flight_recorder": {
                "reason": reason,
                "now": now,
                "window_s": self.window,
                "host_unix": time.time(),
                "samples": list(self.samples),
                "events": list(self.events),
            }
        }

    def dump(self, reason: str, now: Optional[float] = None,
             path: Optional[str] = None) -> Optional[str]:
        """Write the ring to ``path`` (or the configured ``dump_path``).

        Returns the path written, or ``None`` when no path is
        configured — the snapshot is still retained on ``last_dump``
        so in-process consumers (tests, a future job daemon) get the
        postmortem either way.
        """
        snapshot = self.snapshot(reason=reason, now=now)
        self.last_dump = snapshot
        self.dumps_written += 1
        target = path or self.dump_path
        if target is None:
            return None
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, default=str)
            handle.write("\n")
        return target

    def __repr__(self) -> str:
        return (f"FlightRecorder(window={self.window}, "
                f"samples={len(self.samples)}, events={len(self.events)}, "
                f"dumps={self.dumps_written})")


__all__ = ["Series", "TelemetrySampler", "FlightRecorder"]
