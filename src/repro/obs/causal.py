"""Causal tracing: contexts, logical clocks, and happens-before graphs.

The paper's debugging pitch is that "the consequences of a choice
surface far from where it was made": a steering decision or predicted
violation is only explainable if every message, timer fire, and choice
resolution carries *where it came from*.  This module provides that
layer:

* :class:`CausalContext` — the immutable stamp a send carries through
  the network: trace id, originating event id, Lamport clock, vector
  clock, and (for at-least-once retransmissions) an attempt number.
* :class:`CausalTracer` — the per-simulation authority that allocates
  event ids, ticks Lamport/vector clocks, tracks which event is
  currently executing (a stack, so nested dispatches chain correctly),
  and hands :class:`~repro.sim.trace.TraceLog` a *stamp* for the next
  record.  Stamps live on ``TraceRecord.causal`` — **outside**
  ``record.data`` — so trace digests and prediction reports are
  byte-identical with tracing on or off.
* :class:`HappensBeforeGraph` — rebuilt from any stamped
  :class:`TraceLog`: ancestors/descendants, concurrency tests, causal
  chains, and critical-path extraction.

Tracing is opt-in (``Cluster(causal=True)`` or
:func:`enable_causal_tracing`); with it off, the hot path pays exactly
one attribute fetch + ``None`` test per send/deliver/timer.

Clock semantics (the standard algorithms):

* Lamport: every event at node ``n`` ticks ``L[n] = max(L[n], floor) + 1``
  where ``floor`` is the stamped clock of the message being delivered
  (0 for purely local events).
* Vector: every event increments the node's own component; a delivery
  first merges the sender's stamped vector component-wise.  ``a``
  happened-before ``b`` iff ``a.vc[a.node] <= b.vc.get(a.node, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Set, Tuple


class CausalContext(NamedTuple):
    """The causal stamp one in-flight message carries.

    ``vc`` is the sender's vector clock at send time, frozen as a dense
    tuple indexed by node id (component ``i`` is node ``i``'s count,
    zeros for nodes not yet heard from).  ``attempt`` distinguishes
    at-least-once retransmissions: retries keep the trace id and parent
    event of the original send but bump the attempt number.

    (A NamedTuple, not a dataclass: one is allocated per traced send,
    and tuple construction is several times cheaper.)
    """

    trace_id: int
    event_id: int
    lamport: int
    vc: Tuple[int, ...]
    attempt: int = 1


class _Scope:
    """Re-usable ``with`` guard for one dispatch's causal scope.

    A hand-rolled context manager, not ``@contextmanager``: one is
    entered per delivery and timer fire, and the generator machinery
    costs several times more than two plain method calls.
    """

    __slots__ = ("_tracer", "_event_id", "_depth")

    def __init__(self, tracer: "CausalTracer", event_id: int) -> None:
        self._tracer = tracer
        self._event_id = event_id

    def __enter__(self) -> None:
        current = self._tracer._current
        self._depth = len(current)
        current.append(self._event_id)

    def __exit__(self, *exc) -> None:
        del self._tracer._current[self._depth:]


class _ResumeScope:
    """``with`` guard re-entering a past event's scope (retries)."""

    __slots__ = ("_tracer", "_event_id", "_attempt", "_depth", "_prev")

    def __init__(
        self,
        tracer: "CausalTracer",
        event_id: Optional[int],
        attempt: int,
    ) -> None:
        self._tracer = tracer
        self._event_id = event_id
        self._attempt = attempt

    def __enter__(self) -> None:
        tracer = self._tracer
        self._depth = len(tracer._current)
        self._prev = tracer._attempt
        tracer._attempt = self._attempt
        if self._event_id is not None:
            tracer._current.append(self._event_id)

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        del tracer._current[self._depth:]
        tracer._attempt = self._prev


class CausalTracer:
    """Allocates causal events and stamps trace records.

    One tracer per :class:`~repro.sim.scheduler.Simulator`; attach it
    with :func:`enable_causal_tracing`.  The tracer keeps a stack of
    currently-executing event ids: a delivery pushes its event for the
    duration of the handler, a choice resolution *appends* its event so
    later sends in the same dispatch are causally downstream of the
    choice — which is exactly what lets forensics root an explanation
    chain at the resolved choice point.

    The per-event bookkeeping is two parallel lists indexed by
    ``event_id - 1`` (trace id and parent) instead of objects: the
    tracer sits on the simulator's per-message hot path, and everything
    richer is reconstructed offline from the stamped trace by
    :class:`HappensBeforeGraph`.
    """

    def __init__(self, clock=None) -> None:
        # ``clock`` is accepted for API compatibility; event times are
        # taken from the trace records themselves, so the tracer never
        # needs to consult it on the hot path.
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._next_trace = 1
        self.lamport: Dict[int, int] = {}
        # Per-node vector clocks as dense lists indexed by node id —
        # merges and snapshots are C-speed slice/tuple operations
        # instead of dict copies.
        self.vector: Dict[int, List[int]] = {}
        # Per-event bookkeeping, indexed by event_id - 1.
        self._trace_ids: List[int] = []
        self._parents: List[Optional[int]] = []
        self._current: List[int] = []
        self._pending: Optional[Dict[str, Any]] = None
        self._attempt = 1

    # ------------------------------------------------------------------
    # Event bookkeeping
    # ------------------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Events allocated so far."""
        return len(self._trace_ids)

    def trace_of(self, event_id: int) -> int:
        """The trace id ``event_id`` belongs to."""
        return self._trace_ids[event_id - 1]

    def parent_of(self, event_id: int) -> Optional[int]:
        """The cause of ``event_id`` (``None`` for roots)."""
        return self._parents[event_id - 1]

    # ------------------------------------------------------------------
    # Event creation (one per traced action)
    # ------------------------------------------------------------------

    def current_event_id(self) -> Optional[int]:
        """The event currently executing, if any."""
        return self._current[-1] if self._current else None

    def _vc_of(self, node: int) -> List[int]:
        """The node's dense vector clock, grown to cover ``node``."""
        vc = self.vector.get(node)
        if vc is None:
            vc = self.vector[node] = [0] * (node + 1)
        elif node >= len(vc):
            vc.extend([0] * (node + 1 - len(vc)))
        return vc

    def send_event(self, src: int, dst: int, kind: str) -> CausalContext:
        """A message leaves ``src``; returns the context it carries."""
        current = self._current
        parent = current[-1] if current else None
        lamport = self.lamport
        clock = lamport.get(src, 0) + 1
        lamport[src] = clock
        vc = self.vector.get(src)
        if vc is None or src >= len(vc):
            vc = self._vc_of(src)
        vc[src] += 1
        trace_ids = self._trace_ids
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
        else:
            trace_id = trace_ids[parent - 1]
        trace_ids.append(trace_id)
        self._parents.append(parent)
        event_id = len(trace_ids)
        frozen = tuple(vc)
        stamp = {"ev": event_id, "trace": trace_id, "cause": parent,
                 "lc": clock, "vc": frozen}
        attempt = self._attempt
        if attempt != 1:
            stamp["attempt"] = attempt
        self._pending = stamp
        return CausalContext(trace_id, event_id, clock, frozen, attempt)

    def deliver_event(
        self,
        ctx: Optional[CausalContext],
        dst: int,
        dup: bool = False,
    ) -> int:
        """A message arrives at ``dst``: merge clocks, open an event.

        ``ctx`` may be ``None`` for messages sent before tracing was
        enabled; they start a fresh trace at the receiver.
        """
        lamport = self.lamport
        vc = self.vector.get(dst)
        if vc is None or dst >= len(vc):
            vc = self._vc_of(dst)
        if ctx is not None:
            sender_vc = ctx.vc
            width = len(sender_vc)
            if width > len(vc):
                vc.extend([0] * (width - len(vc)))
            # Guarded loop, not map(max, ...): most components don't
            # advance, and the per-element max() call costs ~4x this.
            for i, count in enumerate(sender_vc):
                if count > vc[i]:
                    vc[i] = count
            floor = ctx.lamport
            clock = lamport.get(dst, 0)
            if floor > clock:
                clock = floor
            clock += 1
            parent: Optional[int] = ctx.event_id
        else:
            clock = lamport.get(dst, 0) + 1
            parent = None
        lamport[dst] = clock
        vc[dst] += 1
        trace_ids = self._trace_ids
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
        else:
            trace_id = trace_ids[parent - 1]
        trace_ids.append(trace_id)
        self._parents.append(parent)
        stamp = {"ev": len(trace_ids), "trace": trace_id, "cause": parent,
                 "lc": clock, "vc": tuple(vc)}
        if dup:
            stamp["dup"] = True
        if ctx is not None and ctx.attempt != 1:
            stamp["attempt"] = ctx.attempt
        self._pending = stamp
        return len(trace_ids)

    def _simple_event(self, node: int, parent: Optional[int],
                      floor: int = 0) -> int:
        """Open a non-send event at ``node`` and stamp it."""
        lamport = self.lamport
        clock = lamport.get(node, 0)
        if floor > clock:
            clock = floor
        clock += 1
        lamport[node] = clock
        vc = self._vc_of(node)
        vc[node] += 1
        trace_ids = self._trace_ids
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
        else:
            trace_id = trace_ids[parent - 1]
        trace_ids.append(trace_id)
        self._parents.append(parent)
        event_id = len(trace_ids)
        self._pending = {"ev": event_id, "trace": trace_id, "cause": parent,
                         "lc": clock, "vc": tuple(vc)}
        return event_id

    def drop_event(self, node: int, ctx: Optional[CausalContext] = None) -> int:
        """A message died (at send or delivery time)."""
        if ctx is not None:
            return self._simple_event(node, ctx.event_id, floor=ctx.lamport)
        return self._simple_event(node, self.current_event_id())

    def timer_event(self, node: int, name: str, parent: Optional[int]) -> int:
        """A timer fired; ``parent`` is the event that armed it."""
        return self._simple_event(node, parent)

    def choice_event(self, node: int, label: str) -> int:
        """A choice was resolved mid-dispatch.

        The event is appended to the current-execution stack, so every
        later effect of this dispatch is causally downstream of the
        choice.
        """
        event_id = self._simple_event(node, self.current_event_id())
        if self._current:
            # Join the enclosing dispatch scope; its exit truncates us.
            # A choice outside any scope must not leak as "current".
            self._current.append(event_id)
        return event_id

    def local_event(self, node: int, kind: str, root: bool = False) -> int:
        """A local lifecycle event (start/restart); ``root`` events open
        a fresh trace."""
        parent = None if root else self.current_event_id()
        return self._simple_event(node, parent)

    # ------------------------------------------------------------------
    # Execution scopes
    # ------------------------------------------------------------------

    def executing(self, event_id: int) -> _Scope:
        """Mark ``event_id`` as the currently-executing event.

        Events created inside (choices) may extend the stack; exit
        truncates back so sibling dispatches never see them.
        """
        return _Scope(self, event_id)

    def resumed(self, event_id: Optional[int], attempt: int = 1) -> _ResumeScope:
        """Re-enter a past event's causal scope (retransmissions).

        Sends inside keep the original trace id and parent but carry
        ``attempt`` in their context and stamp.
        """
        return _ResumeScope(self, event_id, attempt)

    # ------------------------------------------------------------------
    # TraceLog integration
    # ------------------------------------------------------------------

    def take_stamp(self) -> Optional[Dict[str, Any]]:
        """The causal stamp for the next trace record (consumed once).

        Records that did not open their own event get an ambient
        ``{"trace", "in"}`` link to the surrounding event, which keeps
        interposer/steering records attached to the delivery that
        triggered them.
        """
        stamp = self._pending
        if stamp is not None:
            self._pending = None
            return stamp
        current = self._current
        if current:
            last = current[-1]
            return {"trace": self._trace_ids[last - 1], "in": last}
        return None

    def annotate_next(self, **extra: Any) -> None:
        """Attach extra fields to the next record's causal stamp."""
        stamp: Dict[str, Any] = {}
        current = self.current_event_id()
        if current is not None:
            stamp = {"trace": self._trace_ids[current - 1], "in": current}
        stamp.update(extra)
        self._pending = stamp

    def chain_ids(self, event_id: Optional[int]) -> List[int]:
        """Parent-walk from the root cause down to ``event_id``."""
        chain: List[int] = []
        parents = self._parents
        current = event_id
        while current is not None:
            chain.append(current)
            current = parents[current - 1] if current <= len(parents) else None
        chain.reverse()
        return chain


def enable_causal_tracing(sim) -> CausalTracer:
    """Attach a fresh :class:`CausalTracer` to a simulator.

    Sets ``sim.causal`` (consulted by the transport, nodes, and the
    reliable layer) and ``sim.trace.tracer`` (so every record picks up
    its stamp).  Returns the tracer.
    """
    tracer = CausalTracer(clock=lambda: sim.now)
    sim.causal = tracer
    sim.trace.tracer = tracer
    return tracer


# ----------------------------------------------------------------------
# Happens-before graphs (rebuilt from stamped traces)
# ----------------------------------------------------------------------


@dataclass
class HBEvent:
    """One causal event as reconstructed from a stamped trace record."""

    id: int
    trace_id: int
    parent: Optional[int]
    node: Optional[int]
    time: float
    category: str
    lamport: int
    vc: Dict[int, int]
    data: Dict[str, Any]
    po_parent: Optional[int] = None  # previous event at the same node
    attempt: int = 1
    dup: bool = False

    def label(self) -> str:
        """A short human label for renderings."""
        if self.category == "net.send":
            return f"send {self.data.get('kind')}→n{self.data.get('dst')}"
        if self.category == "net.deliver":
            dup = " (dup)" if self.dup else ""
            retry = f" [attempt {self.attempt}]" if self.attempt != 1 else ""
            return f"deliver from n{self.data.get('src')}{dup}{retry}"
        if self.category == "net.drop":
            return f"drop {self.data.get('kind')} ({self.data.get('reason')})"
        if self.category == "choice.resolve":
            return f"choice {self.data.get('label')}={self.data.get('value')}"
        if self.category == "node.timer":
            return f"timer {self.data.get('name')}"
        return self.category


class HappensBeforeGraph:
    """The happens-before DAG of a causally-stamped :class:`TraceLog`.

    Edges are (a) the ``cause`` links stamped on each event — message
    send→deliver, arming event→timer fire, dispatch→choice — and (b)
    per-node program order.  Event ids increase along every edge, so
    iteration in id order is a topological order.
    """

    def __init__(self) -> None:
        self._events: Dict[int, HBEvent] = {}
        self._children: Dict[int, List[int]] = {}
        # Records without their own event, attached to a surrounding one.
        self.annotations: Dict[int, List[Any]] = {}

    @classmethod
    def from_trace(cls, trace) -> "HappensBeforeGraph":
        """Build the graph from any iterable of stamped trace records."""
        graph = cls()
        last_at_node: Dict[int, int] = {}
        for rec in trace:
            causal = getattr(rec, "causal", None)
            if not causal:
                continue
            event_id = causal.get("ev")
            if event_id is None:
                anchor = causal.get("in")
                if anchor is not None:
                    graph.annotations.setdefault(anchor, []).append(rec)
                continue
            raw_vc = causal.get("vc")
            if isinstance(raw_vc, dict):
                vc = {int(k): v for k, v in raw_vc.items()}
            elif raw_vc:
                # Dense form: index is the node id (zeros elided).
                vc = {i: c for i, c in enumerate(raw_vc) if c}
            else:
                vc = {}
            event = HBEvent(
                id=event_id,
                trace_id=causal.get("trace", 0),
                parent=causal.get("cause"),
                node=rec.node,
                time=rec.time,
                category=rec.category,
                lamport=causal.get("lc", 0),
                vc=vc,
                data=dict(rec.data),
                attempt=causal.get("attempt", 1),
                dup=bool(causal.get("dup")),
            )
            if rec.node is not None:
                event.po_parent = last_at_node.get(rec.node)
                last_at_node[rec.node] = event_id
            graph._events[event_id] = event
            for parent in {p for p in (event.parent, event.po_parent)
                           if p is not None}:
                graph._children.setdefault(parent, []).append(event_id)
        return graph

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def event(self, event_id: int) -> Optional[HBEvent]:
        return self._events.get(event_id)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HBEvent]:
        return iter(sorted(self._events.values(), key=lambda e: e.id))

    def by_category(self, category: str) -> List[HBEvent]:
        return [e for e in self if e.category == category]

    def roots(self) -> List[HBEvent]:
        return [e for e in self if e.parent is None and e.po_parent is None]

    def latest_send(
        self,
        src: Optional[int],
        dst: Optional[int],
        kind: Optional[str],
    ) -> Optional[HBEvent]:
        """The most recent ``net.send`` event matching the filters."""
        best = None
        for event in self._events.values():
            if event.category != "net.send":
                continue
            if src is not None and event.node != src:
                continue
            if dst is not None and event.data.get("dst") != dst:
                continue
            if kind is not None and event.data.get("kind") != kind:
                continue
            if best is None or event.id > best.id:
                best = event
        return best

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _parents(self, event_id: int) -> List[int]:
        event = self._events.get(event_id)
        if event is None:
            return []
        return [p for p in (event.parent, event.po_parent) if p is not None]

    def ancestors(self, event_id: int) -> Set[int]:
        """All events that happened-before ``event_id`` (cause + program
        order), excluding itself."""
        seen: Set[int] = set()
        stack = self._parents(event_id)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents(current))
        return seen

    def descendants(self, event_id: int) -> Set[int]:
        """All events causally after ``event_id``, excluding itself."""
        seen: Set[int] = set()
        stack = list(self._children.get(event_id, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children.get(current, ()))
        return seen

    def happens_before(self, a: int, b: int) -> bool:
        """Whether event ``a`` happened-before event ``b``."""
        ea, eb = self._events.get(a), self._events.get(b)
        if ea is None or eb is None or a == b:
            return False
        if ea.vc and eb.vc and ea.node is not None:
            own = ea.vc.get(ea.node)
            if own is not None:
                return own <= eb.vc.get(ea.node, 0) and ea.vc != eb.vc
        return a in self.ancestors(b)

    def concurrent(self, a: int, b: int) -> bool:
        """Whether two events are causally unordered."""
        if a == b:
            return False
        return not self.happens_before(a, b) and not self.happens_before(b, a)

    def chain(self, event_id: int) -> List[HBEvent]:
        """The cause-link chain from the root down to ``event_id``.

        Program order is deliberately excluded: the chain answers "what
        sequence of sends/deliveries/choices produced this event", not
        "what else did the node do in between".
        """
        ids: List[int] = []
        current: Optional[int] = event_id
        while current is not None:
            ids.append(current)
            event = self._events.get(current)
            current = event.parent if event is not None else None
        return [self._events[i] for i in reversed(ids) if i in self._events]

    def critical_path(self) -> List[HBEvent]:
        """The longest elapsed-time chain through the graph.

        Dynamic programming over id order (a topological order): the
        returned events form the cause/program-order path with maximal
        ``end.time - start.time`` — the sequence that gated the run.
        """
        best_dist: Dict[int, float] = {}
        best_pred: Dict[int, Optional[int]] = {}
        best_end, best_total = None, -1.0
        for event in self:
            dist = 0.0
            pred = None
            for parent in self._parents(event.id):
                parent_event = self._events.get(parent)
                if parent_event is None:
                    continue
                candidate = best_dist.get(parent, 0.0) + max(
                    0.0, event.time - parent_event.time
                )
                if candidate > dist:
                    dist, pred = candidate, parent
            best_dist[event.id] = dist
            best_pred[event.id] = pred
            if dist > best_total:
                best_total, best_end = dist, event.id
        path: List[HBEvent] = []
        current = best_end
        while current is not None:
            path.append(self._events[current])
            current = best_pred.get(current)
        path.reverse()
        return path


__all__ = [
    "CausalContext",
    "CausalTracer",
    "HBEvent",
    "HappensBeforeGraph",
    "enable_causal_tracing",
]
