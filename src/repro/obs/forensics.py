"""Violation forensics: minimal causal explanations of steering decisions.

"When CrystalBall steers an execution away from a predicted
inconsistency, the operator's first question is *why*" — this module
answers it.  Given a causally-stamped trace (see :mod:`repro.obs.causal`)
and either a predicted :class:`~repro.mc.Violation`, an installed
:class:`~repro.runtime.steering.EventFilter`, or the
``runtime.steer.explain`` records the runtime emits at steer time, it
reconstructs the *minimal causal explanation*: the chain of sends,
deliveries, timer fires, and choice resolutions leading from the
resolved choice point to the (predicted or averted) property violation.

Explanations render three ways:

* :meth:`CausalExplanation.to_json` — machine-readable, for artifacts;
* :meth:`CausalExplanation.to_markdown` — for reports and PR comments;
* :meth:`CausalExplanation.to_ascii` — a space-time diagram (one column
  per node, time flowing down) for the terminal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .causal import HappensBeforeGraph, HBEvent


@dataclass(frozen=True)
class ExplanationStep:
    """One event on an explanation's causal chain."""

    event_id: Optional[int]
    time: float
    node: Optional[int]
    category: str
    label: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": self.event_id,
            "time": round(self.time, 6),
            "node": self.node,
            "category": self.category,
            "label": self.label,
        }


@dataclass
class CausalExplanation:
    """A minimal causal explanation of one steering decision/violation.

    ``steps`` run root-first: the first step is the earliest cause kept
    (the resolved choice point when one is on the chain), the last is
    the explained event itself.  ``predicted`` is the *hypothetical*
    continuation — the model-checker action path that would have reached
    the violation had the runtime not steered.
    """

    reason: str
    trace_id: int
    steps: List[ExplanationStep] = field(default_factory=list)
    predicted: List[str] = field(default_factory=list)

    @property
    def root(self) -> Optional[ExplanationStep]:
        return self.steps[0] if self.steps else None

    def categories(self) -> List[str]:
        return [step.category for step in self.steps]

    # ------------------------------------------------------------------
    # Renderings
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "trace_id": self.trace_id,
            "steps": [step.to_dict() for step in self.steps],
            "predicted": list(self.predicted),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_markdown(self) -> str:
        lines = [f"### Why: `{self.reason}`", ""]
        lines.append(f"Causal chain (trace {self.trace_id}, root first):")
        lines.append("")
        for i, step in enumerate(self.steps, start=1):
            where = "?" if step.node is None else f"n{step.node}"
            lines.append(
                f"{i}. `t={step.time:.3f}` **{where}** {step.label}"
            )
        if self.predicted:
            lines.append("")
            lines.append("Predicted continuation (averted by steering):")
            lines.append("")
            for action in self.predicted:
                lines.append(f"- {action}")
        return "\n".join(lines) + "\n"

    def to_ascii(self, width: int = 18) -> str:
        """A space-time diagram: one column per node, time flows down."""
        nodes = sorted({s.node for s in self.steps if s.node is not None})
        if not nodes:
            return "\n".join(s.label for s in self.steps) + "\n"
        col = {node: i for i, node in enumerate(nodes)}
        header = "time".ljust(10) + "".join(
            f"n{node}".ljust(width) for node in nodes
        )
        lines = [f"# {self.reason}", header, "-" * len(header)]
        for step in self.steps:
            cells = [" " * width] * len(nodes)
            label = step.label
            if len(label) > width - 1:
                label = label[: width - 2] + "…"
            if step.node in col:
                cells[col[step.node]] = label.ljust(width)
            lines.append(f"{step.time:<10.3f}" + "".join(cells).rstrip())
        if self.predicted:
            lines.append("")
            lines.append("predicted continuation (averted):")
            for action in self.predicted:
                lines.append(f"  ~ {action}")
        return "\n".join(lines) + "\n"


def _step(event: HBEvent) -> ExplanationStep:
    return ExplanationStep(
        event_id=event.id,
        time=event.time,
        node=event.node,
        category=event.category,
        label=event.label(),
    )


def _compress(events: List[HBEvent]) -> List[ExplanationStep]:
    """Steps for ``events``, with repetitive runs elided.

    Self-rearming timers put dozens of identical fires on a cause
    chain; a *minimal* explanation keeps the first and last of each
    run of same-node/same-label events and says how many were elided.
    Message and choice events are never part of such runs, so nothing
    load-bearing is dropped.
    """
    steps: List[ExplanationStep] = []
    i = 0
    while i < len(events):
        run_end = i
        key = (events[i].node, events[i].label())
        while (
            run_end + 1 < len(events)
            and (events[run_end + 1].node, events[run_end + 1].label()) == key
        ):
            run_end += 1
        steps.append(_step(events[i]))
        if run_end > i:
            last = _step(events[run_end])
            elided = run_end - i - 1
            if elided > 0:
                last = ExplanationStep(
                    event_id=last.event_id,
                    time=last.time,
                    node=last.node,
                    category=last.category,
                    label=f"{last.label} (×{elided + 2})",
                )
            steps.append(last)
        i = run_end + 1
    return steps


def explain_chain(
    graph: HappensBeforeGraph,
    event_id: int,
    reason: str = "",
    predicted: Sequence[str] = (),
    trim_at_choice: bool = True,
) -> CausalExplanation:
    """The minimal causal explanation ending at ``event_id``.

    The full cause chain runs back to a root (usually ``node.start``);
    with ``trim_at_choice`` the chain is cut at the *nearest*
    ``choice.resolve`` ancestor so the explanation is rooted at the
    choice whose consequences surfaced here — the minimal chain in the
    paper's sense.  Chains without a choice ancestor keep their natural
    root.
    """
    events = graph.chain(event_id)
    if trim_at_choice:
        last_choice = None
        for i, event in enumerate(events[:-1]):  # the event itself stays
            if event.category == "choice.resolve":
                last_choice = i
        if last_choice is not None:
            events = events[last_choice:]
    anchor = graph.event(event_id)
    return CausalExplanation(
        reason=reason,
        trace_id=anchor.trace_id if anchor is not None else 0,
        steps=_compress(events),
        predicted=list(predicted),
    )


def explain_steering(
    trace,
    graph: Optional[HappensBeforeGraph] = None,
) -> List[CausalExplanation]:
    """One explanation per ``runtime.steer.explain`` record in ``trace``.

    The runtime stamps each steer record with the full causal chain of
    the *offending delivery* (see ``CrystalBallRuntime.on_inbound``);
    this reconstructs those chains against the happens-before graph and
    appends the steering action itself as the final step.
    """
    if graph is None:
        graph = HappensBeforeGraph.from_trace(trace)
    explanations: List[CausalExplanation] = []
    for rec in trace.select("runtime.steer.explain"):
        causal = getattr(rec, "causal", None) or {}
        chain_ids = causal.get("chain") or []
        anchor = chain_ids[-1] if chain_ids else None
        if anchor is not None and graph.event(anchor) is not None:
            explanation = explain_chain(
                graph, anchor,
                reason=rec.data.get("reason", ""),
                predicted=rec.data.get("predicted") or [],
            )
        else:
            explanation = CausalExplanation(
                reason=rec.data.get("reason", ""),
                trace_id=causal.get("trace", 0),
                predicted=list(rec.data.get("predicted") or []),
            )
        explanation.steps.append(ExplanationStep(
            event_id=None,
            time=rec.time,
            node=rec.node,
            category="runtime.steer",
            label=(
                f"steer: drop {rec.data.get('msg')} from "
                f"n{rec.data.get('src')}, break connection"
            ),
        ))
        explanations.append(explanation)
    return explanations


def _anchor_action(graph: HappensBeforeGraph, action: Any) -> Optional[HBEvent]:
    """The live send event a predicted action corresponds to, if any.

    Deliver/drop actions concern an in-flight message: the best live
    anchor is the latest matching ``net.send``.  Timer and inject
    actions are hypothetical (they exist only inside the explored
    world), so they anchor nowhere and survive only in ``predicted``.
    """
    msg = getattr(action, "msg", None)
    if msg is None:
        return None
    return graph.latest_send(
        getattr(action, "src", None),
        getattr(action, "dst", None),
        type(msg).__name__,
    )


def explain_violation(
    trace,
    violation,
    graph: Optional[HappensBeforeGraph] = None,
) -> CausalExplanation:
    """The causal explanation of one predicted :class:`Violation`.

    Every deliver/drop action on the violation's predicted path is
    anchored to the latest matching live send; the union of their
    (choice-trimmed) cause chains, in id order, is the live prefix of
    the violation — the messages that already exist and would carry the
    execution into the bad state.  The predicted action path itself is
    attached verbatim as the hypothetical continuation.
    """
    if graph is None:
        graph = HappensBeforeGraph.from_trace(trace)
    kept: Dict[int, HBEvent] = {}
    trace_id = 0
    for action in violation.path:
        anchor = _anchor_action(graph, action)
        if anchor is None:
            continue
        trace_id = trace_id or anchor.trace_id
        explanation = explain_chain(graph, anchor.id)
        for step in explanation.steps:
            if step.event_id is not None:
                event = graph.event(step.event_id)
                if event is not None:
                    kept[event.id] = event
    steps = _compress([kept[i] for i in sorted(kept)])
    return CausalExplanation(
        reason=violation.property_name,
        trace_id=trace_id,
        steps=steps,
        predicted=[a.describe() for a in violation.path],
    )


def explain_filter(
    trace,
    event_filter,
    graph: Optional[HappensBeforeGraph] = None,
) -> CausalExplanation:
    """The causal explanation of one installed :class:`EventFilter`:
    rooted at the latest live send the filter would match."""
    if graph is None:
        graph = HappensBeforeGraph.from_trace(trace)
    anchor = graph.latest_send(event_filter.src, None, event_filter.msg_type)
    if anchor is None:
        return CausalExplanation(
            reason=event_filter.reason,
            trace_id=0,
            predicted=list(event_filter.predicted_path),
        )
    return explain_chain(
        graph, anchor.id,
        reason=event_filter.reason,
        predicted=event_filter.predicted_path,
    )


__all__ = [
    "ExplanationStep",
    "CausalExplanation",
    "explain_chain",
    "explain_steering",
    "explain_violation",
    "explain_filter",
]
