"""Run reports: one uniform metrics document per completed run.

:func:`collect_cluster_metrics` walks a cluster (anything with ``sim``,
``network``, and ``nodes``) and assembles the uniform ``metrics``
section every experiment report carries: the simulator's tallies, trace
category counts, transport counters, the reliability layer's stats when
one is installed, and a per-node section folding each CrystalBall
runtime's registry (counters, spans, steering, prediction totals).

:class:`RunReport` wraps that dict with JSON and Markdown renderers —
``python -m repro.cli report <experiment>`` is the command-line front
end, and CI uploads the JSON artifact alongside the ``BENCH_*.json``
results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

TOP_TRACE_CATEGORIES = 20


def _trace_section(trace) -> Dict[str, Any]:
    counts = trace.category_counts()
    top = dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:TOP_TRACE_CATEGORIES])
    return {"records": len(trace), "categories": len(counts), "top": top}


def _network_section(network, transport=None) -> Dict[str, Any]:
    section = {
        "messages_sent": network.messages_sent,
        "messages_delivered": network.messages_delivered,
        "messages_dropped": network.messages_dropped,
        "messages_duplicated": network.messages_duplicated,
        "bytes_sent": network.bytes_sent,
    }
    # A ReliableLayer (or any transport wrapper with its own stats dict)
    # reports its protocol counters alongside the raw transport's.
    if transport is not None and transport is not network:
        stats = transport.__dict__.get("stats")
        if stats is not None and not callable(stats):
            section["reliable"] = dict(stats)
            pending = getattr(transport, "pending_count", None)
            if pending is not None:
                section["reliable"]["pending"] = pending
    return section


def node_metrics(node) -> Dict[str, Any]:
    """The per-node metrics section (runtime counters, spans, steering)."""
    section: Dict[str, Any] = {"up": node.is_up}
    runtime = getattr(node, "crystalball", None)
    if runtime is None:
        return section
    section["runtime"] = dict(runtime.stats)
    section["epoch"] = runtime.epoch
    section["steering"] = runtime.steering.snapshot()
    amortized = getattr(runtime, "amortized", None)
    if amortized is not None:
        section["steering"]["amortized"] = amortized.snapshot()
    snapshot = runtime.metrics.snapshot()
    if snapshot["spans"]:
        section["spans"] = snapshot["spans"]
    if snapshot["gauges"]:
        section["gauges"] = snapshot["gauges"]
    if snapshot["histograms"]:
        section["histograms"] = snapshot["histograms"]
    summary = getattr(runtime, "last_prediction_summary", None)
    if summary is not None:
        section["prediction"] = dict(summary)
    return section


def collect_cluster_metrics(cluster) -> Dict[str, Any]:
    """The uniform ``metrics`` section for one completed run."""
    sim = cluster.sim
    metrics: Dict[str, Any] = {
        "sim": {
            "now": sim.now,
            "events_dispatched": sim.events_dispatched,
            "pending_events": len(sim.queue),
        },
        "trace": _trace_section(sim.trace),
        "network": _network_section(
            cluster.network, getattr(cluster, "transport", None),
        ),
        "nodes": {node.node_id: node_metrics(node) for node in cluster.nodes},
    }
    return metrics


@dataclass
class RunReport:
    """A rendered run report: title, context, and the metrics tree."""

    title: str
    metrics: Dict[str, Any]
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"title": self.title, "context": self.context, "metrics": self.metrics}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str, sort_keys=True)

    def to_markdown(self) -> str:
        lines: List[str] = [f"# Run report — {self.title}", ""]
        if self.context:
            for key in sorted(self.context):
                lines.append(f"- **{key}**: {self.context[key]}")
            lines.append("")
        global_sections = {k: v for k, v in self.metrics.items() if k != "nodes"}
        for name in sorted(global_sections):
            lines.extend(_markdown_section(f"## {name}", global_sections[name]))
        nodes = self.metrics.get("nodes", {})
        if nodes:
            lines.append("## nodes")
            lines.append("")
            for node_id in sorted(nodes):
                lines.extend(_markdown_section(f"### node {node_id}", nodes[node_id]))
        return "\n".join(lines).rstrip() + "\n"

    def write(self, json_path: Optional[str] = None,
              markdown_path: Optional[str] = None) -> None:
        if json_path:
            with open(json_path, "w", encoding="utf-8") as handle:
                handle.write(self.to_json() + "\n")
        if markdown_path:
            with open(markdown_path, "w", encoding="utf-8") as handle:
                handle.write(self.to_markdown())


def _markdown_section(header: str, data: Any) -> List[str]:
    lines = [header, ""]
    lines.extend(_markdown_rows(data))
    lines.append("")
    return lines


def _markdown_rows(data: Any, prefix: str = "") -> List[str]:
    """Flatten a metrics subtree into a two-column Markdown table."""
    rows: List[tuple] = []

    def walk(node: Any, path: str) -> None:
        if isinstance(node, dict):
            for key in node:
                walk(node[key], f"{path}.{key}" if path else str(key))
        else:
            rows.append((path, node))

    walk(data, prefix)
    if not rows:
        return ["(empty)"]
    lines = ["| metric | value |", "|---|---|"]
    for path, value in rows:
        if isinstance(value, float):
            value = f"{value:.6g}"
        lines.append(f"| {path} | {value} |")
    return lines


def run_report(cluster, title: str, **context: Any) -> RunReport:
    """Build a :class:`RunReport` straight from a finished cluster."""
    return RunReport(
        title=title, metrics=collect_cluster_metrics(cluster), context=dict(context),
    )


__all__ = ["RunReport", "collect_cluster_metrics", "node_metrics", "run_report"]
