"""RunStream: the live JSONL event protocol for in-flight runs.

Every long-running workload in this repo (a T1 throughput run, a fuzz
campaign, an S1 scale sweep) historically went dark until it finished
and returned one result object.  A :class:`RunStream` is the append-only
JSONL file such a run writes *while executing*, and that anything else
— ``python -m repro.cli tail`` / ``top``, a CI smoke step, a future job
daemon — can read concurrently.

The protocol is four record types, one JSON object per line:

* ``header`` — first line: run kind, run id, stream version, and the
  run's configuration dict;
* ``sample`` — periodic instrument readings from a
  :class:`~repro.obs.timeseries.TelemetrySampler` (simulated time ``t``,
  host seconds since open ``host``, values under ``v``);
* ``event`` — discrete occurrences (safety probes, steering decisions,
  predicted violations, ``fuzz.progress`` generations);
* ``summary`` — the final record: headline results, written by
  :meth:`RunStream.write_summary` (which also closes the stream).

Writes are line-buffered and flushed per record, so a concurrent reader
never sees a torn line: a partially-written trailing line simply has no
newline yet and is withheld by :func:`read_stream` /
:func:`follow_stream` until complete.

Streaming is host-side observability only: nothing here touches
simulated time, the RNG registry, or ``TraceRecord.data``, so trace
digests and decided-log digests are byte-identical with a stream
attached or not (``benchmarks/bench_o3_stream.py`` proves it).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

STREAM_VERSION = 1

RECORD_TYPES = ("header", "sample", "event", "summary")


class StreamError(Exception):
    """Raised on malformed stream files or misuse of a closed stream."""


class RunStream:
    """Append-only JSONL writer for one in-flight run.

    ``clock`` is the simulated-time source (e.g. ``lambda: sim.now``);
    records carry both that simulated ``t`` and ``host`` seconds since
    the stream opened, the same dual-clock correlation spans use.  When
    no clock is given, ``t`` must be passed per record (fuzz campaigns
    have no simulated clock; they stream execution counts as ``t``).
    """

    def __init__(
        self,
        path: str,
        kind: str,
        run_id: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = path
        self.kind = kind
        self.run_id = run_id if run_id is not None else f"{kind}-{os.getpid()}"
        self.clock = clock
        self._host0 = time.perf_counter()
        self._handle = open(path, "w", encoding="utf-8")
        self.records_written = 0
        self.closed = False
        self._write({
            "type": "header",
            "version": STREAM_VERSION,
            "kind": kind,
            "run": self.run_id,
            "config": config or {},
        })

    # ------------------------------------------------------------------

    def _now(self, t: Optional[float]) -> float:
        if t is not None:
            return t
        if self.clock is not None:
            return self.clock()
        return 0.0

    def _write(self, record: Dict[str, Any]) -> None:
        if self.closed:
            raise StreamError(f"stream {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        # Flush per record: concurrent tails must see complete lines
        # while the run is still executing.
        self._handle.flush()
        self.records_written += 1

    def write_sample(self, values: Dict[str, Any], t: Optional[float] = None) -> None:
        """One periodic instrument reading (``v`` maps series -> value)."""
        self._write({
            "type": "sample",
            "t": round(self._now(t), 6),
            "host": round(time.perf_counter() - self._host0, 6),
            "v": values,
        })

    def write_event(self, name: str, t: Optional[float] = None, **data: Any) -> None:
        """One discrete occurrence (probe, steer, violation, progress)."""
        self._write({
            "type": "event",
            "t": round(self._now(t), 6),
            "host": round(time.perf_counter() - self._host0, 6),
            "event": name,
            "data": data,
        })

    def write_summary(self, t: Optional[float] = None, **data: Any) -> None:
        """The final record; closes the stream."""
        self._write({
            "type": "summary",
            "t": round(self._now(t), 6),
            "host": round(time.perf_counter() - self._host0, 6),
            "data": data,
        })
        self.close()

    def close(self) -> None:
        if not self.closed:
            self._handle.close()
            self.closed = True

    def __enter__(self) -> "RunStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"RunStream(path={self.path!r}, kind={self.kind!r}, "
                f"records={self.records_written}, closed={self.closed})")


def as_stream(stream: Any, kind: str, clock=None,
              config: Optional[Dict[str, Any]] = None) -> Optional[RunStream]:
    """Coerce a ``stream=`` option into a live :class:`RunStream`.

    Experiments accept either an already-open :class:`RunStream` (shared
    across phases, e.g. an S1 sweep streaming several world sizes into
    one file) or a filesystem path to open; ``None`` passes through.
    """
    if stream is None:
        return None
    if isinstance(stream, RunStream):
        return stream
    return RunStream(str(stream), kind=kind, clock=clock, config=config)


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------


def parse_record(line: str) -> Dict[str, Any]:
    """Parse and validate one stream line."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StreamError(f"invalid stream line: {line[:80]!r}") from exc
    if not isinstance(record, dict) or record.get("type") not in RECORD_TYPES:
        raise StreamError(f"unknown stream record: {line[:80]!r}")
    return record


def read_stream(path: str) -> List[Dict[str, Any]]:
    """Read every complete record currently in the file.

    A trailing line without a newline (a write in progress) is ignored,
    so reading a live stream is always safe.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.endswith("\n"):
                break  # torn tail: the writer is mid-line
            if line.strip():
                records.append(parse_record(line))
    return records


def follow_stream(
    path: str,
    poll: float = 0.1,
    timeout: Optional[float] = None,
    stop_types: tuple = ("summary",),
) -> Iterator[Dict[str, Any]]:
    """Yield records as the writer appends them (``tail -f`` semantics).

    Terminates when a record whose type is in ``stop_types`` is seen
    (the summary marks the run finished) or when ``timeout`` host
    seconds elapse without the stream ending.  The file may not exist
    yet when following starts; the reader waits for it.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    position = 0
    buffer = ""
    while True:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            buffer += chunk
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                if not line.strip():
                    continue
                record = parse_record(line)
                yield record
                if record["type"] in stop_types:
                    return
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll)


def stream_series(records: List[Dict[str, Any]]) -> Dict[str, List[tuple]]:
    """Fold a stream's sample records into per-series ``(t, value)`` lists."""
    series: Dict[str, List[tuple]] = {}
    for record in records:
        if record.get("type") != "sample":
            continue
        t = record.get("t", 0.0)
        for name, value in (record.get("v") or {}).items():
            series.setdefault(name, []).append((t, value))
    return series


__all__ = [
    "STREAM_VERSION",
    "RECORD_TYPES",
    "RunStream",
    "StreamError",
    "as_stream",
    "follow_stream",
    "parse_record",
    "read_stream",
    "stream_series",
]
