"""Timing spans: host-clock durations correlated with simulated time.

A span measures how long a runtime operation takes on the *host* clock
(``time.perf_counter``) — prediction passes, choice resolutions,
checkpoint broadcasts, chaos interposition — while optionally sampling
the *simulated* clock at entry and exit so a report can say "this node
spent 1.8 host-seconds predicting across 12 passes between t=0 and
t=30 sim-seconds".

Spans are created through :meth:`repro.obs.MetricsRegistry.span`; a
disabled registry hands back the shared :data:`NULL_SPAN`, whose enter
and exit never touch the clock — the whole span layer costs one
attribute check when observability is off.

Usage::

    with registry.span("runtime.predict", clock=lambda: sim.now, node=3):
        report = predictor.predict(world)
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple


class SpanStats:
    """Accumulated measurements for one ``(name, labels)`` span key."""

    __slots__ = ("name", "labels", "count", "total_s", "min_s", "max_s",
                 "last_s", "first_sim", "last_sim", "total_sim_s", "attrs")

    def __init__(self, name: str, labels: Tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.last_s = 0.0
        self.first_sim: Optional[float] = None
        self.last_sim: Optional[float] = None
        self.total_sim_s = 0.0
        self.attrs: Dict[str, Any] = {}

    def record(self, elapsed_s: float, sim_enter: Optional[float],
               sim_exit: Optional[float]) -> None:
        self.count += 1
        self.total_s += elapsed_s
        self.last_s = elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        if sim_enter is not None:
            if self.first_sim is None:
                self.first_sim = sim_enter
            self.last_sim = sim_exit
            if sim_exit is not None:
                self.total_sim_s += sim_exit - sim_enter

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s,
        }
        if self.first_sim is not None:
            out["sim_window"] = [self.first_sim, self.last_sim]
            out["total_sim_s"] = self.total_sim_s
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:
        return f"SpanStats({self.name} count={self.count}, total={self.total_s:.6g}s)"


class Span:
    """One live measurement; use as a context manager (re-enterable)."""

    __slots__ = ("_stats", "_clock", "_t0", "_sim0")

    def __init__(self, stats: SpanStats, clock: Optional[Callable[[], float]] = None) -> None:
        self._stats = stats
        self._clock = clock
        self._t0 = 0.0
        self._sim0: Optional[float] = None

    def __enter__(self) -> "Span":
        self._sim0 = self._clock() if self._clock is not None else None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        sim_exit = self._clock() if self._clock is not None else None
        self._stats.record(elapsed, self._sim0, sim_exit)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach last-value attributes (e.g. memo hit counts) to the
        span's accumulated stats; they appear under ``attrs`` in
        :meth:`SpanStats.summary`."""
        self._stats.attrs.update(attrs)

    @property
    def stats(self) -> SpanStats:
        return self._stats


class _NullSpan:
    """The span of a disabled registry: enter/exit without clock reads."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        return None

    @property
    def stats(self) -> None:
        return None


NULL_SPAN = _NullSpan()


__all__ = ["Span", "SpanStats", "NULL_SPAN"]
