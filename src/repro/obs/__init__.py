"""Observability: the measurement substrate under the runtime.

``repro.obs`` owns the telemetry the rest of the system records into:

* :class:`MetricsRegistry` — counters, gauges, and histograms with
  label sets; counters/gauges always record, timed instruments are
  gated by ``enabled`` (see :mod:`repro.obs.registry` for the cost
  model);
* :class:`~repro.obs.spans.Span` — host-clock timing of runtime
  operations correlated with simulated time;
* :class:`StatsView` — the dict-shaped compatibility views components
  expose as their historical ``stats`` attributes;
* :class:`RunReport` / :func:`collect_cluster_metrics` — the uniform
  per-node run report every experiment emits and
  ``python -m repro.cli report`` renders;
* :mod:`repro.obs.causal` / :mod:`repro.obs.forensics` — opt-in causal
  tracing (trace ids, Lamport/vector clocks, happens-before graphs) and
  the forensics engine that turns stamped traces into minimal causal
  explanations of steering decisions (``python -m repro.cli trace``);
* :mod:`repro.obs.timeseries` / :mod:`repro.obs.stream` — streaming
  telemetry: :class:`~repro.obs.timeseries.TelemetrySampler` reads
  instruments on a sim-time cadence into bounded downsampling
  :class:`~repro.obs.timeseries.Series` rings, a
  :class:`~repro.obs.stream.RunStream` JSONL file exposes an in-flight
  run to concurrent tails (``python -m repro.cli tail`` / ``top``), and
  a :class:`~repro.obs.timeseries.FlightRecorder` keeps the last N
  seconds for crash postmortems.

A process-wide default registry is available through :func:`registry`
for ad-hoc instrumentation; components default to private registries so
unit tests and determinism comparisons stay isolated.
"""

from .causal import (
    CausalContext,
    CausalTracer,
    HappensBeforeGraph,
    HBEvent,
    enable_causal_tracing,
)
from .forensics import (
    CausalExplanation,
    ExplanationStep,
    explain_chain,
    explain_filter,
    explain_steering,
    explain_violation,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    render_key,
    stats_view,
)
from .report import RunReport, collect_cluster_metrics, node_metrics, run_report
from .spans import NULL_SPAN, Span, SpanStats
from .stream import (
    RECORD_TYPES,
    STREAM_VERSION,
    RunStream,
    StreamError,
    as_stream,
    follow_stream,
    parse_record,
    read_stream,
    stream_series,
)
from .timeseries import FlightRecorder, Series, TelemetrySampler

_GLOBAL_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


def set_registry(new_registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = new_registry
    return previous


__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsView",
    "stats_view",
    "render_key",
    "Span",
    "SpanStats",
    "NULL_SPAN",
    "RunReport",
    "collect_cluster_metrics",
    "node_metrics",
    "run_report",
    "registry",
    "set_registry",
    "CausalContext",
    "CausalTracer",
    "HappensBeforeGraph",
    "HBEvent",
    "enable_causal_tracing",
    "CausalExplanation",
    "ExplanationStep",
    "explain_chain",
    "explain_filter",
    "explain_steering",
    "explain_violation",
    "RunStream",
    "StreamError",
    "STREAM_VERSION",
    "RECORD_TYPES",
    "as_stream",
    "follow_stream",
    "parse_record",
    "read_stream",
    "stream_series",
    "Series",
    "TelemetrySampler",
    "FlightRecorder",
]
