"""Observability: the measurement substrate under the runtime.

``repro.obs`` owns the telemetry the rest of the system records into:

* :class:`MetricsRegistry` — counters, gauges, and histograms with
  label sets; counters/gauges always record, timed instruments are
  gated by ``enabled`` (see :mod:`repro.obs.registry` for the cost
  model);
* :class:`~repro.obs.spans.Span` — host-clock timing of runtime
  operations correlated with simulated time;
* :class:`StatsView` — the dict-shaped compatibility views components
  expose as their historical ``stats`` attributes;
* :class:`RunReport` / :func:`collect_cluster_metrics` — the uniform
  per-node run report every experiment emits and
  ``python -m repro.cli report`` renders;
* :mod:`repro.obs.causal` / :mod:`repro.obs.forensics` — opt-in causal
  tracing (trace ids, Lamport/vector clocks, happens-before graphs) and
  the forensics engine that turns stamped traces into minimal causal
  explanations of steering decisions (``python -m repro.cli trace``).

A process-wide default registry is available through :func:`registry`
for ad-hoc instrumentation; components default to private registries so
unit tests and determinism comparisons stay isolated.
"""

from .causal import (
    CausalContext,
    CausalTracer,
    HappensBeforeGraph,
    HBEvent,
    enable_causal_tracing,
)
from .forensics import (
    CausalExplanation,
    ExplanationStep,
    explain_chain,
    explain_filter,
    explain_steering,
    explain_violation,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    render_key,
    stats_view,
)
from .report import RunReport, collect_cluster_metrics, node_metrics, run_report
from .spans import NULL_SPAN, Span, SpanStats

_GLOBAL_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


def set_registry(new_registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = new_registry
    return previous


__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsView",
    "stats_view",
    "render_key",
    "Span",
    "SpanStats",
    "NULL_SPAN",
    "RunReport",
    "collect_cluster_metrics",
    "node_metrics",
    "run_report",
    "registry",
    "set_registry",
    "CausalContext",
    "CausalTracer",
    "HappensBeforeGraph",
    "HBEvent",
    "enable_causal_tracing",
    "CausalExplanation",
    "ExplanationStep",
    "explain_chain",
    "explain_filter",
    "explain_steering",
    "explain_violation",
]
