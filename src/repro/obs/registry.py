"""The metrics registry: counters, gauges, histograms with label sets.

The runtime's evidence used to live in ad-hoc ``stats`` dicts scattered
across the controller, the steering module, the reliability layer, and
the chaos interposer.  :class:`MetricsRegistry` is the one substrate
they all record into now: named instruments with optional label sets,
introspectable as a single :meth:`MetricsRegistry.snapshot`, and cheap
enough to leave on in production runs.

Cost model:

* :class:`Counter` and :class:`Gauge` are *always on* — an increment is
  one attribute add, the same cost as the dict updates they replaced,
  so the stats views components expose for tests keep counting whatever
  the enabled flag says;
* :class:`Histogram` observations and spans (see :mod:`repro.obs.spans`)
  are the *timed* instruments and are gated by ``registry.enabled`` —
  with the registry disabled they are no-ops that never touch the host
  clock, which is what makes disabling observability ~free
  (``benchmarks/bench_o1_obs.py`` measures both modes).

Registries are cheap objects.  Components default to a private registry
per instance (keeping unit tests and determinism comparisons isolated);
pass a shared registry (e.g. one per cluster) with per-node labels to
aggregate a whole run, and :func:`repro.obs.report.collect_cluster_metrics`
folds them back together either way.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, MutableMapping
from typing import Any, Dict, Iterator, Optional, Tuple

LabelSet = Tuple[Tuple[str, Any], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted(labels.items()))


def render_key(name: str, labels: LabelSet) -> str:
    """Canonical ``name{k=v,...}`` rendering of an instrument key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically-growing count (settable for view compatibility)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({render_key(self.name, self.labels)}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({render_key(self.name, self.labels)}={self.value})"


class Histogram:
    """Summary statistics (count/sum/min/max) plus optional buckets.

    ``buckets`` are upper bounds; each observation lands in the first
    bucket whose bound is >= the value (an implicit +inf bucket catches
    the rest).  Observations are gated by the owning registry's
    ``enabled`` flag.

    Every histogram also keeps *streaming quantile estimates* over fixed
    log-spaced bucket edges: positive values land in sparse bucket
    ``floor(16·log10(v))`` (16 buckets per decade, ~15% relative width),
    zeros/negatives in a dedicated underflow bucket.  :meth:`quantile`
    reads p50/p95/p99 off the cumulative bucket counts without storing
    observations — constant memory, one ``log10`` per observe, and the
    estimate is within half a bucket (<±8%) of the true quantile.
    """

    QUANTILE_BUCKETS_PER_DECADE = 16
    DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "total", "min", "max", "_registry",
                 "_qcounts", "_under_count")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Optional[Tuple[float, ...]] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets)) if buckets else ()
        self.bucket_counts = [0] * (len(self.buckets) + 1) if self.buckets else []
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._registry = registry
        self._qcounts: Dict[int, int] = {}
        self._under_count = 0

    def observe(self, value: float) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = math.floor(
                self.QUANTILE_BUCKETS_PER_DECADE * math.log10(value))
            self._qcounts[index] = self._qcounts.get(index, 0) + 1
        else:
            self._under_count += 1
        if self.buckets:
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break
            else:
                self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Streaming estimate of the ``q``-quantile (0 < q <= 1).

        Walks the sparse log buckets cumulatively and returns the
        geometric midpoint of the bucket holding the target rank,
        clamped into the observed [min, max] range.  Ranks that fall in
        the underflow bucket (zero/negative observations) return the
        recorded minimum.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        if not self.count:
            return None
        rank = q * self.count
        if rank <= self._under_count:
            return self.min
        seen = float(self._under_count)
        per_decade = self.QUANTILE_BUCKETS_PER_DECADE
        for index in sorted(self._qcounts):
            seen += self._qcounts[index]
            if seen >= rank:
                midpoint = 10.0 ** ((index + 0.5) / per_decade)
                return max(self.min, min(self.max, midpoint))
        return self.max

    def quantiles(self, qs: Tuple[float, ...] = DEFAULT_QUANTILES) -> Dict[str, float]:
        """The standard percentile readout (``{"p50": ..., ...}``)."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in qs}

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self.count:
            out.update(self.quantiles())
        if self.buckets:
            out["buckets"] = {
                str(bound): self.bucket_counts[i]
                for i, bound in enumerate(self.buckets)
            }
            out["buckets"]["+inf"] = self.bucket_counts[-1]
        return out

    def __repr__(self) -> str:
        return (f"Histogram({render_key(self.name, self.labels)} "
                f"count={self.count}, mean={self.mean:.6g})")


class MetricsRegistry:
    """Process- or component-wide store of named, labelled instruments.

    The same ``(name, labels)`` pair always returns the same instrument
    object, so components can hold handles and increment without
    lookups.  ``enabled`` gates the timed instruments (histograms and
    spans); counters and gauges always record.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        # Span stats live here too, so one snapshot covers everything;
        # populated by repro.obs.spans.
        self._spans: Dict[Tuple[str, LabelSet], Any] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1], buckets=buckets, registry=self,
            )
        return instrument

    def span(self, name: str, clock=None, **labels: Any):
        """A timing span (see :mod:`repro.obs.spans`); a shared no-op
        object when the registry is disabled."""
        from .spans import NULL_SPAN, Span, SpanStats

        if not self.enabled:
            return NULL_SPAN
        key = (name, _labelset(labels))
        stats = self._spans.get(key)
        if stats is None:
            stats = self._spans[key] = SpanStats(name, key[1])
        return Span(stats, clock)

    def span_stats(self, name: str, **labels: Any):
        """The accumulated stats for one span key (or ``None``)."""
        return self._spans.get((name, _labelset(labels)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {render_key(c.name, c.labels): c.value
                for c in self._counters.values()}

    def gauges(self) -> Dict[str, float]:
        return {render_key(g.name, g.labels): g.value
                for g in self._gauges.values()}

    def snapshot(self) -> Dict[str, Any]:
        """Everything the registry holds, as plain JSON-able dicts."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                render_key(h.name, h.labels): h.summary()
                for h in self._histograms.values()
                if h.count
            },
            "spans": {
                render_key(s.name, s.labels): s.summary()
                for s in self._spans.values()
                if s.count
            },
        }

    def reset(self) -> None:
        """Zero every instrument (handles stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for key in list(self._histograms):
            hist = self._histograms[key]
            self._histograms[key] = Histogram(
                hist.name, hist.labels, buckets=hist.buckets or None, registry=self,
            )
        self._spans.clear()

    def __repr__(self) -> str:
        return (f"MetricsRegistry(enabled={self.enabled}, "
                f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, spans={len(self._spans)})")


class StatsView(MutableMapping):
    """A dict-shaped view over registry counters.

    Components that historically exposed ``self.stats`` dicts keep the
    attribute as one of these: reads return the live counter values,
    ``view[key] += 1`` routes the increment into the registry, and the
    view compares equal to (and converts into) a plain dict — existing
    tests and callers see no difference.
    """

    __slots__ = ("_instruments",)

    def __init__(self, instruments: Dict[str, Counter]) -> None:
        self._instruments = instruments

    def __getitem__(self, key: str) -> int:
        return self._instruments[key].value

    def __setitem__(self, key: str, value: int) -> None:
        self._instruments[key].value = value

    def __delitem__(self, key: str) -> None:
        raise TypeError("StatsView keys are fixed by the owning component")

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return repr(dict(self))


def stats_view(registry: MetricsRegistry, prefix: str, keys, **labels: Any) -> StatsView:
    """A :class:`StatsView` over ``<prefix>.<key>`` counters in ``registry``."""
    return StatsView({
        key: registry.counter(f"{prefix}.{key}", **labels) for key in keys
    })


__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsView",
    "stats_view",
    "render_key",
]
