"""Baseline RandTree: hard-coded policies buried in the handlers.

This is a faithful Python port of the *style* of the publicly released
Mace RandTree the paper starts from: "the logic for making the
forwarding decision is fairly complex, and involves a few calls to a
pseudo-random number generator" (Section 3.1).  One message handler
serves the join request end to end; the forwarding strategy, the
acceptance policy, duplicate suppression, the recovery preference order
(grandparent, then siblings, then root), and the node's *own* network
measurement machinery (ping/pong RTT probing feeding an EWMA map used
to bias forwarding) are all entangled in nested conditionals with
explicit PRNG calls.

The choice-exposed rewrite in ``exposed.py`` implements the same
protocol; E1 (the LoC/complexity experiment) compares the two files
with ``repro.metrics``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...statemachine import Service, msg_handler, timer_handler
from .common import (
    Heartbeat,
    HeartbeatAck,
    Join,
    JoinReply,
    Ping,
    Pong,
    RandTreeConfig,
    STATE_FIELDS,
)

RTT_ALPHA = 0.3
JOIN_CACHE_WINDOW = 0.25


class BaselineRandTree(Service):
    """Random overlay tree with hard-coded join/recovery policies."""

    state_fields = STATE_FIELDS + (
        "rtt_to", "recovery_attempts", "recent_joins",
    )

    def __init__(self, node_id: int, config: Optional[RandTreeConfig] = None) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else RandTreeConfig()
        self.joined = False
        self.parent: Optional[int] = None
        self.children: List[int] = []
        self.depth = 0
        self.child_last_seen: Dict[int, float] = {}
        self.hb_missed = 0
        self.siblings: List[int] = []
        self.grandparent: Optional[int] = None
        # Hand-rolled network model: EWMA RTT per peer, fed by our own
        # ping/pong probes (the duplication the paper argues against).
        self.rtt_to: Dict[int, float] = {}
        self.recovery_attempts = 0
        self.recent_joins: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_init(self) -> None:
        if self.node_id == self.config.root:
            self.joined = True
            self.depth = 1
            self.parent = None
        else:
            self.joined = False
            self.send(self.config.root, Join(joiner=self.node_id))
            self.set_timer("join-retry", self.config.join_retry)
        self.set_timer("sweep", self.config.sweep_period)
        self.set_timer("ping", self.config.ping_period)

    # ------------------------------------------------------------------
    # The monolithic join handler (hard-coded policy)
    # ------------------------------------------------------------------

    @msg_handler(Join)
    def handle_join(self, src: int, msg: Join) -> None:
        joiner = msg.joiner
        rng = self.rng("join")
        now = self.now()
        if joiner == self.node_id:
            # Our own join request travelled back to us; if we are still
            # unjoined and not the root, retry through the root, with a
            # random backoff spin to avoid ping-ponging.
            if not self.joined and self.node_id != self.config.root:
                if rng.random() < 0.5:
                    self.send(self.config.root, Join(joiner=self.node_id))
            return
        # Suppress duplicate join requests seen within the cache window
        # (re-forwarding them amplifies join storms).
        last = self.recent_joins.get(joiner)
        if last is not None and now - last < JOIN_CACHE_WINDOW and joiner not in self.children:
            return
        self.recent_joins[joiner] = now
        if not self.joined:
            # Not part of the tree ourselves: we cannot adopt.  The root
            # is always joined, so bounce the request back to the root
            # unless we *are* the (misconfigured) root.
            if self.node_id != self.config.root:
                self.send(self.config.root, Join(joiner=joiner))
            return
        if joiner in self.children:
            # Duplicate join (our earlier reply was probably lost):
            # refresh the adoption instead of creating a second edge.
            self.child_last_seen[joiner] = now
            self._send_reply(joiner)
            return
        if joiner == self.parent:
            # Our own parent is rejoining below us: adopting it would
            # create a cycle.  Push the request up toward the root
            # instead, or to the root directly if we lost the parent.
            if self.parent is not None and self.hb_missed <= self.config.parent_miss_limit:
                self.send(self.config.root, Join(joiner=joiner))
            return
        if len(self.children) < self.config.max_children:
            # Capacity available.  The released RandTree flips a biased
            # coin between keeping the joiner and pushing it down, to
            # randomize tree shape while the tree is young.
            if not self.children:
                self._adopt(joiner)
            elif rng.random() < 0.85:
                self._adopt(joiner)
            else:
                victim_index = rng.randrange(len(self.children))
                forward_to = self.children[victim_index]
                if forward_to == joiner:
                    self._adopt(joiner)
                else:
                    self.send(forward_to, Join(joiner=joiner))
            return
        # Full: forward to a random child, preferring one that is not
        # the message sender and not the joiner (both would bounce the
        # request straight back).
        candidates = [c for c in self.children if c != src and c != joiner]
        if not candidates:
            candidates = [c for c in self.children if c != joiner]
        if not candidates:
            # Every child is the joiner (single-child degenerate case):
            # refresh the adoption.
            self.child_last_seen[joiner] = now
            self._send_reply(joiner)
            return
        target = candidates[rng.randrange(len(candidates))]
        self.send(target, Join(joiner=joiner))

    def _adopt(self, joiner: int) -> None:
        self.children.append(joiner)
        self.child_last_seen[joiner] = self.now()
        self._send_reply(joiner)
        self._push_family_updates()

    def _send_reply(self, joiner: int) -> None:
        self.send(
            joiner,
            JoinReply(
                accepted=True,
                depth=self.depth + 1,
                siblings=[c for c in self.children if c != joiner],
                grandparent=self.parent,
            ),
        )

    def _push_family_updates(self) -> None:
        # Children learn their sibling set through the next ack; nothing
        # to do eagerly, but keep the hook explicit for symmetry with
        # the released implementation.
        return None

    # ------------------------------------------------------------------
    # Join replies
    # ------------------------------------------------------------------

    @msg_handler(JoinReply)
    def handle_join_reply(self, src: int, msg: JoinReply) -> None:
        if not msg.accepted:
            if not self.joined:
                self.send(self.config.root, Join(joiner=self.node_id))
            return
        if self.joined:
            if src != self.parent:
                # A stale acceptance from an older join attempt; our
                # current parent wins, so ignore it.
                return
            self.depth = msg.depth
            self.siblings = list(msg.siblings)
            self.grandparent = msg.grandparent
            return
        self.joined = True
        self.parent = src
        self.depth = msg.depth
        self.siblings = list(msg.siblings)
        self.grandparent = msg.grandparent
        self.hb_missed = 0
        self.recovery_attempts = 0
        self.cancel_timer("join-retry")
        self.set_timer("heartbeat", self.config.hb_period)

    # ------------------------------------------------------------------
    # Liveness maintenance (heartbeats, sweeps, retries)
    # ------------------------------------------------------------------

    @msg_handler(Heartbeat)
    def handle_heartbeat(self, src: int, msg: Heartbeat) -> None:
        if not self.joined:
            return
        if src in self.children:
            self.child_last_seen[src] = self.now()
            self._send_ack(src)
        else:
            # A node that still believes we are its parent (we swept it,
            # or we restarted).  Re-adopt if there is room; otherwise
            # stay silent and let its miss counter trigger a rejoin.
            if len(self.children) < self.config.max_children and src != self.parent:
                self.children.append(src)
                self.child_last_seen[src] = self.now()
                self._send_ack(src)

    def _send_ack(self, child: int) -> None:
        self.send(
            child,
            HeartbeatAck(
                depth=self.depth,
                siblings=[c for c in self.children if c != child],
                grandparent=self.parent,
            ),
        )

    @msg_handler(HeartbeatAck)
    def handle_heartbeat_ack(self, src: int, msg: HeartbeatAck) -> None:
        if src != self.parent:
            return
        self.hb_missed = 0
        if msg.depth + 1 != self.depth:
            self.depth = msg.depth + 1
        self.siblings = list(msg.siblings)
        self.grandparent = msg.grandparent

    @timer_handler("heartbeat")
    def on_heartbeat_timer(self, payload) -> None:
        if not self.joined or self.parent is None:
            return
        if self.hb_missed >= self.config.parent_miss_limit:
            self._parent_lost()
            return
        self.hb_missed += 1
        self.send(self.parent, Heartbeat())
        self.set_timer("heartbeat", self.config.hb_period)

    def _parent_lost(self) -> None:
        # Hard-coded recovery preference order: grandparent first, then
        # the nearest-by-RTT sibling (random among unmeasured), falling
        # back to the root after too many failed attempts.
        self.joined = False
        self.parent = None
        self.hb_missed = 0
        self.recovery_attempts += 1
        rng = self.rng("recovery")
        if self.recovery_attempts > self.config.recovery_root_fallback:
            target = self.config.root
        elif self.grandparent is not None and self.grandparent != self.node_id:
            target = self.grandparent
        else:
            candidates = [s for s in self.siblings if s != self.node_id]
            if candidates:
                measured = [s for s in candidates if s in self.rtt_to]
                if measured:
                    target = measured[0]
                    for sibling in measured[1:]:
                        if self.rtt_to[sibling] < self.rtt_to[target]:
                            target = sibling
                else:
                    target = candidates[rng.randrange(len(candidates))]
            else:
                target = self.config.root
        self.send(target, Join(joiner=self.node_id))
        self.set_timer("join-retry", self.config.join_retry)

    @timer_handler("sweep")
    def on_sweep_timer(self, payload) -> None:
        if self.joined and self.children:
            now = self.now()
            dead = [
                c for c in self.children
                if now - self.child_last_seen.get(c, 0.0) > self.config.child_timeout
            ]
            for child in dead:
                self.children.remove(child)
                self.child_last_seen.pop(child, None)
        self.set_timer("sweep", self.config.sweep_period)

    @timer_handler("join-retry")
    def on_join_retry(self, payload) -> None:
        if self.joined:
            return
        self.recovery_attempts += 1
        self.send(self.config.root, Join(joiner=self.node_id))
        self.set_timer("join-retry", self.config.join_retry)

    # ------------------------------------------------------------------
    # Hand-rolled network measurement (ping/pong RTT probing)
    # ------------------------------------------------------------------

    @timer_handler("ping")
    def on_ping_timer(self, payload) -> None:
        if self.joined:
            for peer in self.children:
                self.send(peer, Ping(sent_at=self.now()))
            if self.parent is not None:
                self.send(self.parent, Ping(sent_at=self.now()))
        self.set_timer("ping", self.config.ping_period)

    @msg_handler(Ping)
    def handle_ping(self, src: int, msg: Ping) -> None:
        self.send(src, Pong(sent_at=msg.sent_at))

    @msg_handler(Pong)
    def handle_pong(self, src: int, msg: Pong) -> None:
        sample = self.now() - msg.sent_at
        if sample < 0:
            return
        previous = self.rtt_to.get(src)
        if previous is None:
            self.rtt_to[src] = sample
        else:
            self.rtt_to[src] = previous + RTT_ALPHA * (sample - previous)


def make_baseline_factory(config: Optional[RandTreeConfig] = None):
    """Factory of baseline services sharing one configuration."""
    cfg = config if config is not None else RandTreeConfig()

    def factory(node_id: int) -> BaselineRandTree:
        return BaselineRandTree(node_id, cfg)

    return factory


__all__ = ["BaselineRandTree", "make_baseline_factory"]
