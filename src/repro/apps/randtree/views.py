"""RandTree over partial views: overlay-tree maintenance at scale.

:class:`ViewRandTree` composes
:class:`~repro.net.membership.PartialViewMembership` in front of
:class:`~repro.apps.randtree.exposed.ExposedRandTree`.  The tree
protocol itself is unchanged — joins still funnel through the root and
forward down the tree — but recovery gets strictly better choices: a
node that loses its parent exposes its active view alongside the usual
grandparent/sibling/root candidates, so repair no longer herds through
the root when closer attachment points exist.  A peer that drops out of
the active view while being this node's parent triggers an immediate
rejoin instead of waiting out heartbeat misses.
"""

from __future__ import annotations

from typing import List, Optional

from ...net.membership import (
    VIEW_STATE_FIELDS,
    PartialViewMembership,
    ViewConfig,
)
from .common import RandTreeConfig
from .exposed import ExposedRandTree


class ViewRandTree(PartialViewMembership, ExposedRandTree):
    """Random overlay tree whose repair choices range over the view."""

    state_fields = ExposedRandTree.state_fields + VIEW_STATE_FIELDS

    def __init__(
        self,
        node_id: int,
        config: Optional[RandTreeConfig] = None,
        view_config: Optional[ViewConfig] = None,
    ) -> None:
        ExposedRandTree.__init__(self, node_id, config)
        self.init_views(view_config)

    def rejoin_candidates(self) -> List[int]:
        base = set(super().rejoin_candidates())
        base.update(p for p in self.active if p != self.node_id)
        return sorted(base)

    def on_neighbor_down(self, peer: int) -> None:
        # Membership detected the peer before the heartbeat ladder did;
        # react immediately when it was load-bearing for the tree.
        if self.joined and peer == self.parent:
            self.rejoin()


def make_view_randtree_factory(
    config: Optional[RandTreeConfig] = None,
    view_config: Optional[ViewConfig] = None,
):
    """Factory of view-based randtree services sharing one configuration."""
    cfg = config if config is not None else RandTreeConfig()
    vcfg = view_config if view_config is not None else ViewConfig()

    def factory(node_id: int) -> ViewRandTree:
        return ViewRandTree(node_id, cfg, vcfg)

    return factory


__all__ = ["ViewRandTree", "make_view_randtree_factory"]
