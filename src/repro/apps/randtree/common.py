"""Shared RandTree protocol pieces: wire messages, configuration, tree
analysis, safety properties, and the balance objective.

RandTree builds a random overlay tree with bounded node degree.  "In a
random overlay tree, a node has the choice of forwarding an incoming
join request to its parent or to one of its children, to meet the
expected goal of a balanced tree" (Section 3.1).  Both the baseline and
the choice-exposed implementations speak these messages and share state
field names, so the same analysis and objectives apply to either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ...choice.objectives import Objective, PerformanceObjective, WeightedObjective
from ...mc.properties import SafetyProperty, all_nodes, pairwise
from ...statemachine import Message

# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------


@dataclass
class Join(Message):
    """Request that ``joiner`` be attached somewhere in the tree."""

    joiner: int


@dataclass
class JoinReply(Message):
    """Acceptance from the node that adopted the joiner.

    ``depth`` is the adopter's depth plus one (root has depth 1, the
    convention the paper's Section 4 numbers use: optimal depth for 31
    nodes with fan-out 2 is 5).  ``siblings`` and ``grandparent`` seed
    the joiner's recovery information.
    """

    accepted: bool
    depth: int
    siblings: List[int]
    grandparent: Optional[int]


@dataclass
class Heartbeat(Message):
    """Child-to-parent liveness beacon."""


@dataclass
class HeartbeatAck(Message):
    """Parent's reply.

    Carries the parent's current depth (so depth refreshes propagate
    down the tree) and the child's current family information
    (siblings and grandparent) used for failure recovery.
    """

    depth: int
    siblings: List[int]
    grandparent: Optional[int]


@dataclass
class Ping(Message):
    """Baseline-only active RTT probe.

    The baseline implements its own network measurement (the
    duplicated-effort pattern Section 1 criticizes); the exposed
    version relies on the runtime's shared network model instead.
    """

    sent_at: float


@dataclass
class Pong(Message):
    """Reply to a baseline :class:`Ping`."""

    sent_at: float


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RandTreeConfig:
    """Protocol parameters shared by both implementations."""

    root: int = 0
    max_children: int = 2
    hb_period: float = 0.5
    child_timeout: float = 2.0
    parent_miss_limit: int = 3
    join_retry: float = 1.5
    sweep_period: float = 1.0
    ping_period: float = 1.0  # baseline-only active probing
    recovery_root_fallback: int = 2  # rejoin attempts before falling back to root


# State field names shared by both implementations (and relied on by
# tree analysis over checkpoints).
STATE_FIELDS = (
    "joined", "parent", "children", "depth", "child_last_seen", "hb_missed",
    "siblings", "grandparent",
)


# ----------------------------------------------------------------------
# Tree analysis (over live services or checkpoint dicts)
# ----------------------------------------------------------------------


def consistent_edges(states: Dict[int, Dict[str, Any]], root: int) -> Dict[int, List[int]]:
    """Adjacency of *consistent* parent->child edges.

    An edge exists when the parent lists the child AND the child (if
    known) agrees and is joined.  Children without a checkpoint are
    included optimistically (partial knowledge).
    """
    adjacency: Dict[int, List[int]] = {}
    for node_id, state in states.items():
        if node_id != root and not state.get("joined"):
            continue
        kids = []
        for child in state.get("children", []):
            child_state = states.get(child)
            if child_state is None:
                kids.append(child)
            elif child_state.get("joined") and child_state.get("parent") == node_id:
                kids.append(child)
        adjacency[node_id] = kids
    return adjacency


def tree_depths(states: Dict[int, Dict[str, Any]], root: int) -> Dict[int, int]:
    """Depth of every node reachable from the root (root depth = 1)."""
    adjacency = consistent_edges(states, root)
    depths: Dict[int, int] = {}
    if root not in states:
        return depths
    frontier = [(root, 1)]
    while frontier:
        node_id, depth = frontier.pop()
        if node_id in depths:
            continue  # defensive: a cycle in inconsistent states
        depths[node_id] = depth
        for child in adjacency.get(node_id, []):
            if child not in depths:
                frontier.append((child, depth + 1))
    return depths


def max_tree_depth(states: Dict[int, Dict[str, Any]], root: int) -> int:
    """Maximum depth over reachable nodes (0 for an unknown root)."""
    depths = tree_depths(states, root)
    return max(depths.values()) if depths else 0


def unattached_nodes(states: Dict[int, Dict[str, Any]], root: int) -> Set[int]:
    """Nodes present in ``states`` but not reachable from the root."""
    reachable = set(tree_depths(states, root))
    return set(states) - reachable


def subtree_sizes(states: Dict[int, Dict[str, Any]], root: int) -> Dict[int, int]:
    """Size of the subtree rooted at each reachable node."""
    adjacency = consistent_edges(states, root)
    sizes: Dict[int, int] = {}

    order: List[int] = []
    seen = {root}
    stack = [root]
    while stack:
        node_id = stack.pop()
        order.append(node_id)
        for child in adjacency.get(node_id, []):
            if child not in seen:
                seen.add(child)
                stack.append(child)
    for node_id in reversed(order):
        sizes[node_id] = 1 + sum(sizes.get(c, 0) for c in adjacency.get(node_id, []))
    return sizes


def _world_states(world) -> Dict[int, Dict[str, Any]]:
    return {nid: world.state_of(nid) for nid in world.live_nodes()}


def total_path_length(states: Dict[int, Dict[str, Any]], root: int) -> int:
    """Sum of depths of all reachable nodes.

    Unlike maximum depth this metric strictly improves for *every*
    shallower attachment, so it discriminates between candidate
    subtrees even while the maximum is untouched (a pure max-depth
    objective plateaus and degenerates into first-candidate herding).
    """
    return sum(tree_depths(states, root).values())


def pending_forward_penalty(states: Dict[int, Dict[str, Any]], root: int) -> float:
    """Load implied by in-flight joins, from service-contributed state.

    Each join a node recently forwarded toward child ``c`` will attach
    somewhere below ``c`` — work that no checkpoint shows yet.  The
    penalty is ``(depth(c) + 1) * count²`` per child: depth-weighted so
    deeper targets cost more, and convex in the count so concurrent
    bursts spread across children instead of herding into one subtree.
    """
    depths = tree_depths(states, root)
    penalty = 0.0
    for node_id, state in states.items():
        node_depth = depths.get(node_id)
        for child, count in state.get("recent_forwards", {}).items():
            child_depth = depths.get(child, (node_depth or 0) + 1)
            penalty += (child_depth + 1) * float(count) ** 2
    return penalty


def make_balance_objective(config: RandTreeConfig) -> Objective:
    """The objective installed in the case study: "prioritize building a
    balanced tree" (Section 4).

    Dominant term: maximum tree depth.  Tie-breaking term: total path
    length, so attachments below the current maximum still prefer the
    shallower subtree.  Unattached nodes carry a heavy penalty so
    resolution never favours dropping a joiner.
    """
    root = config.root
    depth_term = PerformanceObjective(
        "max-tree-depth", lambda world: float(max_tree_depth(_world_states(world), root)),
        minimize=True, weight=1.0,
    )
    path_term = PerformanceObjective(
        "total-path-length",
        lambda world: float(total_path_length(_world_states(world), root)),
        minimize=True, weight=0.05,
    )
    orphan_term = PerformanceObjective(
        "unattached-nodes",
        lambda world: float(len(unattached_nodes(_world_states(world), root))),
        minimize=True, weight=10.0,
    )
    pending_term = PerformanceObjective(
        "pending-forwards",
        lambda world: pending_forward_penalty(_world_states(world), root),
        minimize=True, weight=0.05,
    )
    return WeightedObjective(
        [(1.0, depth_term), (1.0, path_term), (1.0, orphan_term), (1.0, pending_term)],
        name="tree-balance",
    )


def child_parent_consistent(a: int, sa: Dict[str, Any], b: int, sb: Dict[str, Any]) -> bool:
    """If a lists b as a child and b is joined, b must name a as parent."""
    if b in sa.get("children", []) and sb.get("joined"):
        return sb.get("parent") == a
    return True


def no_self_loop(nid: int, state: Dict[str, Any]) -> bool:
    """A node never parents or adopts itself."""
    return state.get("parent") != nid and nid not in state.get("children", [])


def randtree_properties(config: RandTreeConfig) -> List[SafetyProperty]:
    """Safety properties for RandTree worlds (CrystalBall-style).

    All three are built from the :mod:`repro.mc.properties` combinators
    so they evaluate incrementally on evolved worlds.
    """

    def within_degree(nid: int, state: Dict[str, Any]) -> bool:
        return len(state.get("children", [])) <= config.max_children

    return [
        pairwise(child_parent_consistent, name="child-parent-consistency"),
        all_nodes(within_degree, name="degree-bound"),
        all_nodes(no_self_loop, name="no-self-loops"),
    ]


__all__ = [
    "Join",
    "JoinReply",
    "Heartbeat",
    "HeartbeatAck",
    "RandTreeConfig",
    "STATE_FIELDS",
    "consistent_edges",
    "tree_depths",
    "max_tree_depth",
    "unattached_nodes",
    "subtree_sizes",
    "make_balance_objective",
    "pending_forward_penalty",
    "child_parent_consistent",
    "no_self_loop",
    "randtree_properties",
]
