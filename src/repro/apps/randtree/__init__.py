"""RandTree: the paper's Section 4 case study.

``BaselineRandTree`` buries its policies in one monolithic handler with
PRNG calls; ``ExposedRandTree`` exposes the same decisions through the
choice API and guard-split handlers.  ``common`` holds the shared wire
protocol, tree analysis, objectives, and safety properties.
"""

from .baseline import BaselineRandTree, make_baseline_factory
from .common import (
    Heartbeat,
    HeartbeatAck,
    Join,
    JoinReply,
    RandTreeConfig,
    STATE_FIELDS,
    consistent_edges,
    make_balance_objective,
    max_tree_depth,
    randtree_properties,
    subtree_sizes,
    tree_depths,
    unattached_nodes,
)
from .exposed import ExposedRandTree, make_exposed_factory
from .views import ViewRandTree, make_view_randtree_factory

__all__ = [
    "ViewRandTree",
    "make_view_randtree_factory",
    "BaselineRandTree",
    "make_baseline_factory",
    "Heartbeat",
    "HeartbeatAck",
    "Join",
    "JoinReply",
    "RandTreeConfig",
    "STATE_FIELDS",
    "consistent_edges",
    "make_balance_objective",
    "max_tree_depth",
    "randtree_properties",
    "subtree_sizes",
    "tree_depths",
    "unattached_nodes",
    "ExposedRandTree",
    "make_exposed_factory",
]
