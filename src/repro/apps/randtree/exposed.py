"""Choice-exposed RandTree: the paper's new programming model.

Same protocol as ``baseline.py``, rewritten the way Section 3.1
prescribes: instead of one monolithic join handler with buried policy,
there are several small handlers for the same message type (an NFA over
guards), and the actual decisions — which child receives a forwarded
join, which relative to rejoin through after a failure — are *exposed*
to the runtime via ``choose``.  The baseline's private ping/pong RTT
machinery disappears entirely: the runtime's shared network model
already knows link performance.  Resolution policy is whatever resolver
the node carries: random (Choice-Random) or the CrystalBall predictive
resolver (Choice-CrystalBall).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...statemachine import Service, msg_handler, timer_handler
from .common import (
    Heartbeat,
    HeartbeatAck,
    Join,
    JoinReply,
    RandTreeConfig,
    STATE_FIELDS,
)


def _bounce(svc: "ExposedRandTree", src: int, msg: Join) -> bool:
    return not svc.joined and msg.joiner != svc.node_id


def _refresh(svc: "ExposedRandTree", src: int, msg: Join) -> bool:
    return svc.joined and msg.joiner in svc.children


def _accept(svc: "ExposedRandTree", src: int, msg: Join) -> bool:
    return (
        svc.joined
        and msg.joiner not in svc.children
        and msg.joiner not in (svc.node_id, svc.parent)
        and len(svc.children) < svc.config.max_children
    )


def _forward(svc: "ExposedRandTree", src: int, msg: Join) -> bool:
    return (
        svc.joined
        and msg.joiner not in svc.children
        and msg.joiner not in (svc.node_id, svc.parent)
        and len(svc.children) >= svc.config.max_children
    )


class ExposedRandTree(Service):
    """Random overlay tree with exposed choices.

    ``recent_forwards`` is the service's contribution to the predictive
    model (Section 3.3.2: the service "can contribute to efficiently
    maintaining the model by exporting state whose goal is to keep
    track of information in other nodes"): it counts joins recently
    forwarded toward each child — in-flight work the checkpoints of
    other nodes cannot show yet — so concurrent join bursts do not all
    herd into the same subtree.
    """

    state_fields = STATE_FIELDS + ("recent_forwards",)

    def __init__(self, node_id: int, config: Optional[RandTreeConfig] = None) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else RandTreeConfig()
        self.joined = False
        self.parent: Optional[int] = None
        self.children: List[int] = []
        self.depth = 0
        self.child_last_seen: Dict[int, float] = {}
        self.hb_missed = 0
        self.siblings: List[int] = []
        self.grandparent: Optional[int] = None
        self.recent_forwards: Dict[int, int] = {}

    def on_init(self) -> None:
        if self.node_id == self.config.root:
            self.joined = True
            self.depth = 1
        else:
            self.send(self.config.root, Join(joiner=self.node_id))
            self.set_timer("join-retry", self.config.join_retry)
        self.set_timer("sweep", self.config.sweep_period)

    # ------------------------------------------------------------------
    # Join handling: one small handler per situation (NFA style)
    # ------------------------------------------------------------------

    @msg_handler(Join, guard=_bounce)
    def bounce_join(self, src: int, msg: Join) -> None:
        self.send(self.config.root, Join(joiner=msg.joiner))

    @msg_handler(Join, guard=_refresh)
    def refresh_join(self, src: int, msg: Join) -> None:
        self.child_last_seen[msg.joiner] = self.now()
        self._send_reply(msg.joiner)

    @msg_handler(Join, guard=_accept)
    def accept_join(self, src: int, msg: Join) -> None:
        self.children.append(msg.joiner)
        self.child_last_seen[msg.joiner] = self.now()
        self._send_reply(msg.joiner)

    @msg_handler(Join, guard=_forward)
    def forward_join(self, src: int, msg: Join) -> None:
        target = self.choose(
            "join-forward",
            [c for c in self.children if c != msg.joiner],
            joiner=msg.joiner,
        )
        self.recent_forwards[target] = self.recent_forwards.get(target, 0) + 1
        self.send(target, Join(joiner=msg.joiner))

    def _send_reply(self, joiner: int) -> None:
        self.send(
            joiner,
            JoinReply(
                accepted=True,
                depth=self.depth + 1,
                siblings=[c for c in self.children if c != joiner],
                grandparent=self.parent,
            ),
        )

    # ------------------------------------------------------------------
    # Join replies
    # ------------------------------------------------------------------

    @msg_handler(JoinReply)
    def handle_join_reply(self, src: int, msg: JoinReply) -> None:
        if self.joined:
            if src == self.parent:
                self._absorb_family(msg.depth, msg.siblings, msg.grandparent)
            return
        self.joined = True
        self.parent = src
        self.hb_missed = 0
        self._absorb_family(msg.depth, msg.siblings, msg.grandparent)
        self.cancel_timer("join-retry")
        self.set_timer("heartbeat", self.config.hb_period)

    def _absorb_family(self, depth: int, siblings: List[int], grandparent: Optional[int]) -> None:
        self.depth = depth
        self.siblings = list(siblings)
        self.grandparent = grandparent

    # ------------------------------------------------------------------
    # Liveness maintenance
    # ------------------------------------------------------------------

    @msg_handler(Heartbeat, guard=lambda svc, src, msg: svc.joined and src in svc.children)
    def ack_heartbeat(self, src: int, msg: Heartbeat) -> None:
        self.child_last_seen[src] = self.now()
        self._send_ack(src)

    @msg_handler(
        Heartbeat,
        guard=lambda svc, src, msg: (
            svc.joined and src not in svc.children and src != svc.parent
            and len(svc.children) < svc.config.max_children
        ),
    )
    def readopt_on_heartbeat(self, src: int, msg: Heartbeat) -> None:
        self.children.append(src)
        self.child_last_seen[src] = self.now()
        self._send_ack(src)

    def _send_ack(self, child: int) -> None:
        self.send(
            child,
            HeartbeatAck(
                depth=self.depth,
                siblings=[c for c in self.children if c != child],
                grandparent=self.parent,
            ),
        )

    @msg_handler(HeartbeatAck)
    def handle_heartbeat_ack(self, src: int, msg: HeartbeatAck) -> None:
        if src != self.parent:
            return
        self.hb_missed = 0
        self._absorb_family(msg.depth + 1, msg.siblings, msg.grandparent)

    @timer_handler("heartbeat")
    def on_heartbeat_timer(self, payload) -> None:
        if not self.joined or self.parent is None:
            return
        if self.hb_missed >= self.config.parent_miss_limit:
            self.rejoin()
            return
        self.hb_missed += 1
        self.send(self.parent, Heartbeat())
        self.set_timer("heartbeat", self.config.hb_period)

    def rejoin_candidates(self) -> List[int]:
        """Plausible attachment points after losing the parent — known
        relatives plus the root; view-based variants widen this with
        their membership view."""
        candidates = [self.grandparent] + self.siblings + [self.config.root]
        return sorted({c for c in candidates if c is not None and c != self.node_id})

    def rejoin(self) -> None:
        """Parent lost: rejoin through a chosen relative.

        The recovery policy is a single exposed choice over every
        plausible attachment point; the baseline's hand-coded
        grandparent/sibling/root preference ladder is gone.
        """
        self.joined = False
        self.parent = None
        self.hb_missed = 0
        target = self.choose("rejoin-target", self.rejoin_candidates())
        self.send(target, Join(joiner=self.node_id))
        self.set_timer("join-retry", self.config.join_retry)

    @timer_handler("sweep")
    def on_sweep_timer(self, payload) -> None:
        now = self.now()
        dead = [
            c for c in self.children
            if now - self.child_last_seen.get(c, 0.0) > self.config.child_timeout
        ]
        for child in dead:
            self.children.remove(child)
            self.child_last_seen.pop(child, None)
        # Forwarded joins have long landed by the next sweep.
        self.recent_forwards = {}
        self.set_timer("sweep", self.config.sweep_period)

    @timer_handler("join-retry")
    def on_join_retry(self, payload) -> None:
        if self.joined:
            return
        self.send(self.config.root, Join(joiner=self.node_id))
        self.set_timer("join-retry", self.config.join_retry)


def make_exposed_factory(config: Optional[RandTreeConfig] = None):
    """Factory of exposed services sharing one configuration."""
    cfg = config if config is not None else RandTreeConfig()

    def factory(node_id: int) -> ExposedRandTree:
        return ExposedRandTree(node_id, cfg)

    return factory


__all__ = ["ExposedRandTree", "make_exposed_factory"]
