"""Model-based scoring for the exposed proposer choice.

Predicted commit latency of routing a command through proposer ``p``::

    rtt(origin, p)            # forward the command + learn the result
  + majority_rtt(p)           # one accept round to a majority

where ``majority_rtt(p)`` is the round-trip to the (majority-1)-th
closest other replica — the accept round completes when that many
acceptors besides ``p`` itself have replied.  The resolver picks the
proposer minimizing this estimate using the runtime's network model,
which is the paper's "let the runtime pick the best proposer for
high-performance across a range of deployment settings".
"""

from __future__ import annotations

from typing import Any, Optional

from ...choice.choicepoint import ChoicePoint
from ...choice.objectives import Objective
from ...choice.resolvers import GreedyResolver


class ThroughputObjective(Objective):
    """Committed-work objective for prediction-driven batching.

    Scores a (hypothetical) world by how much replicated work it has
    gotten done: executed commands count fully, chosen-but-unexecuted
    batches count partially, and commands still waiting in a pending
    queue cost a small penalty.  Under this objective a scored
    prediction round prefers candidates that drain queues into decided
    instances — large batches when the queue is deep, cheap proposers,
    calmer retry pacing under conflict — which is exactly the T2
    amortized-steering workload's notion of "better".
    """

    name = "paxos-throughput"

    def __init__(self, chosen_weight: float = 0.5,
                 pending_penalty: float = 0.05) -> None:
        self.chosen_weight = chosen_weight
        self.pending_penalty = pending_penalty

    def score(self, world: Any) -> float:
        total = 0.0
        for state in world.node_states.values():
            executed = state.get("executed")
            if executed is not None:
                total += len(executed)
            chosen = state.get("chosen")
            if chosen is not None:
                total += self.chosen_weight * len(chosen)
            pending = state.get("pending")
            if pending is not None:
                total -= self.pending_penalty * len(pending)
        return total


def predicted_commit_latency(
    network_model,
    origin: int,
    proposer: int,
    n: int,
    processing_delay: float = 0.0,
) -> float:
    """Predicted end-to-end commit latency via ``proposer``.

    ``processing_delay`` is the proposer's per-proposal CPU cost (in a
    real deployment the runtime would estimate it from collected load
    measurements; here it comes from the configured load model).
    """
    majority = n // 2 + 1
    forward = 0.0 if proposer == origin else network_model.rtt(origin, proposer)
    rtts = sorted(
        network_model.rtt(proposer, peer) for peer in range(n) if peer != proposer
    )
    needed = majority - 1  # the proposer itself accepts locally
    majority_rtt = rtts[needed - 1] if needed >= 1 and rtts else 0.0
    return forward + processing_delay + majority_rtt


def proposer_score(candidate: int, point: ChoicePoint, node: Optional[Any]) -> float:
    """Negated predicted commit latency (higher is better)."""
    runtime = getattr(node, "crystalball", None) if node is not None else None
    if runtime is None:
        return 0.0
    config = node.service.config
    return -predicted_commit_latency(
        runtime.network_model, node.node_id, candidate, config.n,
        processing_delay=config.processing_delay(candidate),
    )


def make_proposer_resolver() -> GreedyResolver:
    """A greedy resolver minimizing predicted commit latency."""
    return GreedyResolver(proposer_score)


def make_throughput_resolver(topology, config) -> GreedyResolver:
    """Steering for batched Multi-Paxos at high request rates.

    Full consequence prediction is too expensive to run per-batch at
    10^5-request scale, so this resolver steers from the deployment
    model alone: topology round-trips and configured CPU loads,
    precomputed once.  It scores the three choices the batched replica
    exposes:

    * ``batch-size`` — pull as much of the queue as fits, backing off
      under observed conflict (big speculative batches lose whole
      instances at a time when preempted);
    * ``proposer`` — minimize forward latency plus the candidate's
      pipeline-serialized CPU cost and per-slot accept round-trip
      (routes a loaded or edge replica's batches through a cheap
      proxy, the Section 3.1 example at batch granularity);
    * ``retry-pacing`` — stretch the retry timeout in proportion to
      observed conflict, de-synchronizing dueling proposers.
    """
    n = config.n
    depth = max(config.pipeline_depth, 1)

    def rtt(a: int, b: int) -> float:
        if a == b:
            return 0.0
        return topology.link(a, b).latency + topology.link(b, a).latency

    majority_rtt = {}
    needed = config.majority - 1  # the proposer itself accepts locally
    for p in range(n):
        rtts = sorted(rtt(p, peer) for peer in range(n) if peer != p)
        majority_rtt[p] = rtts[needed - 1] if needed >= 1 and rtts else 0.0

    def score(candidate: Any, point: ChoicePoint, node: Optional[Any]) -> float:
        info = point.info
        if point.label == "batch-size":
            conflicts = float(info.get("conflicts", 0.0))
            queue = max(int(info.get("queue", 0)), 1)
            effective = queue / (1.0 + conflicts)
            # Largest batch the queue can fill wins; the epsilon
            # prefers the smallest sufficient candidate.
            return min(candidate, effective) - 1e-3 * candidate
        if point.label == "proposer":
            origin = node.node_id if node is not None else int(info.get("origin", 0))
            forward = rtt(origin, candidate)
            return -(forward
                     + config.processing_delay(candidate) * depth
                     + majority_rtt[candidate] / depth)
        if point.label == "retry-pacing":
            conflicts = min(float(info.get("conflicts", 0.0)), 3.0)
            return -abs(candidate - (1.0 + conflicts))
        return 0.0

    return GreedyResolver(score)


__all__ = [
    "ThroughputObjective",
    "predicted_commit_latency",
    "proposer_score",
    "make_proposer_resolver",
    "make_throughput_resolver",
]
