"""Model-based scoring for the exposed proposer choice.

Predicted commit latency of routing a command through proposer ``p``::

    rtt(origin, p)            # forward the command + learn the result
  + majority_rtt(p)           # one accept round to a majority

where ``majority_rtt(p)`` is the round-trip to the (majority-1)-th
closest other replica — the accept round completes when that many
acceptors besides ``p`` itself have replied.  The resolver picks the
proposer minimizing this estimate using the runtime's network model,
which is the paper's "let the runtime pick the best proposer for
high-performance across a range of deployment settings".
"""

from __future__ import annotations

from typing import Any, Optional

from ...choice.choicepoint import ChoicePoint
from ...choice.resolvers import GreedyResolver


def predicted_commit_latency(
    network_model,
    origin: int,
    proposer: int,
    n: int,
    processing_delay: float = 0.0,
) -> float:
    """Predicted end-to-end commit latency via ``proposer``.

    ``processing_delay`` is the proposer's per-proposal CPU cost (in a
    real deployment the runtime would estimate it from collected load
    measurements; here it comes from the configured load model).
    """
    majority = n // 2 + 1
    forward = 0.0 if proposer == origin else network_model.rtt(origin, proposer)
    rtts = sorted(
        network_model.rtt(proposer, peer) for peer in range(n) if peer != proposer
    )
    needed = majority - 1  # the proposer itself accepts locally
    majority_rtt = rtts[needed - 1] if needed >= 1 and rtts else 0.0
    return forward + processing_delay + majority_rtt


def proposer_score(candidate: int, point: ChoicePoint, node: Optional[Any]) -> float:
    """Negated predicted commit latency (higher is better)."""
    runtime = getattr(node, "crystalball", None) if node is not None else None
    if runtime is None:
        return 0.0
    config = node.service.config
    return -predicted_commit_latency(
        runtime.network_model, node.node_id, candidate, config.n,
        processing_delay=config.processing_delay(candidate),
    )


def make_proposer_resolver() -> GreedyResolver:
    """A greedy resolver minimizing predicted commit latency."""
    return GreedyResolver(proposer_score)


__all__ = ["predicted_commit_latency", "proposer_score", "make_proposer_resolver"]
