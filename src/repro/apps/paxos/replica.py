"""Multi-instance Paxos replicas with pluggable proposer routing.

:class:`PaxosReplica` implements all three roles (proposer, acceptor,
learner) over an ownership-partitioned instance space (see
``messages``): a replica sequences commands through its own slots with
a one-round-trip fast path, and full two-phase Paxos with ballot
escalation handles retries and contention.

The paper's consensus example (Section 3.1): the original Paxos "does
not offer a choice as to which node is allowed to propose a new value";
Mencius rotates proposers round-robin for WAN performance; "we argue
that an implementation can expose the choice of a proposer and let the
runtime pick the best proposer".  Three subclasses give exactly those
three designs over identical protocol code:

* :class:`FixedLeaderPaxos` — every command forwarded to one leader;
* :class:`MenciusPaxos` — every origin proposes its own commands;
* :class:`ExposedPaxos` — the proposer is an exposed choice.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from ...statemachine import Service, msg_handler, timer_handler
from .messages import (
    Accept,
    AcceptedMsg,
    ClientRequest,
    Command,
    Learn,
    NO_BALLOT,
    NOOP,
    Nack,
    PaxosConfig,
    Prepare,
    Promise,
    make_ballot,
    unpack_value,
)


class PaxosReplica(Service):
    """One replica: proposer + acceptor + learner."""

    state_fields = (
        "promised", "accepted", "chosen",
        "next_seq", "next_own_round", "proposals",
        "my_requests", "committed", "cpu_queue",
        "exec_upto", "executed", "applied",
    )

    def __init__(self, node_id: int, config: Optional[PaxosConfig] = None) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else PaxosConfig()
        # Acceptor state.
        self.promised: Dict[int, int] = {}
        self.accepted: Dict[int, list] = {}
        # Learner state.
        self.chosen: Dict[int, Command] = {}
        # Proposer state.
        self.next_seq = 0
        self.next_own_round = 0
        self.proposals: Dict[int, dict] = {}
        # Client bookkeeping: command -> created_at / [created, committed].
        self.my_requests: Dict[Command, float] = {}
        self.committed: Dict[Command, list] = {}
        # Commands waiting for this (loaded) replica's CPU.
        self.cpu_queue: deque = deque()
        # Replicated-log execution: instances [0, exec_upto) are decided
        # and applied; ``executed`` is the in-order command sequence
        # (NOOP fillers excluded).  ``applied`` enforces at-most-once
        # apply: a command chosen in two instances (recovery can
        # duplicate it) still executes exactly once.
        self.exec_upto = 0
        self.executed: List[Command] = []
        self.applied: Set[Command] = set()

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------

    def on_init(self) -> None:
        self.set_timer("client", self.config.request_interval)
        self.set_timer("retry-sweep", self.config.retry_sweep_period)
        self.set_timer("gap-fill", self.config.gapfill_period)

    @timer_handler("client")
    def on_client_timer(self, payload) -> None:
        if self.next_seq < self.config.requests_per_node:
            command: Command = (self.node_id, self.next_seq)
            self.next_seq += 1
            self.my_requests[command] = self.now()
            self.route_command(command)
            self.set_timer("client", self.config.request_interval)

    def route_command(self, command: Command) -> None:
        """Deliver the command to its proposer (subclass policy)."""
        raise NotImplementedError

    @msg_handler(ClientRequest)
    def on_client_request(self, src: int, msg: ClientRequest) -> None:
        self.propose(msg.command)

    # ------------------------------------------------------------------
    # Proposer
    # ------------------------------------------------------------------

    def _replicas(self) -> List[int]:
        return list(range(self.config.n))

    def propose(self, command: Command) -> None:
        """Queue a proposal through this replica's CPU, then coordinate.

        An unloaded replica proposes immediately; a loaded one
        serializes coordination work through its CPU queue,
        ``processing_delay`` seconds apiece.
        """
        delay = self.config.processing_delay(self.node_id)
        if delay <= 0:
            self._coordinate(command)
            return
        self.cpu_queue.append(command)
        if len(self.cpu_queue) == 1:
            self.set_timer("cpu-drain", delay)

    @timer_handler("cpu-drain")
    def on_cpu_drain(self, payload) -> None:
        if self.cpu_queue:
            command = tuple(self.cpu_queue.popleft())
            self._coordinate(command)
        if self.cpu_queue:
            self.set_timer("cpu-drain", self.config.processing_delay(self.node_id))

    def _coordinate(self, command: Command) -> None:
        """Fast-path proposal in the next self-owned instance."""
        instance = self.next_own_round * self.config.n + self.node_id
        self.next_own_round += 1
        self._coordinate_in(instance, command)

    def _coordinate_in(self, instance: int, command: Command) -> None:
        """Fast-path proposal in a specific self-owned instance.

        The round-0 ballot of a self-owned slot cannot conflict, so the
        proposal goes straight to phase 2 (one round trip to a
        majority) — the Mencius-style optimization every variant shares.
        """
        ballot = make_ballot(0, self.node_id, self.config.n)
        self.proposals[instance] = {
            "ballot": ballot,
            "value": command,
            "proposing": command,
            "phase": "accept",
            "promise_from": [],
            "best_accepted_ballot": NO_BALLOT,
            "best_accepted_value": None,
            "accepted_from": [],
            "started_at": self.now(),
        }
        self.broadcast(self._replicas(), Accept(instance=instance, ballot=ballot, value=command))

    def _escalate(self, instance: int, min_round: int) -> None:
        """Restart an instance with full two-phase Paxos at a higher round."""
        proposal = self.proposals.get(instance)
        if proposal is None:
            return
        current_round = proposal["ballot"] // self.config.n
        round_number = max(current_round + 1, min_round)
        ballot = make_ballot(round_number, self.node_id, self.config.n)
        proposal.update(
            ballot=ballot,
            phase="prepare",
            promise_from=[],
            best_accepted_ballot=NO_BALLOT,
            best_accepted_value=None,
            accepted_from=[],
            started_at=self.now(),
            proposing=proposal["value"],
        )
        self.broadcast(self._replicas(), Prepare(instance=instance, ballot=ballot))

    def _retry_timeout(self) -> float:
        """Effective retry timeout for stuck proposals.  Subclasses
        expose pacing as a choice (handlers collect base-first, so the
        sweep itself cannot be overridden — this hook can)."""
        return self.config.retry_timeout

    @timer_handler("retry-sweep")
    def on_retry_sweep(self, payload) -> None:
        now = self.now()
        rng = self.rng("retry")
        timeout = self._retry_timeout() if self.proposals else self.config.retry_timeout
        for instance in sorted(self.proposals):
            proposal = self.proposals[instance]
            if now - proposal["started_at"] > timeout:
                # Randomized escalation breaks dueling-proposer
                # symmetry: without it two contenders re-prepare in
                # lock-step and livelock (the classic Paxos liveness
                # caveat).
                if rng.random() < 0.6:
                    self._escalate(instance, proposal.get("min_round", 1))
        self.set_timer("retry-sweep", self.config.retry_sweep_period)

    @timer_handler("gap-fill")
    def on_gap_fill(self, payload) -> None:
        """Decide NOOP in our own skipped slots (Mencius skip messages).

        Once instances beyond our partition's frontier are decided, our
        unused slots block every replica's executable prefix; an idle
        owner fills them with no-ops.
        """
        max_chosen = max(self.chosen, default=-1)
        while self.next_own_round * self.config.n + self.node_id < max_chosen:
            instance = self.next_own_round * self.config.n + self.node_id
            self.next_own_round += 1
            if instance not in self.chosen and instance not in self.proposals:
                self._coordinate_in(instance, NOOP)
        self.set_timer("gap-fill", self.config.gapfill_period)

    @msg_handler(Promise)
    def on_promise(self, src: int, msg: Promise) -> None:
        proposal = self.proposals.get(msg.instance)
        if proposal is None or proposal["ballot"] != msg.ballot or proposal["phase"] != "prepare":
            return
        if src in proposal["promise_from"]:
            return
        proposal["promise_from"].append(src)
        if msg.accepted_ballot > proposal["best_accepted_ballot"]:
            proposal["best_accepted_ballot"] = msg.accepted_ballot
            proposal["best_accepted_value"] = msg.accepted_value
        if len(proposal["promise_from"]) >= self.config.majority:
            value = proposal["best_accepted_value"]
            if value is None:
                value = proposal["value"]
            proposal["proposing"] = value
            proposal["phase"] = "accept"
            proposal["accepted_from"] = []
            self.broadcast(
                self._replicas(),
                Accept(instance=msg.instance, ballot=msg.ballot, value=value),
            )

    @msg_handler(AcceptedMsg)
    def on_accepted(self, src: int, msg: AcceptedMsg) -> None:
        proposal = self.proposals.get(msg.instance)
        if proposal is None or proposal["ballot"] != msg.ballot or proposal["phase"] != "accept":
            return
        if src in proposal["accepted_from"]:
            return
        proposal["accepted_from"].append(src)
        if len(proposal["accepted_from"]) >= self.config.majority:
            value = proposal["proposing"]
            self._value_chosen(msg.instance, value)
            self.broadcast(self._replicas(), Learn(instance=msg.instance, value=value))

    @msg_handler(Nack)
    def on_nack(self, src: int, msg: Nack) -> None:
        proposal = self.proposals.get(msg.instance)
        if proposal is None or proposal["ballot"] >= msg.promised:
            return
        if msg.ballot != NO_BALLOT and msg.ballot != proposal["ballot"]:
            # Stale rejection of a ballot we already abandoned: a
            # superseded round's Nack must not inflate min_round and
            # force a needless multi-round escalation.
            return
        # Defer to the jittered retry sweep instead of escalating
        # immediately: eager re-preparation is what fuels the
        # dueling-proposers livelock.
        proposal["min_round"] = max(
            proposal.get("min_round", 1), msg.promised // self.config.n + 1,
        )
        self._on_preempted(msg.instance, msg.promised)

    def _on_preempted(self, instance: int, promised: int) -> None:
        """Hook: a live proposal of ours was rejected (subclass use)."""

    # ------------------------------------------------------------------
    # Acceptor
    # ------------------------------------------------------------------

    def _promise_floor(self, instance: int) -> int:
        """The lowest ballot this acceptor may still accept at
        ``instance``.  Subclasses fold ranged promises in here."""
        return self.promised.get(instance, NO_BALLOT)

    def _observe_instance(self, instance: int) -> None:
        """Hook: the instance space is occupied at least this far
        (subclasses track ``max_inst`` for catch-up/advancement)."""

    @msg_handler(Prepare)
    def on_prepare(self, src: int, msg: Prepare) -> None:
        self._observe_instance(msg.instance)
        if msg.instance in self.chosen:
            self.send(src, Learn(instance=msg.instance, value=self.chosen[msg.instance]))
            return
        if msg.ballot > self._promise_floor(msg.instance):
            self.promised[msg.instance] = msg.ballot
            accepted = self.accepted.get(msg.instance)
            self.send(
                src,
                Promise(
                    instance=msg.instance,
                    ballot=msg.ballot,
                    accepted_ballot=accepted[0] if accepted else NO_BALLOT,
                    accepted_value=tuple(accepted[1]) if accepted else None,
                ),
            )
        else:
            self.send(src, Nack(
                instance=msg.instance,
                promised=self._promise_floor(msg.instance),
                ballot=msg.ballot,
            ))

    @msg_handler(Accept)
    def on_accept(self, src: int, msg: Accept) -> None:
        self._observe_instance(msg.instance)
        if msg.instance in self.chosen:
            self.send(src, Learn(instance=msg.instance, value=self.chosen[msg.instance]))
            return
        if msg.ballot >= self._promise_floor(msg.instance):
            self.promised[msg.instance] = msg.ballot
            self.accepted[msg.instance] = [msg.ballot, list(msg.value)]
            self.send(
                src,
                AcceptedMsg(instance=msg.instance, ballot=msg.ballot, value=msg.value),
            )
        else:
            self.send(src, Nack(
                instance=msg.instance,
                promised=self._promise_floor(msg.instance),
                ballot=msg.ballot,
            ))

    # ------------------------------------------------------------------
    # Learner
    # ------------------------------------------------------------------

    @msg_handler(Learn)
    def on_learn(self, src: int, msg: Learn) -> None:
        self._value_chosen(msg.instance, msg.value)

    def _value_chosen(self, instance: int, value) -> None:
        value = tuple(value)
        self._observe_instance(instance)
        if instance not in self.chosen:
            self.chosen[instance] = value
            self.record("paxos.chosen", instance=instance)
        proposal = self.proposals.pop(instance, None)
        if proposal is not None and tuple(proposal["value"]) != value:
            lost = tuple(proposal["value"])
            if lost != NOOP:
                # Our command lost this instance to a recovered value:
                # re-sequence it in a fresh self-owned slot.  A lost
                # NOOP is simply dropped — the slot it was meant to
                # fill is decided, so re-proposing it would burn a
                # fresh slot and trigger more gap-fill churn.
                self._resequence(lost)
        now = self.now()
        for command in unpack_value(value):
            if command in self.my_requests and command not in self.committed:
                self.committed[command] = [self.my_requests[command], now]
        # Advance the executable prefix of the replicated log.
        while self.exec_upto in self.chosen:
            decided = tuple(self.chosen[self.exec_upto])
            for command in unpack_value(decided):
                if command not in self.applied:
                    self.applied.add(command)
                    self.executed.append(command)
            self.exec_upto += 1

    def _resequence(self, lost_value) -> None:
        """Re-propose a non-NOOP value that lost its instance."""
        self.propose(lost_value)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def commit_latencies(self) -> List[float]:
        """Latency of every committed command this node originated."""
        return sorted(done - created for created, done in self.committed.values())


class FixedLeaderPaxos(PaxosReplica):
    """All commands route to one fixed leader (classic deployment)."""

    def __init__(self, node_id: int, config: Optional[PaxosConfig] = None, leader: int = 0) -> None:
        super().__init__(node_id, config)
        self.leader = leader

    def route_command(self, command: Command) -> None:
        if self.node_id == self.leader:
            self.propose(command)
        else:
            self.send(self.leader, ClientRequest(command=command))


class MenciusPaxos(PaxosReplica):
    """Every origin proposes its own commands (round-robin ownership)."""

    def route_command(self, command: Command) -> None:
        self.propose(command)


class ExposedPaxos(PaxosReplica):
    """The proposer is an exposed choice resolved by the runtime."""

    def route_command(self, command: Command) -> None:
        proposer = self.choose("proposer", self._replicas(), command=list(command))
        if proposer == self.node_id:
            self.propose(command)
        else:
            self.send(proposer, ClientRequest(command=command))


def make_paxos_factory(variant: str, config: Optional[PaxosConfig] = None, leader: int = 0):
    """Factory for one of the three proposer-routing variants."""
    cfg = config if config is not None else PaxosConfig()
    if variant == "fixed":
        return lambda node_id: FixedLeaderPaxos(node_id, cfg, leader)
    if variant == "mencius":
        return lambda node_id: MenciusPaxos(node_id, cfg)
    if variant == "choice":
        return lambda node_id: ExposedPaxos(node_id, cfg)
    if variant == "batched":
        from .batched import BatchedPaxosReplica  # avoid an import cycle

        return lambda node_id: BatchedPaxosReplica(node_id, cfg)
    raise ValueError(f"unknown variant {variant!r}; expected fixed/mencius/choice/batched")


__all__ = [
    "PaxosReplica",
    "FixedLeaderPaxos",
    "MenciusPaxos",
    "ExposedPaxos",
    "make_paxos_factory",
]
