"""Paxos wire protocol and configuration.

Commands are ``(origin, sequence)`` tuples.  Ballots are integers
encoding ``(round, proposer)`` as ``round * n + proposer``, so every
proposer's ballots are unique and totally ordered; ``ballot < 0`` means
"none yet".

The instance space is partitioned by ownership, ``instance mod n``
belonging to replica ``instance % n`` (the Mencius arrangement).  An
owner proposing in its own slot may skip the prepare phase for its
round-0 ballot — no other proposer uses that ballot, so acceptance is
safe — giving the one-round-trip fast path; proposing in *any* slot
with a higher ballot goes through the full two-phase protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ...statemachine import Message

Command = Tuple[int, int]

# A log value is either a single command (legacy single-decree mode) or
# a batch: a tuple of commands decided in one instance.  ``unpack_value``
# normalizes both shapes into the command sequence they carry.
Batch = Tuple[Command, ...]

NO_BALLOT = -1

# Mencius-style filler for skipped instances: idle owners decide NOOP in
# their unused slots so the replicated log's executable prefix advances.
NOOP: Command = (-1, -1)


@dataclass(frozen=True)
class PaxosConfig:
    """Replica-group parameters.

    ``processing_delays`` models per-replica CPU load: coordinating a
    proposal costs the proposer that many seconds of (serialized) CPU
    work before the accept round leaves the node — the "reduced
    performance due to CPU overload" failure mode of a fixed proposer
    (Section 3.1).  ``None`` means every replica is unloaded.
    """

    n: int = 5
    request_interval: float = 1.0
    requests_per_node: int = 10
    retry_timeout: float = 2.0
    retry_sweep_period: float = 0.5
    gapfill_period: float = 1.0
    processing_delays: Optional[Tuple[float, ...]] = None
    # Batched Multi-Paxos (see apps.paxos.batched).  ``batch_size_choices``
    # are the candidates of the exposed "batch-size" choice — the first
    # entry is the static default a steering-off deployment gets, so the
    # legacy single-command-per-instance behaviour is candidates[0] == 1.
    # ``pipeline_depth`` bounds concurrent in-flight own-slot instances;
    # ``retry_pacing_choices`` scale ``retry_timeout`` (the exposed
    # "retry-pacing" choice); ``catchup_period``/``catchup_window``
    # drive the learner catch-up protocol.
    batch_size_choices: Tuple[int, ...] = (1, 8, 32, 128)
    pipeline_depth: int = 4
    retry_pacing_choices: Tuple[float, ...] = (1.0, 2.0, 4.0)
    catchup_period: float = 1.0
    catchup_window: int = 256

    @property
    def majority(self) -> int:
        return self.n // 2 + 1

    def processing_delay(self, node_id: int) -> float:
        """The CPU cost of coordinating one proposal at ``node_id``."""
        if self.processing_delays is None:
            return 0.0
        return self.processing_delays[node_id]


def make_ballot(round_number: int, proposer: int, n: int) -> int:
    """Encode a (round, proposer) ballot as a unique ordered integer."""
    return round_number * n + proposer


def ballot_proposer(ballot: int, n: int) -> int:
    """The proposer that owns a ballot."""
    return ballot % n


def slot_owner(instance: int, n: int) -> int:
    """The replica owning this instance's fast path."""
    return instance % n


@dataclass
class ClientRequest(Message):
    """A command forwarded to the replica chosen as its proposer."""

    command: Command


@dataclass
class Prepare(Message):
    """Phase 1a: ask acceptors to promise ballot for an instance."""

    instance: int
    ballot: int


@dataclass
class Promise(Message):
    """Phase 1b: promise, reporting any previously accepted proposal."""

    instance: int
    ballot: int
    accepted_ballot: int
    accepted_value: Optional[Command]


@dataclass
class Accept(Message):
    """Phase 2a: ask acceptors to accept a value at a ballot."""

    instance: int
    ballot: int
    value: Command


@dataclass
class AcceptedMsg(Message):
    """Phase 2b: acceptor accepted the proposal."""

    instance: int
    ballot: int
    value: Command


@dataclass
class Nack(Message):
    """Rejection carrying the acceptor's current promise, so the
    proposer can escalate to a higher round.

    ``ballot`` echoes the rejected proposal's ballot: the proposer only
    honours a Nack whose ballot matches its *current* attempt, so a
    stale Nack from a superseded round cannot inflate ``min_round``.
    """

    instance: int
    promised: int
    ballot: int = NO_BALLOT


@dataclass
class Learn(Message):
    """Commit notification broadcast once a value is chosen."""

    instance: int
    value: Command


def unpack_value(value) -> Tuple[Command, ...]:
    """The commands carried by a decided log value.

    A value is either the NOOP filler (no commands), a single command
    ``(origin, seq)``, or a batch — a tuple of commands.  Batches are
    distinguished structurally: their first element is itself a tuple.
    """
    value = tuple(value)
    if value == NOOP or not value:
        return ()
    if isinstance(value[0], (tuple, list)):
        return tuple(tuple(v) for v in value)
    return (value,)


@dataclass
class SubmitBurst(Message):
    """A burst of client commands submitted to one replica.

    ``origin`` names the replica responsible for latency bookkeeping:
    a burst forwarded between replicas (the exposed proposer choice)
    keeps its original origin so commands are not double-counted.
    """

    commands: Tuple[Command, ...]
    origin: int


@dataclass
class PrepareRange(Message):
    """Phase 1a over the sender's own slots ``>= from_instance``.

    The proactive prepare of batched Multi-Paxos: one promise quorum
    for an unbounded instance range lets the owner skip phase 1 for
    every future own-slot proposal until preempted.
    """

    from_instance: int
    round_number: int


@dataclass
class PromiseRange(Message):
    """Phase 1b for a ranged prepare.

    ``accepted`` reports every proposal this acceptor has accepted in
    the granted range (instance -> (ballot, value)) so the new owner
    round re-proposes them; ``max_inst`` is the highest instance the
    acceptor has seen occupied anywhere, driving the owner's
    ``instance_seq`` advancement past the decided prefix.
    """

    round_number: int
    from_instance: int
    max_inst: int
    accepted: Dict[int, Tuple[int, Batch]] = field(default_factory=dict)


@dataclass
class QueryLastInstance(Message):
    """Learner catch-up, step 1: ask peers how far the log extends."""


@dataclass
class LastInstanceResponse(Message):
    """Reply to :class:`QueryLastInstance`: the peer's ``max_inst``."""

    max_inst: int


@dataclass
class Catchup(Message):
    """Learner catch-up, step 2: request decided values from
    ``from_instance`` onward."""

    from_instance: int


@dataclass
class CatchupResponse(Message):
    """A window of decided values (instance -> value), plus the
    responder's ``max_inst`` so the learner knows whether to keep
    asking."""

    entries: Dict[int, Batch]
    max_inst: int


__all__ = [
    "Command",
    "Batch",
    "NO_BALLOT",
    "NOOP",
    "PaxosConfig",
    "make_ballot",
    "ballot_proposer",
    "slot_owner",
    "unpack_value",
    "ClientRequest",
    "Prepare",
    "Promise",
    "Accept",
    "AcceptedMsg",
    "Nack",
    "Learn",
    "SubmitBurst",
    "PrepareRange",
    "PromiseRange",
    "QueryLastInstance",
    "LastInstanceResponse",
    "Catchup",
    "CatchupResponse",
]
