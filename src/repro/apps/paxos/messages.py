"""Paxos wire protocol and configuration.

Commands are ``(origin, sequence)`` tuples.  Ballots are integers
encoding ``(round, proposer)`` as ``round * n + proposer``, so every
proposer's ballots are unique and totally ordered; ``ballot < 0`` means
"none yet".

The instance space is partitioned by ownership, ``instance mod n``
belonging to replica ``instance % n`` (the Mencius arrangement).  An
owner proposing in its own slot may skip the prepare phase for its
round-0 ballot — no other proposer uses that ballot, so acceptance is
safe — giving the one-round-trip fast path; proposing in *any* slot
with a higher ballot goes through the full two-phase protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...statemachine import Message

Command = Tuple[int, int]

NO_BALLOT = -1

# Mencius-style filler for skipped instances: idle owners decide NOOP in
# their unused slots so the replicated log's executable prefix advances.
NOOP: Command = (-1, -1)


@dataclass(frozen=True)
class PaxosConfig:
    """Replica-group parameters.

    ``processing_delays`` models per-replica CPU load: coordinating a
    proposal costs the proposer that many seconds of (serialized) CPU
    work before the accept round leaves the node — the "reduced
    performance due to CPU overload" failure mode of a fixed proposer
    (Section 3.1).  ``None`` means every replica is unloaded.
    """

    n: int = 5
    request_interval: float = 1.0
    requests_per_node: int = 10
    retry_timeout: float = 2.0
    retry_sweep_period: float = 0.5
    gapfill_period: float = 1.0
    processing_delays: Optional[Tuple[float, ...]] = None

    @property
    def majority(self) -> int:
        return self.n // 2 + 1

    def processing_delay(self, node_id: int) -> float:
        """The CPU cost of coordinating one proposal at ``node_id``."""
        if self.processing_delays is None:
            return 0.0
        return self.processing_delays[node_id]


def make_ballot(round_number: int, proposer: int, n: int) -> int:
    """Encode a (round, proposer) ballot as a unique ordered integer."""
    return round_number * n + proposer


def ballot_proposer(ballot: int, n: int) -> int:
    """The proposer that owns a ballot."""
    return ballot % n


def slot_owner(instance: int, n: int) -> int:
    """The replica owning this instance's fast path."""
    return instance % n


@dataclass
class ClientRequest(Message):
    """A command forwarded to the replica chosen as its proposer."""

    command: Command


@dataclass
class Prepare(Message):
    """Phase 1a: ask acceptors to promise ballot for an instance."""

    instance: int
    ballot: int


@dataclass
class Promise(Message):
    """Phase 1b: promise, reporting any previously accepted proposal."""

    instance: int
    ballot: int
    accepted_ballot: int
    accepted_value: Optional[Command]


@dataclass
class Accept(Message):
    """Phase 2a: ask acceptors to accept a value at a ballot."""

    instance: int
    ballot: int
    value: Command


@dataclass
class AcceptedMsg(Message):
    """Phase 2b: acceptor accepted the proposal."""

    instance: int
    ballot: int
    value: Command


@dataclass
class Nack(Message):
    """Rejection carrying the acceptor's current promise, so the
    proposer can escalate to a higher round."""

    instance: int
    promised: int


@dataclass
class Learn(Message):
    """Commit notification broadcast once a value is chosen."""

    instance: int
    value: Command


__all__ = [
    "Command",
    "NO_BALLOT",
    "NOOP",
    "PaxosConfig",
    "make_ballot",
    "ballot_proposer",
    "slot_owner",
    "ClientRequest",
    "Prepare",
    "Promise",
    "Accept",
    "AcceptedMsg",
    "Nack",
    "Learn",
]
