"""Paxos consensus with an exposed proposer choice (Section 3.1)."""

from .messages import (
    Accept,
    AcceptedMsg,
    ClientRequest,
    Command,
    Learn,
    NO_BALLOT,
    NOOP,
    Nack,
    PaxosConfig,
    Prepare,
    Promise,
    ballot_proposer,
    make_ballot,
    slot_owner,
)
from .replica import (
    ExposedPaxos,
    FixedLeaderPaxos,
    MenciusPaxos,
    PaxosReplica,
    make_paxos_factory,
)
from .score import make_proposer_resolver, predicted_commit_latency, proposer_score

__all__ = [
    "Accept",
    "AcceptedMsg",
    "ClientRequest",
    "Command",
    "Learn",
    "NO_BALLOT",
    "NOOP",
    "Nack",
    "PaxosConfig",
    "Prepare",
    "Promise",
    "ballot_proposer",
    "make_ballot",
    "slot_owner",
    "ExposedPaxos",
    "FixedLeaderPaxos",
    "MenciusPaxos",
    "PaxosReplica",
    "make_paxos_factory",
    "make_proposer_resolver",
    "predicted_commit_latency",
    "proposer_score",
]
