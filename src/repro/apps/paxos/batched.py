"""Batched Multi-Paxos with pipelined instances and proactive quorums.

:class:`BatchedPaxosReplica` grows the single-value-per-instance
replica into a production-shaped Multi-Paxos:

* **Batching** — queued commands are pulled, up to a batch size, into
  one instance; the batch (a tuple of commands) is the log value, and
  execution unpacks it.  Batch size is an exposed choice
  (``"batch-size"``): the candidates come from
  ``PaxosConfig.batch_size_choices``, whose first entry (1) is the
  static default a steering-off deployment gets — i.e. the legacy
  one-command-per-decree behaviour.
* **Pipelining** — up to ``pipeline_depth`` own-slot instances may be
  in flight concurrently; the pump keeps pulling batches while there
  is depth to spare.
* **Proposer selection** — each batch may be forwarded to a better
  proposer (the ``"proposer"`` choice), the paper's Section 3.1
  example at batch granularity.
* **Retry pacing** — the retry sweep's effective timeout is scaled by
  the ``"retry-pacing"`` choice, letting the runtime de-synchronize
  dueling proposers when it observes conflict.
* **Proactive quorum reuse** — ownership makes round 0 implicitly
  promised, so the fast path needs no phase 1 at all.  When the
  privilege is lost (a Nack on an own-slot proposal — in practice
  after an amnesia recovery finds higher floors), the replica runs
  *one* ranged prepare (:class:`PrepareRange`) covering all its slots
  from ``from_instance`` to infinity; a promise quorum re-establishes
  phase-1-free operation at the new round until preempted again.
  ``PromiseRange`` replies carry ``max_inst`` so the owner advances
  its instance sequence past the decided prefix (the
  ``instance_seq``/``max_inst`` advancement), and carry the
  acceptors' accepted proposals in the range so undecided instances
  are recovered at the new round.
* **Learner catch-up** — a recovering replica broadcasts
  :class:`QueryLastInstance`, learns how far the log extends, and
  pages decided values in with :class:`Catchup`/:class:`CatchupResponse`
  instead of waiting for gap-fill rounds to close every hole.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ...statemachine import msg_handler, timer_handler
from .messages import (
    Accept,
    Catchup,
    CatchupResponse,
    Command,
    LastInstanceResponse,
    NO_BALLOT,
    NOOP,
    PaxosConfig,
    PrepareRange,
    PromiseRange,
    QueryLastInstance,
    SubmitBurst,
    make_ballot,
    slot_owner,
    unpack_value,
)
from .replica import PaxosReplica


def _plain_value(value):
    """Tuple-ize a decided/accepted value (command or batch) so it is
    hashable and wire-stable."""
    value = tuple(value)
    if value and isinstance(value[0], (tuple, list)):
        return tuple(tuple(v) for v in value)
    return value


class BatchedPaxosReplica(PaxosReplica):
    """Multi-Paxos replica: batching, pipelining, ranged prepares,
    learner catch-up.  Routing is Mencius-style (own slots) with the
    proposer exposed as a per-batch choice."""

    state_fields = PaxosReplica.state_fields + (
        "pending", "max_inst",
        "phase1_ok", "range_round", "range_from",
        "pending_range_round", "pending_range_from",
        "range_promises", "range_accepted", "range_started_at",
        "range_promised", "recent_conflicts",
    )

    def __init__(self, node_id: int, config: Optional[PaxosConfig] = None) -> None:
        super().__init__(node_id, config)
        # Commands waiting to be pulled into a batch.
        self.pending: deque = deque()
        # Highest instance known to be occupied anywhere (from decided
        # values, accept traffic, and catch-up replies).
        self.max_inst = -1
        # Proposer privilege: round 0 of our own slots is implicitly
        # promised by ownership, so we start phase-1-free.
        self.phase1_ok = True
        self.range_round = 0
        self.range_from = 0
        # In-flight ranged prepare (when phase1_ok is False).
        self.pending_range_round = 0
        self.pending_range_from = 0
        self.range_promises: List[int] = []
        self.range_accepted: Dict[int, list] = {}
        self.range_started_at = 0.0
        # Acceptor side: owner -> [round, from_instance] range grants.
        self.range_promised: Dict[int, list] = {}
        # Decayed conflict counter feeding the batch-size / retry-pacing
        # choices (each preemption bumps it; the housekeeping timer
        # halves it).
        self.recent_conflicts = 0.0

    # ------------------------------------------------------------------
    # Workload intake
    # ------------------------------------------------------------------

    def on_init(self) -> None:
        super().on_init()
        self.set_timer("catchup", self.config.catchup_period)
        # Rejoin protocol: ask everyone how far the log extends.  On a
        # fresh start peers answer max_inst=-1 and this is a no-op.
        self.broadcast(
            [p for p in self._replicas() if p != self.node_id],
            QueryLastInstance(),
        )

    def route_command(self, command: Command) -> None:
        self.submit(command)

    def submit(self, command: Command) -> None:
        """Enqueue one locally-originated command and pump."""
        command = tuple(command)
        if command not in self.my_requests:
            self.my_requests[command] = self.now()
        self.pending.append(command)
        self._pump()

    @msg_handler(SubmitBurst)
    def on_submit_burst(self, src: int, msg: SubmitBurst) -> None:
        now = self.now()
        for command in msg.commands:
            command = tuple(command)
            if msg.origin == self.node_id:
                if command in self.my_requests:
                    continue  # duplicate delivery of a tracked command
                self.my_requests[command] = now
            self.pending.append(command)
        self._pump()

    # ------------------------------------------------------------------
    # The pump: batches, pipelining, proposer selection
    # ------------------------------------------------------------------

    def _own_inflight(self) -> int:
        n = self.config.n
        return sum(1 for i in self.proposals if i % n == self.node_id)

    def _pump(self) -> None:
        """Pull pending commands into batched, pipelined instances."""
        if not self.phase1_ok:
            return  # re-pumped once the ranged prepare completes
        depth = self._own_inflight()
        while self.pending and depth < self.config.pipeline_depth:
            size = self._choose_batch_size(depth)
            batch = tuple(
                self.pending.popleft()
                for _ in range(min(size, len(self.pending)))
            )
            proposer = self._choose_proposer(batch)
            if proposer == self.node_id:
                self.propose(batch)
                depth += 1
            else:
                self.send(proposer, SubmitBurst(commands=batch, origin=self.node_id))

    def _choose_batch_size(self, depth: int) -> int:
        choices = self.config.batch_size_choices
        return self.choose(
            "batch-size", list(choices),
            queue=len(self.pending),
            conflicts=round(self.recent_conflicts, 3),
            inflight=depth,
        )

    def _choose_proposer(self, batch) -> int:
        candidates = [self.node_id] + [
            p for p in self._replicas() if p != self.node_id
        ]
        return self.choose(
            "proposer", candidates,
            origin=self.node_id, size=len(batch),
            queue=len(self.pending),
            conflicts=round(self.recent_conflicts, 3),
        )

    # ------------------------------------------------------------------
    # Phase-1-free coordination at the privileged round
    # ------------------------------------------------------------------

    def _coordinate_in(self, instance: int, value) -> None:
        """Fast-path proposal at the current privileged round.

        Round 0 is safe by ownership; a higher ``range_round`` is safe
        because a promise quorum covers ``[range_from, inf)`` of our
        slots and every accepted value it reported was re-proposed when
        the range was acquired.
        """
        ballot = make_ballot(self.range_round, self.node_id, self.config.n)
        self.proposals[instance] = {
            "ballot": ballot,
            "value": value,
            "proposing": value,
            "phase": "accept",
            "promise_from": [],
            "best_accepted_ballot": NO_BALLOT,
            "best_accepted_value": None,
            "accepted_from": [],
            "started_at": self.now(),
        }
        self.broadcast(
            self._replicas(),
            Accept(instance=instance, ballot=ballot, value=value),
        )

    def _retry_timeout(self) -> float:
        """Effective retry timeout: base timeout scaled by the exposed
        retry-pacing choice (longer pacing de-synchronizes duelists
        when conflict is observed)."""
        choices = self.config.retry_pacing_choices
        pacing = self.choose(
            "retry-pacing", list(choices),
            conflicts=round(self.recent_conflicts, 3),
        )
        return self.config.retry_timeout * pacing

    def _resequence(self, lost_value) -> None:
        """A batch lost its instance to a recovered value: re-enqueue
        its commands (minus anything already applied) instead of
        re-proposing the stale batch wholesale."""
        for command in unpack_value(lost_value):
            if command not in self.applied:
                self.pending.append(command)
        self._pump()

    # ------------------------------------------------------------------
    # Proactive quorum (ranged prepares)
    # ------------------------------------------------------------------

    def _on_preempted(self, instance: int, promised: int) -> None:
        self.recent_conflicts += 1.0
        if slot_owner(instance, self.config.n) != self.node_id:
            return
        # Our own-slot privilege was rejected: re-acquire phase-1
        # freedom at a round beating the observed promise.
        target = promised // self.config.n + 1
        self._acquire_range(max(target, self.range_round + 1,
                                self.pending_range_round + 1))

    def _acquire_range(self, round_number: int) -> None:
        self.phase1_ok = False
        self.pending_range_round = round_number
        self.pending_range_from = self.next_own_round * self.config.n + self.node_id
        self.range_promises = []
        self.range_accepted = {}
        self.range_started_at = self.now()
        self.record("paxos.range_acquire", round=round_number,
                    from_instance=self.pending_range_from)
        self.broadcast(
            self._replicas(),
            PrepareRange(from_instance=self.pending_range_from,
                         round_number=round_number),
        )

    @msg_handler(PrepareRange)
    def on_prepare_range(self, src: int, msg: PrepareRange) -> None:
        granted = self.range_promised.get(src)
        if granted is not None and granted[0] > msg.round_number:
            return  # stale acquisition; the owner's retry will re-bid
        self.range_promised[src] = [msg.round_number, msg.from_instance]
        n = self.config.n
        accepted = {
            i: (acc[0], _plain_value(acc[1]))
            for i, acc in self.accepted.items()
            if i % n == src and i >= msg.from_instance
        }
        self.send(src, PromiseRange(
            round_number=msg.round_number,
            from_instance=msg.from_instance,
            max_inst=self.max_inst,
            accepted=accepted,
        ))

    def _promise_floor(self, instance: int) -> int:
        """Fold ranged promises into the acceptor's floor: a granted
        range is a promise for every owned instance >= its start."""
        floor = super()._promise_floor(instance)
        owner = slot_owner(instance, self.config.n)
        granted = self.range_promised.get(owner)
        if granted is not None and instance >= granted[1]:
            floor = max(floor, make_ballot(granted[0], owner, self.config.n))
        return floor

    @msg_handler(PromiseRange)
    def on_promise_range(self, src: int, msg: PromiseRange) -> None:
        if self.phase1_ok or msg.round_number != self.pending_range_round:
            return
        if src in self.range_promises:
            return
        self.range_promises.append(src)
        self._observe_instance(msg.max_inst)
        for instance, acc in msg.accepted.items():
            instance = int(instance)
            best = self.range_accepted.get(instance)
            if best is None or acc[0] > best[0]:
                self.range_accepted[instance] = [acc[0], _plain_value(acc[1])]
        if len(self.range_promises) < self.config.majority:
            return
        # Quorum: phase 1 is done for every own slot >= range_from,
        # permanently, until the next preemption.
        self.range_round = self.pending_range_round
        self.range_from = self.pending_range_from
        self.phase1_ok = True
        recovered = self.range_accepted
        self.range_accepted = {}
        self.range_promises = []
        self.record("paxos.range_held", round=self.range_round,
                    from_instance=self.range_from, recovered=len(recovered))
        # Re-propose every accepted value the quorum reported, then
        # advance the instance sequence past the occupied prefix,
        # NOOP-filling own slots the quorum proved empty.
        for instance in sorted(recovered):
            if instance not in self.chosen and instance not in self.proposals:
                self._coordinate_in(instance, recovered[instance][1])
        self._advance_instance_seq()
        self._pump()

    def _advance_instance_seq(self) -> None:
        """Advance ``next_own_round`` past ``max_inst``.

        Own slots skipped by the jump are NOOP-filled at the privileged
        round — safe, because the promise quorum reported every
        accepted value at or above ``range_from`` and those were just
        re-proposed."""
        n = self.config.n
        target = (self.max_inst - self.node_id) // n + 1
        while self.next_own_round < target:
            instance = self.next_own_round * n + self.node_id
            self.next_own_round += 1
            if (instance >= self.range_from
                    and instance not in self.chosen
                    and instance not in self.proposals):
                self._coordinate_in(instance, NOOP)

    def _observe_instance(self, instance: int) -> None:
        if instance > self.max_inst:
            self.max_inst = instance

    def _value_chosen(self, instance: int, value) -> None:
        super()._value_chosen(instance, value)
        # A decision frees a pipeline slot: refill it immediately
        # instead of waiting for the next submission to pump.
        if self.pending:
            self._pump()

    # ------------------------------------------------------------------
    # Learner catch-up
    # ------------------------------------------------------------------

    @msg_handler(QueryLastInstance)
    def on_query_last_instance(self, src: int, msg: QueryLastInstance) -> None:
        self.send(src, LastInstanceResponse(max_inst=self.max_inst))

    @msg_handler(LastInstanceResponse)
    def on_last_instance_response(self, src: int, msg: LastInstanceResponse) -> None:
        self._observe_instance(msg.max_inst)

    @timer_handler("catchup")
    def on_catchup_timer(self, payload) -> None:
        # Housekeeping shared by the catch-up loop: decay the conflict
        # signal and retry a stuck ranged prepare.
        self.recent_conflicts *= 0.5
        if (not self.phase1_ok
                and self.now() - self.range_started_at > self.config.retry_timeout):
            self._acquire_range(self.pending_range_round + 1)
        if self.exec_upto <= self.max_inst and self.exec_upto not in self.chosen:
            peers = [p for p in self._replicas() if p != self.node_id]
            if peers:
                peer = peers[self.exec_upto % len(peers)]
                self.send(peer, Catchup(from_instance=self.exec_upto))
        self.set_timer("catchup", self.config.catchup_period)

    @msg_handler(Catchup)
    def on_catchup(self, src: int, msg: Catchup) -> None:
        frontier = max(self.chosen, default=-1)
        upto = min(msg.from_instance + self.config.catchup_window, frontier + 1)
        entries = {
            i: self.chosen[i]
            for i in range(msg.from_instance, upto)
            if i in self.chosen
        }
        if entries or self.max_inst >= 0:
            self.send(src, CatchupResponse(entries=entries, max_inst=self.max_inst))

    @msg_handler(CatchupResponse)
    def on_catchup_response(self, src: int, msg: CatchupResponse) -> None:
        self._observe_instance(msg.max_inst)
        for instance in sorted(msg.entries):
            self._value_chosen(int(instance), _plain_value(msg.entries[instance]))


def make_batched_factory(config: Optional[PaxosConfig] = None):
    """Factory for batched Multi-Paxos replicas."""
    cfg = config if config is not None else PaxosConfig()
    return lambda node_id: BatchedPaxosReplica(node_id, cfg)


__all__ = ["BatchedPaxosReplica", "make_batched_factory"]
