"""High-rate client workload for batched Multi-Paxos.

:class:`ClientLoad` is a closed-loop request generator living outside
the replica group, the production-shaped counterpart of the per-replica
``client`` timer (which tops out at one command per
``request_interval``).  Each tick it inspects every replica's
outstanding window and submits a :class:`SubmitBurst` of fresh commands
over the replica's loopback link, keeping up to ``window`` commands in
flight per replica:

* **closed-loop** — the next burst's size is bounded by commits: a
  replica that stops committing (partitioned, crashed, overloaded)
  stops receiving load instead of accumulating an unbounded queue;
* **burst submission** — commands travel in bursts (one message for up
  to ``burst`` commands), so offering 10^5-10^6 requests costs the
  simulator thousands of events, not millions;
* **fault-aware** — a replica that is down is skipped; when it
  recovers, its wiped window reads as empty and the loop refills it.

The generator drives the cluster through the simulator's own event
queue (``sim.schedule``), so runs remain deterministic and
byte-reproducible for a given seed.
"""

from __future__ import annotations

from typing import Dict, List

from .messages import SubmitBurst


class ClientLoad:
    """Closed-loop load generator over a running cluster.

    ``total_requests`` commands, numbered ``(replica, seq)``, are
    spread round-robin across replicas; call :meth:`arm` before
    ``cluster.run``.  Use with ``requests_per_node=0`` replicas so
    generator traffic is the only workload.
    """

    def __init__(
        self,
        cluster,
        total_requests: int,
        window: int = 4096,
        burst: int = 512,
        tick: float = 0.05,
    ) -> None:
        if total_requests <= 0:
            raise ValueError(f"total_requests must be positive, got {total_requests}")
        self.cluster = cluster
        self.total_requests = total_requests
        self.window = window
        self.burst = burst
        self.tick = tick
        n = len(cluster.nodes)
        base, extra = divmod(total_requests, n)
        self.target: List[int] = [base + (1 if r < extra else 0) for r in range(n)]
        self.issued: List[int] = [0] * n
        self.ticks = 0

    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the first tick (call after ``cluster.start_all``)."""
        self.cluster.sim.schedule(0.0, self._tick, tag="clientload:tick")

    def _tick(self) -> None:
        self.ticks += 1
        transport = self.cluster.transport
        for node in self.cluster.nodes:
            r = node.node_id
            room = self.target[r] - self.issued[r]
            if room <= 0 or not node.is_up:
                continue
            service = node.service
            # The replica's own bookkeeping is the window: commands it
            # originated minus commands it saw committed.  A restarted
            # replica's wiped state reads as an empty window, so the
            # loop re-offers what the crash lost.
            inflight = len(service.my_requests) - len(service.committed)
            slots = min(self.window - inflight, self.burst, room)
            if slots <= 0:
                continue
            commands = tuple(
                (r, self.issued[r] + i) for i in range(slots)
            )
            self.issued[r] += slots
            transport.send(r, r, SubmitBurst(commands=commands, origin=r),
                           size_bytes=64 + 16 * slots)
        if any(self.issued[r] < self.target[r] for r in range(len(self.issued))):
            self.cluster.sim.schedule(self.tick, self._tick, tag="clientload:tick")

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def offered(self) -> int:
        """Commands submitted so far."""
        return sum(self.issued)

    def committed(self) -> Dict[int, int]:
        """Per-replica count of generator commands seen committed."""
        return {
            node.node_id: len(node.service.committed)
            for node in self.cluster.nodes
        }


__all__ = ["ClientLoad"]
