"""Shared gossip protocol pieces.

Epidemic dissemination (Section 3.1): "Nodes in epidemic dissemination
protocols periodically pick a node from their views to exchange data."
The decision this application exposes is the *peer choice* each round.
BAR Gossip restricts it to one verifiable pseudo-random partner per
round (robust, but "performance might suffer if, e.g., the only target
is behind a slow network connection"); FlightPath relaxes the choice
for performance.

The workload is streaming (as in BAR Gossip's media streaming): the
source publishes a new rumor every ``publish_interval`` seconds, and
the figure of merit is the mean delivery latency of a rumor across all
nodes, plus message overhead.  Services track ``known_at`` — when each
rumor id arrived — so latency can be computed exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from ...statemachine import Message


RUMOR_BYTES = 16_384
ID_BYTES = 16


@dataclass
class GossipPush(Message):
    """One bounded exchange: a cheap summary plus a few rumor payloads.

    ``have_ids`` is the sender's full rumor-id summary (metadata only —
    the receiver does *not* gain those rumors); ``payload_rumors`` are
    the ids whose actual data is included, bounded by the per-round
    exchange budget, which is what makes the peer choice matter.
    """

    have_ids: List[int]
    payload_rumors: List[int]
    round: int

    def wire_size(self) -> int:
        return 64 + ID_BYTES * len(self.have_ids) + RUMOR_BYTES * len(self.payload_rumors)


@dataclass
class GossipPullReply(Message):
    """Payloads for rumors the pusher was missing (budget-bounded)."""

    payload_rumors: List[int]

    def wire_size(self) -> int:
        return 64 + RUMOR_BYTES * len(self.payload_rumors)


@dataclass(frozen=True)
class GossipConfig:
    """Protocol parameters.

    ``publish_interval == 0`` publishes every rumor at start (one-shot
    dissemination); otherwise rumor ``k`` is published at
    ``k * publish_interval`` (streaming).  ``push_limit`` bounds the
    rumor payloads carried per push and per pull-reply, the BAR-style
    bounded exchange.
    """

    n: int = 32
    round_period: float = 0.2
    rumor_count: int = 8
    source: int = 0
    publish_interval: float = 0.0
    push_limit: int = 2


def bar_partner(node_id: int, round_number: int, n: int) -> int:
    """The BAR Gossip partner: one verifiable pseudo-random peer per round.

    Derived from a hash of (round, node), so any third party can verify
    the node gossiped with its assigned partner — the property BAR
    Gossip trades flexibility for.
    """
    digest = hashlib.sha256(f"bar:{round_number}:{node_id}".encode("utf-8")).digest()
    partner = int.from_bytes(digest[:8], "big") % (n - 1)
    if partner >= node_id:
        partner += 1
    return partner


def all_delivered(services, rumor_count: int) -> bool:
    """Whether every node knows every rumor."""
    return all(len(service.known_at) >= rumor_count for service in services)


def coverage(services, rumor_count: int) -> float:
    """Fraction of (node, rumor) pairs delivered."""
    total = len(services) * rumor_count
    if total == 0:
        return 1.0
    have = sum(
        sum(1 for rumor in service.known_at if rumor < rumor_count)
        for service in services
    )
    return have / total


def delivery_latencies(services, config: GossipConfig) -> List[float]:
    """Per-(node, rumor) delivery latency relative to publish time.

    Only rumors delivered everywhere appear for every node; undelivered
    pairs are simply absent (check :func:`coverage` alongside).
    """
    latencies: List[float] = []
    for service in services:
        for rumor, arrived in service.known_at.items():
            published = rumor * config.publish_interval
            latencies.append(max(0.0, arrived - published))
    return latencies


def mean_delivery_latency(services, config: GossipConfig) -> Optional[float]:
    """Mean delivery latency over all delivered (node, rumor) pairs."""
    latencies = delivery_latencies(services, config)
    if not latencies:
        return None
    return sum(latencies) / len(latencies)


__all__ = [
    "GossipPush",
    "GossipPullReply",
    "GossipConfig",
    "bar_partner",
    "all_delivered",
    "coverage",
    "delivery_latencies",
    "mean_delivery_latency",
]
