"""Choice-exposed gossip: the runtime picks the peer.

The service exposes every other node as a candidate each round; the
installed resolver decides.  With a :class:`~repro.choice.RandomResolver`
this degenerates to classic epidemic gossip; with the model-based
resolver from :mod:`.score` the runtime's network and state models pick
peers that are both *useful* (missing rumors we hold) and *fast*
(low-RTT links) — recovering the performance BAR-style restriction
gives up, exactly the relaxation FlightPath made.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...statemachine import Service, msg_handler, timer_handler
from .common import GossipConfig, GossipPullReply, GossipPush


class ExposedGossip(Service):
    """Push-pull epidemic dissemination with exposed peer choice."""

    state_fields = ("known_at", "round", "published")

    def __init__(self, node_id: int, config: Optional[GossipConfig] = None) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else GossipConfig()
        self.known_at: Dict[int, float] = {}
        self.round = 0
        self.published = 0

    @property
    def known(self):
        """The set of rumor ids this node holds."""
        return set(self.known_at)

    def on_init(self) -> None:
        if self.node_id == self.config.source:
            if self.config.publish_interval <= 0:
                for rumor in range(self.config.rumor_count):
                    self.known_at[rumor] = self.now()
                self.published = self.config.rumor_count
            else:
                self.set_timer("publish", 0.0)
        self.set_timer("gossip", self.config.round_period)

    @timer_handler("publish")
    def on_publish(self, payload) -> None:
        if self.published < self.config.rumor_count:
            self.known_at[self.published] = self.now()
            self.published += 1
            self.set_timer("publish", self.config.publish_interval)

    def gossip_candidates(self):
        """Peers eligible for this round's push — every other node by
        default; view-based variants narrow this to their active view."""
        return [p for p in range(self.config.n) if p != self.node_id]

    @timer_handler("gossip")
    def on_gossip_round(self, payload) -> None:
        self.round += 1
        if self.known_at:
            candidates = self.gossip_candidates()
            if candidates:
                peer = self.choose("gossip-peer", candidates, round=self.round)
                self.send(peer, self._make_push())
        self.set_timer("gossip", self.config.round_period)

    def _make_push(self) -> GossipPush:
        # Payload budget goes to the newest rumors (streaming freshness).
        newest = sorted(self.known_at, reverse=True)[: self.config.push_limit]
        return GossipPush(
            have_ids=sorted(self.known_at), payload_rumors=newest, round=self.round,
        )

    @msg_handler(GossipPush)
    def on_push(self, src: int, msg: GossipPush) -> None:
        now = self.now()
        for rumor in msg.payload_rumors:
            if rumor not in self.known_at:
                self.known_at[rumor] = now
        sender_has = set(msg.have_ids) | set(msg.payload_rumors)
        missing_there = sorted(set(self.known_at) - sender_has, reverse=True)
        if missing_there:
            self.send(
                src,
                GossipPullReply(payload_rumors=missing_there[: self.config.push_limit]),
            )

    @msg_handler(GossipPullReply)
    def on_pull_reply(self, src: int, msg: GossipPullReply) -> None:
        now = self.now()
        for rumor in msg.payload_rumors:
            if rumor not in self.known_at:
                self.known_at[rumor] = now


def make_exposed_gossip_factory(config: Optional[GossipConfig] = None):
    """Factory of exposed gossip services sharing one configuration."""
    cfg = config if config is not None else GossipConfig()

    def factory(node_id: int) -> ExposedGossip:
        return ExposedGossip(node_id, cfg)

    return factory


__all__ = ["ExposedGossip", "make_exposed_gossip_factory"]
