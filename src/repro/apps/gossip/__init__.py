"""Epidemic dissemination with exposed peer choice (Section 3.1)."""

from .baseline import STRATEGIES, BaselineGossip, make_baseline_gossip_factory
from .common import (
    GossipConfig,
    GossipPullReply,
    GossipPush,
    all_delivered,
    bar_partner,
    coverage,
    delivery_latencies,
    mean_delivery_latency,
)
from .exposed import ExposedGossip, make_exposed_gossip_factory
from .score import (
    ModelGossipResolver,
    gossip_peer_score,
    make_model_gossip_resolver,
)
from .views import ViewGossip, make_view_gossip_factory

__all__ = [
    "ViewGossip",
    "make_view_gossip_factory",
    "STRATEGIES",
    "BaselineGossip",
    "make_baseline_gossip_factory",
    "GossipConfig",
    "GossipPullReply",
    "GossipPush",
    "all_delivered",
    "bar_partner",
    "coverage",
    "delivery_latencies",
    "mean_delivery_latency",
    "ExposedGossip",
    "make_exposed_gossip_factory",
    "ModelGossipResolver",
    "gossip_peer_score",
    "make_model_gossip_resolver",
]
