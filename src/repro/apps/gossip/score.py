"""Model-based resolution for the gossip peer choice.

This is the light-weight end of the paper's design space: instead of
full consequence prediction, the resolver consults the runtime's
*models* directly (Section 3.4's "choices based on previous similar
scenarios as a fast alternative").  A peer scores high when

* the state model says it is missing rumors we hold (novelty), and
* the network model says the link to it is fast (low RTT).

Two corrections a pure argmax would get wrong (and measurably did, see
EXPERIMENTS.md E4): a *recency penalty* remembers our own recent pushes
(the state model only learns a peer's new rumors when its next
checkpoint arrives), and a small *score jitter* decorrelates nodes that
share the same view so the whole system does not herd onto one target.

Requires a CrystalBall runtime on the node (for its models); without
one the resolver falls back to uniform random choice.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...choice.choicepoint import ChoicePoint, ChoiceResolver

# Floor on the per-exchange cost so the rate stays bounded: even a
# zero-latency peer costs about one gossip round to serve.
MIN_EXCHANGE_COST = 0.05


def gossip_peer_score(candidate: int, point: ChoicePoint, node: Optional[Any]) -> float:
    """Model score of a candidate gossip peer: novelty *rate*.

    Expected new rumors delivered per unit time, i.e. novelty divided
    by the predicted round-trip cost of the exchange.  A slow peer
    missing many rumors can still win (someone must serve it), but not
    while fast peers also have useful work — which is what minimizes
    mean delivery latency.  A plain ``novelty - w*rtt`` difference gets
    this wrong: it either herds onto slow always-novel peers or starves
    them, depending on the weight (see EXPERIMENTS.md E4).
    """
    runtime = getattr(node, "crystalball", None) if node is not None else None
    if runtime is None:
        return 0.0
    me = node.node_id
    my_known = set(node.service.known)
    peer_checkpoint = runtime.state_model.get(candidate)
    if peer_checkpoint is None:
        # Unknown peers are assumed maximally novel (optimism drives
        # exploration toward nodes we have never exchanged with).
        novelty = float(len(my_known))
    else:
        peer_known = set(peer_checkpoint.state.get("known_at", {}))
        novelty = float(len(my_known - peer_known))
    rtt = runtime.network_model.rtt(me, candidate)
    return novelty / (rtt + MIN_EXCHANGE_COST)


class ModelGossipResolver(ChoiceResolver):
    """Score-proportional sampling over the runtime's models.

    Argmax resolution herds: every node with a similar (stale) view
    picks the same target, which serializes behind one link.  Sampling
    each candidate with probability proportional to its novelty-rate
    score keeps the fleet decorrelated while still biasing exchanges
    toward fast, useful peers.  A recency damp models our own in-flight
    pushes that the state model has not caught up with yet.
    """

    name = "gossip-model"

    def __init__(
        self,
        base_weight: float = 2.0,
        recency_damp: float = 0.2,
        recency_window: float = 0.6,
    ) -> None:
        self.base_weight = base_weight
        self.recency_damp = recency_damp
        self.recency_window = recency_window
        self._last_pushed: Dict[int, float] = {}

    def resolve(self, point: ChoicePoint, node: Optional[Any] = None) -> Any:
        if node is None:
            return point.candidates[0]
        rng = node.sim.rng.stream(f"node{node.node_id}.gossip-model")
        if getattr(node, "crystalball", None) is None:
            return rng.choice(point.candidates)
        now = node.sim.now
        weights = []
        for candidate in point.candidates:
            weight = max(0.0, gossip_peer_score(candidate, point, node)) + self.base_weight
            last = self._last_pushed.get(candidate)
            if last is not None and now - last < self.recency_window:
                weight *= self.recency_damp
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            return rng.choice(point.candidates)
        pick = rng.random() * total
        cumulative = 0.0
        chosen = point.candidates[-1]
        for candidate, weight in zip(point.candidates, weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = candidate
                break
        self._last_pushed[chosen] = now
        return chosen


def make_model_gossip_resolver(**kwargs: Any) -> ModelGossipResolver:
    """A resolver using the runtime's network and state models."""
    return ModelGossipResolver(**kwargs)


__all__ = [
    "gossip_peer_score",
    "ModelGossipResolver",
    "make_model_gossip_resolver",
    "MIN_EXCHANGE_COST",
]
