"""Gossip over partial views: epidemic dissemination at 1,000+ nodes.

:class:`ViewGossip` composes :class:`~repro.net.membership.PartialViewMembership`
in front of :class:`~repro.apps.gossip.exposed.ExposedGossip`: instead
of exposing all n-1 peers as candidates each round (O(n) candidate
lists, O(n²) world-wide), the exposed choice ranges over the node's
HyParView active view.  Rumors still reach everyone — epidemic spread
over a connected overlay — but per-round work is O(active_size), which
is what makes 1k-node gossip runs routine.
"""

from __future__ import annotations

from typing import List, Optional

from ...net.membership import (
    VIEW_STATE_FIELDS,
    PartialViewMembership,
    ViewConfig,
)
from .common import GossipConfig
from .exposed import ExposedGossip


class ViewGossip(PartialViewMembership, ExposedGossip):
    """Push-pull gossip whose peer choice ranges over the active view."""

    state_fields = ExposedGossip.state_fields + VIEW_STATE_FIELDS

    def __init__(
        self,
        node_id: int,
        config: Optional[GossipConfig] = None,
        view_config: Optional[ViewConfig] = None,
    ) -> None:
        ExposedGossip.__init__(self, node_id, config)
        self.init_views(view_config)

    def gossip_candidates(self) -> List[int]:
        return list(self.active)


def make_view_gossip_factory(
    config: Optional[GossipConfig] = None,
    view_config: Optional[ViewConfig] = None,
):
    """Factory of view-based gossip services sharing one configuration."""
    cfg = config if config is not None else GossipConfig()
    vcfg = view_config if view_config is not None else ViewConfig()

    def factory(node_id: int) -> ViewGossip:
        return ViewGossip(node_id, cfg, vcfg)

    return factory


__all__ = ["ViewGossip", "make_view_gossip_factory"]
