"""Baseline gossip: peer-selection strategy hard-coded in the service.

Two buried strategies, selected by a constructor flag exactly the way
deployed systems bake the policy in:

* ``"random"`` — uniform random peer each round (classic epidemic).
* ``"bar"`` — the BAR Gossip restriction: the single verifiable
  pseudo-random partner for this round, regardless of how slow the
  link to that partner is.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...statemachine import Service, msg_handler, timer_handler
from .common import GossipConfig, GossipPullReply, GossipPush, bar_partner

STRATEGIES = ("random", "bar")


class BaselineGossip(Service):
    """Push-pull epidemic dissemination with a hard-coded peer policy."""

    state_fields = ("known_at", "round", "published")

    def __init__(
        self,
        node_id: int,
        config: Optional[GossipConfig] = None,
        strategy: str = "random",
    ) -> None:
        super().__init__(node_id)
        self.config = config if config is not None else GossipConfig()
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        self.strategy = strategy
        self.known_at: Dict[int, float] = {}
        self.round = 0
        self.published = 0

    @property
    def known(self):
        """The set of rumor ids this node holds."""
        return set(self.known_at)

    def on_init(self) -> None:
        if self.node_id == self.config.source:
            if self.config.publish_interval <= 0:
                for rumor in range(self.config.rumor_count):
                    self.known_at[rumor] = self.now()
                self.published = self.config.rumor_count
            else:
                self.set_timer("publish", 0.0)
        self.set_timer("gossip", self.config.round_period)

    @timer_handler("publish")
    def on_publish(self, payload) -> None:
        if self.published < self.config.rumor_count:
            self.known_at[self.published] = self.now()
            self.published += 1
            self.set_timer("publish", self.config.publish_interval)

    @timer_handler("gossip")
    def on_gossip_round(self, payload) -> None:
        self.round += 1
        if self.known_at:
            # The buried policy: strategy-specific peer selection.
            if self.strategy == "bar":
                peer = bar_partner(self.node_id, self.round, self.config.n)
            else:
                rng = self.rng("peer")
                peer = rng.randrange(self.config.n - 1)
                if peer >= self.node_id:
                    peer += 1
            self.send(peer, self._make_push())
        self.set_timer("gossip", self.config.round_period)

    def _make_push(self) -> GossipPush:
        # Payload budget goes to the newest rumors (streaming freshness).
        newest = sorted(self.known_at, reverse=True)[: self.config.push_limit]
        return GossipPush(
            have_ids=sorted(self.known_at), payload_rumors=newest, round=self.round,
        )

    @msg_handler(GossipPush)
    def on_push(self, src: int, msg: GossipPush) -> None:
        now = self.now()
        for rumor in msg.payload_rumors:
            if rumor not in self.known_at:
                self.known_at[rumor] = now
        sender_has = set(msg.have_ids) | set(msg.payload_rumors)
        missing_there = sorted(set(self.known_at) - sender_has, reverse=True)
        if missing_there:
            self.send(
                src,
                GossipPullReply(payload_rumors=missing_there[: self.config.push_limit]),
            )

    @msg_handler(GossipPullReply)
    def on_pull_reply(self, src: int, msg: GossipPullReply) -> None:
        now = self.now()
        for rumor in msg.payload_rumors:
            if rumor not in self.known_at:
                self.known_at[rumor] = now


def make_baseline_gossip_factory(config: Optional[GossipConfig] = None, strategy: str = "random"):
    """Factory of baseline gossip services sharing one configuration."""
    cfg = config if config is not None else GossipConfig()

    def factory(node_id: int) -> BaselineGossip:
        return BaselineGossip(node_id, cfg, strategy)

    return factory


__all__ = ["BaselineGossip", "make_baseline_gossip_factory", "STRATEGIES"]
