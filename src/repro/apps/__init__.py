"""Distributed applications built on the reproduction's substrates.

``randtree`` is the paper's case study (Section 4); ``gossip``,
``dissemination``, and ``paxos`` implement the motivating examples of
Section 3.1 as runnable systems.
"""
