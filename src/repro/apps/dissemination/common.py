"""Shared content-distribution protocol pieces.

Section 3.1's content-distribution example: "The BulletPrime and
BitTorrent content distribution systems have two different mechanisms
for choosing the next block to request from any given peer, namely
random and rarest-random.  Experimental results show that neither of
these strategies is decidedly superior."  The decision this application
exposes is exactly that *next-block choice*; E5 sweeps deployments
(scarce single seed vs abundant seeds) to show the crossover and that a
runtime-resolved choice tracks the better policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ...statemachine import Message

BLOCK_BYTES = 65_536


@dataclass
class Bitfield(Message):
    """Full availability summary, sent when peers first meet."""

    blocks: List[int]

    def wire_size(self) -> int:
        return 64 + 4 * max(1, len(self.blocks))


@dataclass
class HaveBlock(Message):
    """Announcement of a newly completed block."""

    block: int


@dataclass
class BlockRequest(Message):
    """Request for one block's data."""

    block: int


@dataclass
class BlockData(Message):
    """One block of actual content (the expensive message)."""

    block: int

    def wire_size(self) -> int:
        return 64 + BLOCK_BYTES


@dataclass(frozen=True)
class DisseminationConfig:
    """Swarm parameters.

    ``seeds`` hold the whole file from the start; every other node is a
    leecher.  ``view_size`` peers are visible to each node (BitTorrent's
    tracker-provided random subset).  ``max_outstanding`` bounds
    concurrent requests per leecher; ``request_timeout`` re-issues
    requests lost to churn.
    """

    n: int = 17
    block_count: int = 48
    seeds: Tuple[int, ...] = (0,)
    view_size: int = 8
    tick_period: float = 0.1
    max_outstanding: int = 2
    request_timeout: float = 5.0


def completion_times(services) -> List[float]:
    """``completed_at`` of every finished leecher (seeds excluded)."""
    return sorted(
        service.completed_at
        for service in services
        if service.completed_at is not None and not service.is_seed
    )


def all_complete(services) -> bool:
    """Whether every leecher holds the full file."""
    return all(
        service.completed_at is not None
        for service in services
        if not service.is_seed
    )


__all__ = [
    "BLOCK_BYTES",
    "Bitfield",
    "HaveBlock",
    "BlockRequest",
    "BlockData",
    "DisseminationConfig",
    "completion_times",
    "all_complete",
]
