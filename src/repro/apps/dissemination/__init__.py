"""Content distribution with exposed next-block choice (Section 3.1)."""

from .common import (
    BLOCK_BYTES,
    Bitfield,
    BlockData,
    BlockRequest,
    DisseminationConfig,
    HaveBlock,
    all_complete,
    completion_times,
)
from .resolvers import AdaptiveBlockResolver, RarestBlockResolver
from .service import (
    BASELINE_STRATEGIES,
    BaselineSwarm,
    ExposedSwarm,
    SwarmBase,
    make_baseline_swarm_factory,
    make_exposed_swarm_factory,
    make_views,
)

__all__ = [
    "BLOCK_BYTES",
    "Bitfield",
    "BlockData",
    "BlockRequest",
    "DisseminationConfig",
    "HaveBlock",
    "all_complete",
    "completion_times",
    "AdaptiveBlockResolver",
    "RarestBlockResolver",
    "BASELINE_STRATEGIES",
    "BaselineSwarm",
    "ExposedSwarm",
    "SwarmBase",
    "make_baseline_swarm_factory",
    "make_exposed_swarm_factory",
    "make_views",
]
