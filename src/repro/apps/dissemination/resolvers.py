"""Resolvers for the exposed next-block choice.

A *policy as resolver*: the same service code runs random,
rarest-random, or the adaptive policy depending on which resolver the
node carries — the paper's claim that the strategy belongs in the
runtime, not in the application.

The adaptive resolver implements the judgement BitTorrent hard-codes as
a one-time ad-hoc switch: when some needed block is scarce (few
replicas), behave rarest-first to keep the swarm's piece diversity;
when everything is well replicated, request uniformly at random to
spread load off the herd.
"""

from __future__ import annotations

from typing import Any, Optional

from ...choice.choicepoint import ChoicePoint, ChoiceResolver


def _node_rng(node: Optional[Any], name: str):
    if node is None:
        return None
    return node.sim.rng.stream(f"node{node.node_id}.{name}")


class RarestBlockResolver(ChoiceResolver):
    """Rarest-random: uniform among the least-replicated candidates."""

    name = "rarest-block"

    def resolve(self, point: ChoicePoint, node: Optional[Any] = None) -> Any:
        counts = point.info.get("counts", {})
        rarest = min(counts.get(b, 0) for b in point.candidates)
        pool = [b for b in point.candidates if counts.get(b, 0) == rarest]
        rng = _node_rng(node, "rarest-block")
        if rng is None:
            return pool[0]
        return pool[rng.randrange(len(pool))]


class AdaptiveBlockResolver(ChoiceResolver):
    """Scarcity-aware switch between rarest-random and random.

    ``scarcity_threshold`` is the replication count at or below which a
    block is considered endangered; while any candidate is endangered
    the resolver plays rarest-random, otherwise uniform random.
    """

    name = "adaptive-block"

    def __init__(self, scarcity_threshold: int = 2) -> None:
        self.scarcity_threshold = scarcity_threshold

    def resolve(self, point: ChoicePoint, node: Optional[Any] = None) -> Any:
        counts = point.info.get("counts", {})
        rng = _node_rng(node, "adaptive-block")
        rarest = min(counts.get(b, 0) for b in point.candidates)
        if rarest <= self.scarcity_threshold:
            pool = [b for b in point.candidates if counts.get(b, 0) == rarest]
        else:
            pool = list(point.candidates)
        if rng is None:
            return pool[0]
        return pool[rng.randrange(len(pool))]


__all__ = ["RarestBlockResolver", "AdaptiveBlockResolver"]
