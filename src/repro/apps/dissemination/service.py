"""Swarm services: block exchange with pluggable next-block policy.

:class:`SwarmBase` implements the shared mechanics (handshakes,
availability tracking, request pipelining, timeouts).  The *next-block*
decision — the one BulletPrime and BitTorrent hard-code differently —
is left abstract: :class:`BaselineSwarm` buries a strategy flag
(``"random"`` or ``"rarest"``), :class:`ExposedSwarm` exposes the
choice to the runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...statemachine import Service, msg_handler, timer_handler
from .common import (
    Bitfield,
    BlockData,
    BlockRequest,
    DisseminationConfig,
    HaveBlock,
)


class SwarmBase(Service):
    """Common swarm mechanics; subclasses supply the block policy."""

    state_fields = ("have", "peers", "availability", "outstanding", "completed_at")

    def __init__(
        self,
        node_id: int,
        config: DisseminationConfig,
        view: List[int],
    ) -> None:
        super().__init__(node_id)
        self.config = config
        self.view = list(view)
        self.have: Set[int] = set()
        self.peers: List[int] = []
        self.availability: Dict[int, Set[int]] = {}
        # block -> (peer, requested_at)
        self.outstanding: Dict[int, tuple] = {}
        self.completed_at: Optional[float] = None

    @property
    def is_seed(self) -> bool:
        """Whether this node started with the full file."""
        return self.node_id in self.config.seeds

    def on_init(self) -> None:
        if self.is_seed:
            self.have = set(range(self.config.block_count))
            self.completed_at = self.now()
        self.peers = list(self.view)
        for peer in self.view:
            self.send(peer, Bitfield(blocks=sorted(self.have)))
        self.set_timer("tick", self.config.tick_period)

    # ------------------------------------------------------------------
    # Peer/availability bookkeeping
    # ------------------------------------------------------------------

    @msg_handler(Bitfield)
    def on_bitfield(self, src: int, msg: Bitfield) -> None:
        newly_met = src not in self.availability
        self.availability[src] = set(msg.blocks)
        if src not in self.peers:
            self.peers.append(src)
        if newly_met:
            self.send(src, Bitfield(blocks=sorted(self.have)))

    @msg_handler(HaveBlock)
    def on_have(self, src: int, msg: HaveBlock) -> None:
        self.availability.setdefault(src, set()).add(msg.block)
        if src not in self.peers:
            self.peers.append(src)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    @msg_handler(BlockRequest)
    def on_request(self, src: int, msg: BlockRequest) -> None:
        if msg.block in self.have:
            self.send(src, BlockData(block=msg.block))

    @msg_handler(BlockData)
    def on_block(self, src: int, msg: BlockData) -> None:
        self.outstanding.pop(msg.block, None)
        if msg.block in self.have:
            return
        self.have.add(msg.block)
        if len(self.have) >= self.config.block_count and self.completed_at is None:
            self.completed_at = self.now()
            self.record("swarm.complete", blocks=len(self.have))
        for peer in self.peers:
            self.send(peer, HaveBlock(block=msg.block))

    # ------------------------------------------------------------------
    # Request scheduling
    # ------------------------------------------------------------------

    @timer_handler("tick")
    def on_tick(self, payload) -> None:
        if not self.is_seed and self.completed_at is None:
            self._prune_outstanding()
            while len(self.outstanding) < self.config.max_outstanding:
                if not self._issue_one_request():
                    break
        self.set_timer("tick", self.config.tick_period)

    def _prune_outstanding(self) -> None:
        now = self.now()
        expired = [
            block for block, (_, at) in self.outstanding.items()
            if now - at > self.config.request_timeout
        ]
        for block in expired:
            del self.outstanding[block]

    def _issue_one_request(self) -> bool:
        needed = set(range(self.config.block_count)) - self.have - set(self.outstanding)
        if not needed:
            return False
        useful = [
            peer for peer in sorted(self.availability)
            if self.availability[peer] & needed
        ]
        if not useful:
            return False
        peer = useful[self.rng("peer").randrange(len(useful))]
        candidates = sorted(self.availability[peer] & needed)
        block = self.pick_block(peer, candidates)
        self.outstanding[block] = (peer, self.now())
        self.send(peer, BlockRequest(block=block))
        return True

    def block_counts(self, blocks) -> Dict[int, int]:
        """Replication count of each block across known peers."""
        return {
            block: sum(1 for have in self.availability.values() if block in have)
            for block in blocks
        }

    def pick_block(self, peer: int, candidates: List[int]) -> int:
        """The next-block decision (supplied by subclasses)."""
        raise NotImplementedError


BASELINE_STRATEGIES = ("random", "rarest")


class BaselineSwarm(SwarmBase):
    """Hard-coded next-block policy, selected by a constructor flag.

    ``"random"`` requests a uniformly random needed block (BitTorrent's
    startup mode); ``"rarest"`` requests a uniformly random block among
    those with the lowest replication count (BulletPrime's
    rarest-random).
    """

    def __init__(
        self,
        node_id: int,
        config: DisseminationConfig,
        view: List[int],
        strategy: str = "rarest",
    ) -> None:
        super().__init__(node_id, config, view)
        if strategy not in BASELINE_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {BASELINE_STRATEGIES}"
            )
        self.strategy = strategy

    def pick_block(self, peer: int, candidates: List[int]) -> int:
        rng = self.rng("block")
        if self.strategy == "rarest":
            counts = self.block_counts(candidates)
            rarest = min(counts.values())
            pool = [b for b in candidates if counts[b] == rarest]
        else:
            pool = candidates
        return pool[rng.randrange(len(pool))]


class ExposedSwarm(SwarmBase):
    """Next-block decision exposed to the runtime.

    The candidate list and the replication counts (the application's
    contribution to the model, per Section 3.3.2) go to the resolver;
    the policy — random, rarest, or adaptive — is whatever resolver the
    node carries.
    """

    def pick_block(self, peer: int, candidates: List[int]) -> int:
        return self.choose(
            "next-block",
            candidates,
            peer=peer,
            counts=self.block_counts(candidates),
        )


def make_views(n: int, view_size: int, seed: int) -> List[List[int]]:
    """Tracker-style random peer views, one per node."""
    import random as _random

    rng = _random.Random(seed)
    views = []
    for node_id in range(n):
        others = [p for p in range(n) if p != node_id]
        rng.shuffle(others)
        views.append(sorted(others[: min(view_size, len(others))]))
    return views


def make_baseline_swarm_factory(
    config: DisseminationConfig, views: List[List[int]], strategy: str,
):
    """Factory of baseline swarm services with per-node views."""

    def factory(node_id: int) -> BaselineSwarm:
        return BaselineSwarm(node_id, config, views[node_id], strategy)

    return factory


def make_exposed_swarm_factory(config: DisseminationConfig, views: List[List[int]]):
    """Factory of exposed swarm services with per-node views."""

    def factory(node_id: int) -> ExposedSwarm:
        return ExposedSwarm(node_id, config, views[node_id])

    return factory


__all__ = [
    "SwarmBase",
    "BaselineSwarm",
    "ExposedSwarm",
    "BASELINE_STRATEGIES",
    "make_views",
    "make_baseline_swarm_factory",
    "make_exposed_swarm_factory",
]
