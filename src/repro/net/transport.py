"""Message transport over a topology.

:class:`Network` delivers application payloads between attached
endpoints through the simulator, modelling per-link propagation,
bandwidth serialization (FIFO per directed link), loss, node failures,
partitions, and TCP-like per-pair connections.

Connections matter because CrystalBall's execution steering works "by
dropping the offending message and breaking the connection with the
message sender" (Section 2): :meth:`Network.break_connection` discards
all in-flight traffic on the pair and notifies both live endpoints.
Reliable sends model retransmission as added delay instead of loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..obs import MetricsRegistry
from ..sim import LivenessRegistry, Simulator

OnMessage = Callable[[int, int, Any], None]
OnBroken = Callable[[int], None]

DEFAULT_MESSAGE_BYTES = 1024
RETRANSMIT_TIMEOUT = 0.2


class TransportError(Exception):
    """Raised on sends from/to unattached endpoints."""


@dataclass
class _Endpoint:
    on_message: OnMessage
    on_broken: Optional[OnBroken]


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class Network:
    """Simulated transport bound to a topology and liveness registry."""

    def __init__(
        self,
        sim: Simulator,
        topology,
        liveness: Optional[LivenessRegistry] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.liveness = liveness if liveness is not None else LivenessRegistry()
        # Give the registry a trace and clock so observer failures are
        # logged with simulated timestamps (see LivenessRegistry._notify).
        if self.liveness.trace is None:
            self.liveness.trace = sim.trace
        if self.liveness.clock is None:
            self.liveness.clock = lambda: sim.now
        self._endpoints: Dict[int, _Endpoint] = {}
        # TCP-like connection epoch per unordered pair: breaking a
        # connection bumps the epoch, invalidating in-flight messages.
        self._conn_epoch: Dict[Tuple[int, int], int] = {}
        # FIFO per directed link: when the previous byte finishes serializing.
        self._busy_until: Dict[Tuple[int, int], float] = {}
        # Optional per-node uplink capacity (bits/s): all of a node's
        # outgoing transfers serialize through it, modelling the shared
        # access-link bottleneck content-distribution systems contend on.
        self._uplink_bps: Dict[int, float] = {}
        self._uplink_busy: Dict[int, float] = {}
        # In-order delivery per directed pair for reliable traffic.
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._partition_groups: Optional[List[Set[int]]] = None
        # Chaos fault interposers (see repro.chaos.faults): consulted on
        # every send, they may drop, duplicate, delay, or replace the
        # payload — the adversarial end of the fault spectrum, layered
        # on top of the benign link loss model below.
        self._fault_interposers: List[Any] = []
        # Topology listeners: called with a kind string ("partition",
        # "heal", "break") whenever connectivity changes.  CrystalBall
        # runtimes subscribe to invalidate their prediction memos —
        # connectivity is an input every cached chain implicitly read.
        self.topology_listeners: List[Any] = []
        # Traffic counters live in the metrics registry (a private one
        # unless a shared registry is passed in); the historical
        # ``messages_sent``/... attributes remain as live properties.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._messages_sent = self.metrics.counter("net.messages_sent")
        self._messages_delivered = self.metrics.counter("net.messages_delivered")
        self._messages_dropped = self.metrics.counter("net.messages_dropped")
        self._messages_duplicated = self.metrics.counter("net.messages_duplicated")
        self._bytes_sent = self.metrics.counter("net.bytes_sent")
        # Hot-loop caches: the loss stream is one registry object per
        # name (looking it up per send costs a dict probe + method call),
        # and delivery tags are interned per directed pair instead of
        # being formatted on every send.
        self._loss_rng = sim.rng.stream("net.loss")
        self._deliver_tags: Dict[Tuple[int, int], str] = {}
        self._batch_tags: Dict[int, str] = {}

    @property
    def messages_sent(self) -> int:
        return self._messages_sent.value

    @messages_sent.setter
    def messages_sent(self, value: int) -> None:
        self._messages_sent.value = value

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered.value

    @messages_delivered.setter
    def messages_delivered(self, value: int) -> None:
        self._messages_delivered.value = value

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped.value

    @messages_dropped.setter
    def messages_dropped(self, value: int) -> None:
        self._messages_dropped.value = value

    @property
    def messages_duplicated(self) -> int:
        return self._messages_duplicated.value

    @messages_duplicated.setter
    def messages_duplicated(self, value: int) -> None:
        self._messages_duplicated.value = value

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent.value

    @bytes_sent.setter
    def bytes_sent(self, value: int) -> None:
        self._bytes_sent.value = value

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------

    def attach(self, node_id: int, on_message: OnMessage, on_broken: Optional[OnBroken] = None) -> None:
        """Register the delivery callbacks for ``node_id``.

        ``on_message(src, dst, payload)`` is invoked at delivery time;
        ``on_broken(peer)`` when a connection with ``peer`` is broken.
        """
        self._endpoints[node_id] = _Endpoint(on_message=on_message, on_broken=on_broken)

    def detach(self, node_id: int) -> None:
        """Remove the endpoint; queued deliveries to it will be dropped."""
        self._endpoints.pop(node_id, None)

    def set_uplink(self, node_id: int, bits_per_second: float) -> None:
        """Cap the node's total outgoing capacity at ``bits_per_second``."""
        if bits_per_second <= 0:
            raise TransportError(f"uplink capacity must be positive, got {bits_per_second!r}")
        self._uplink_bps[node_id] = bits_per_second

    def uplink(self, node_id: int) -> Optional[float]:
        """The node's uplink cap in bits/s, or ``None`` if uncapped."""
        return self._uplink_bps.get(node_id)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def set_partition(self, groups: List[Set[int]]) -> None:
        """Install a partition: traffic between different groups is dropped.

        Nodes absent from every group form an implicit extra group.
        """
        self._partition_groups = [set(g) for g in groups]
        self._notify_topology("partition")

    def clear_partition(self) -> None:
        """Heal any installed partition."""
        self._partition_groups = None
        self._notify_topology("heal")

    def _notify_topology(self, kind: str) -> None:
        for listener in list(self.topology_listeners):
            try:
                listener(kind)
            except Exception:
                # Listeners are best-effort observers; never let one
                # break connectivity management.
                self.sim.trace.record(
                    self.sim.now, "net.topology_listener_error", kind=kind,
                )

    # ------------------------------------------------------------------
    # Fault interposers
    # ------------------------------------------------------------------

    def add_fault_interposer(self, interposer: Any) -> None:
        """Install a fault interposer consulted on every send.

        The interposer's ``apply(src, dst, payload, now)`` returns a
        ``FaultDecision`` (or ``None`` to leave the send untouched).
        """
        self._fault_interposers.append(interposer)

    def remove_fault_interposer(self, interposer: Any) -> None:
        """Uninstall a previously-added fault interposer."""
        self._fault_interposers.remove(interposer)

    def _consult_faults(self, src: int, dst: int, payload: Any):
        """Fold all interposer decisions for one send (first drop wins)."""
        combined = None
        for interposer in self._fault_interposers:
            decision = interposer.apply(src, dst, payload, self.sim.now)
            if decision is None:
                continue
            if decision.drop:
                return decision
            if combined is None:
                combined = decision
            else:
                combined.duplicates += decision.duplicates
                combined.duplicate_delays = tuple(combined.duplicate_delays) + tuple(
                    decision.duplicate_delays
                )
                combined.extra_delay += decision.extra_delay
                if decision.replace is not None:
                    combined.replace = decision.replace
        return combined

    def _crosses_partition(self, a: int, b: int) -> bool:
        if self._partition_groups is None:
            return False
        group_of: Dict[int, int] = {}
        for idx, group in enumerate(self._partition_groups):
            for node in group:
                group_of[node] = idx
        return group_of.get(a, -1) != group_of.get(b, -1)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _deliver_tag(self, src: int, dst: int) -> str:
        tag = self._deliver_tags.get((src, dst))
        if tag is None:
            tag = self._deliver_tags[(src, dst)] = f"net.deliver:{src}->{dst}"
        return tag

    def _prepare_send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size_bytes: int,
        reliable: bool,
    ):
        """Everything :meth:`send` does up to (but not including) the
        queue insertion.

        Returns ``None`` when the message is dropped at send time, else
        ``(arrival, delivered_payload, epoch, ctx, fault)``.  Shared by
        :meth:`send` and :meth:`send_many` so the two paths cannot
        diverge: counters, liveness/partition/fault checks, loss
        sampling, FIFO serialization, and the ``net.send`` trace record
        all happen here, in exactly the per-send order.
        """
        if src not in self._endpoints:
            raise TransportError(f"source node {src} is not attached")
        self._messages_sent.value += 1
        self._bytes_sent.value += size_bytes
        if not self.liveness.is_up(src):
            self._drop(src, dst, payload, "source-down")
            return None
        if self._partition_groups is not None and self._crosses_partition(src, dst):
            self._drop(src, dst, payload, "partition")
            return None
        fault = self._consult_faults(src, dst, payload) if self._fault_interposers else None
        if fault is not None and fault.drop:
            self._drop(src, dst, payload, fault.reason)
            return None

        link = self.topology.link(src, dst)
        delay = link.latency
        if link.loss > 0.0:
            rng = self._loss_rng
            if reliable:
                # Each sampled loss costs one retransmission timeout.
                while rng.random() < link.loss:
                    delay += RETRANSMIT_TIMEOUT + link.latency
            elif rng.random() < link.loss:
                self._drop(src, dst, payload, "loss")
                return None

        # Serialize through the directed link FIFO and, when capped, the
        # sender's shared uplink.
        now = self.sim.now
        start = max(now, self._busy_until.get((src, dst), 0.0))
        uplink_bps = self._uplink_bps.get(src)
        if uplink_bps is not None:
            start = max(start, self._uplink_busy.get(src, 0.0))
            effective_bps = min(link.bandwidth, uplink_bps)
            tx_done = start + (size_bytes * 8.0) / effective_bps
            self._uplink_busy[src] = tx_done
        else:
            tx_done = start + link.transmission_time(size_bytes)
        self._busy_until[(src, dst)] = tx_done
        arrival = tx_done + delay

        displaced = fault is not None and fault.extra_delay > 0.0
        if displaced:
            arrival += fault.extra_delay
        if reliable and not displaced:
            # FIFO in-order delivery per directed pair.  A chaos-displaced
            # message deliberately skips the clamp (and leaves the FIFO
            # watermark alone): reordering *is* the injected fault.
            arrival = max(arrival, self._last_delivery.get((src, dst), 0.0))
            self._last_delivery[(src, dst)] = arrival

        delivered_payload = payload
        if fault is not None and fault.replace is not None:
            delivered_payload = fault.replace

        epoch = self._conn_epoch.get(_pair(src, dst), 0) if reliable else None
        tracer = self.sim.causal
        ctx = None
        if tracer is not None:
            ctx = tracer.send_event(src, dst, type(payload).__name__)
        trace = self.sim.trace
        if trace.enabled:
            trace.record(now, "net.send", node=src, dst=dst, size=size_bytes,
                         kind=type(payload).__name__)
        return arrival, delivered_payload, epoch, ctx, fault

    def _schedule_duplicates(self, src, dst, arrival, payload, epoch, ctx, fault) -> None:
        for extra in fault.duplicate_delays[: fault.duplicates]:
            self._messages_duplicated.value += 1
            self.sim.schedule_at(
                arrival + extra,
                lambda: self._deliver(src, dst, payload, epoch, ctx, dup=True),
                tag=f"net.deliver-dup:{src}->{dst}",
            )

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size_bytes: int = DEFAULT_MESSAGE_BYTES,
        reliable: bool = True,
    ) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Reliable sends are delivered in order per pair, with loss turned
        into retransmission delay; unreliable sends may be dropped by
        link loss.  Returns ``False`` when the message is dropped at
        send time (source down, partition, or sampled loss).
        """
        prepared = self._prepare_send(src, dst, payload, size_bytes, reliable)
        if prepared is None:
            return False
        arrival, delivered_payload, epoch, ctx, fault = prepared
        self.sim.schedule_at(
            arrival,
            lambda: self._deliver(src, dst, delivered_payload, epoch, ctx),
            tag=self._deliver_tag(src, dst),
        )
        if fault is not None and fault.duplicates:
            self._schedule_duplicates(src, dst, arrival, delivered_payload,
                                      epoch, ctx, fault)
        return True

    def send_many(
        self,
        src: int,
        dsts,
        payload: Any,
        size_bytes: int = DEFAULT_MESSAGE_BYTES,
        reliable: bool = True,
    ) -> List[bool]:
        """Send ``payload`` from ``src`` to each of ``dsts`` — the
        broadcast fast path.

        Behaviourally identical to calling :meth:`send` once per
        destination, in order (same counters, same trace records, same
        loss draws, same delivery order — the equivalence is pinned by
        tests/net/test_send_many.py).  The difference is queue pressure:
        consecutive destinations whose deliveries land at the same
        arrival instant share ONE queue insertion that fans out at fire
        time, so a broadcast over a k-peer view costs O(distinct arrival
        times) heap operations instead of O(k).

        Ordering argument: within ``send_many`` no other event can be
        scheduled between the per-destination sends, so a contiguous
        same-arrival run occupies consecutive sequence numbers; firing
        them from one callback in send order is exactly the order the
        heap would have produced.  Fault-injected duplicates flush the
        pending run first so their interleaving matches the sequential
        path.

        Returns the per-destination accept flags, matching what
        :meth:`send` would have returned for each.
        """
        results: List[bool] = []
        batch: List[tuple] = []
        batch_arrival = 0.0
        schedule_at = self.sim.schedule_at
        for dst in dsts:
            prepared = self._prepare_send(src, dst, payload, size_bytes, reliable)
            if prepared is None:
                results.append(False)
                continue
            arrival, delivered_payload, epoch, ctx, fault = prepared
            if batch and arrival != batch_arrival:
                self._flush_batch(src, batch_arrival, batch)
                batch = []
            batch.append((dst, delivered_payload, epoch, ctx))
            batch_arrival = arrival
            if fault is not None and fault.duplicates:
                self._flush_batch(src, batch_arrival, batch)
                batch = []
                self._schedule_duplicates(src, dst, arrival, delivered_payload,
                                          epoch, ctx, fault)
            results.append(True)
        if batch:
            self._flush_batch(src, batch_arrival, batch)
        return results

    def _flush_batch(self, src: int, arrival: float, batch: List[tuple]) -> None:
        if len(batch) == 1:
            dst, payload, epoch, ctx = batch[0]
            self.sim.schedule_at(
                arrival,
                lambda: self._deliver(src, dst, payload, epoch, ctx),
                tag=self._deliver_tag(src, dst),
            )
            return
        tag = self._batch_tags.get(src)
        if tag is None:
            tag = self._batch_tags[src] = f"net.deliver-many:{src}"
        self.sim.schedule_at(
            arrival, lambda: self._deliver_batch(src, batch), tag=tag,
        )

    def _deliver_batch(self, src: int, batch: List[tuple]) -> None:
        if self.sim.causal is not None:
            for dst, payload, epoch, ctx in batch:
                self._deliver(src, dst, payload, epoch, ctx)
            return
        # Common case (no causal tracer), inlined from _deliver with the
        # per-message attribute walks hoisted: a k-peer broadcast fires
        # k application handlers from one event, so this loop IS the
        # simulator's hot loop at scale.
        conn_epoch_get = self._conn_epoch.get
        is_up = self.liveness.is_up
        endpoints_get = self._endpoints.get
        delivered = self._messages_delivered
        trace = self.sim.trace
        for dst, payload, epoch, ctx in batch:
            if (epoch is not None
                    and conn_epoch_get(_pair(src, dst), 0) != epoch):
                self._drop(src, dst, payload, "connection-broken", ctx,
                           at_dst=True)
                continue
            if not is_up(dst):
                self._drop(src, dst, payload, "destination-down", ctx,
                           at_dst=True)
                continue
            endpoint = endpoints_get(dst)
            if endpoint is None:
                self._drop(src, dst, payload, "detached", ctx, at_dst=True)
                continue
            delivered.value += 1
            if trace.enabled:
                trace.record(self.sim.now, "net.deliver", node=dst, src=src)
            endpoint.on_message(src, dst, payload)

    def _deliver(
        self,
        src: int,
        dst: int,
        payload: Any,
        epoch: Optional[int],
        ctx: Optional[Any] = None,
        dup: bool = False,
    ) -> None:
        if epoch is not None and self._conn_epoch.get(_pair(src, dst), 0) != epoch:
            self._drop(src, dst, payload, "connection-broken", ctx, at_dst=True)
            return
        if not self.liveness.is_up(dst):
            self._drop(src, dst, payload, "destination-down", ctx, at_dst=True)
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            self._drop(src, dst, payload, "detached", ctx, at_dst=True)
            return
        self._messages_delivered.value += 1
        tracer = self.sim.causal
        if tracer is None:
            trace = self.sim.trace
            if trace.enabled:
                trace.record(self.sim.now, "net.deliver", node=dst, src=src)
            endpoint.on_message(src, dst, payload)
            return
        event = tracer.deliver_event(ctx, dst, dup=dup)
        self.sim.trace.record(self.sim.now, "net.deliver", node=dst, src=src)
        # Inlined tracer.executing(event) — one scope per delivery makes
        # even the context-manager protocol measurable.
        scopes = tracer._current
        depth = len(scopes)
        scopes.append(event)
        try:
            endpoint.on_message(src, dst, payload)
        finally:
            del scopes[depth:]

    def _drop(
        self,
        src: int,
        dst: int,
        payload: Any,
        reason: str,
        ctx: Optional[Any] = None,
        at_dst: bool = False,
    ) -> None:
        self._messages_dropped.value += 1
        tracer = self.sim.causal
        if tracer is not None:
            tracer.drop_event(dst if at_dst else src, ctx)
        trace = self.sim.trace
        if trace.enabled:
            trace.record(
                self.sim.now, "net.drop", node=src, dst=dst, reason=reason,
                kind=type(payload).__name__,
            )

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def break_connection(self, a: int, b: int) -> None:
        """Break the TCP-like connection between ``a`` and ``b``.

        All in-flight reliable messages on the pair are dropped on
        arrival, and each live endpoint's ``on_broken`` callback fires
        with the peer id.  The next reliable send transparently opens a
        fresh connection (new epoch).
        """
        key = _pair(a, b)
        self._conn_epoch[key] = self._conn_epoch.get(key, 0) + 1
        self._last_delivery.pop((a, b), None)
        self._last_delivery.pop((b, a), None)
        self.sim.trace.record(self.sim.now, "net.break", node=a, peer=b)
        self._notify_topology("break")
        for me, peer in ((a, b), (b, a)):
            endpoint = self._endpoints.get(me)
            if endpoint is not None and endpoint.on_broken is not None and self.liveness.is_up(me):
                endpoint.on_broken(peer)

    def connection_epoch(self, a: int, b: int) -> int:
        """How many times the (a, b) connection has been broken."""
        return self._conn_epoch.get(_pair(a, b), 0)

    def __repr__(self) -> str:
        return (
            f"Network(endpoints={len(self._endpoints)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, dropped={self.messages_dropped})"
        )


__all__ = ["Network", "TransportError", "DEFAULT_MESSAGE_BYTES", "RETRANSMIT_TIMEOUT"]
