"""Network emulation substrate (the ModelNet substitute).

Link model with latency/bandwidth/loss, topology builders including an
Internet-like transit-stub generator, and a transport with TCP-like
breakable per-pair connections as required by CrystalBall's execution
steering.
"""

from .dynamics import CongestionEpisode, LinkDynamics, schedule_latency_change
from .link import LOOPBACK, Link, LinkError
from .topology import (
    Topology,
    TopologyError,
    full_mesh,
    random_uniform,
    star,
    transit_stub,
)
from .transport import DEFAULT_MESSAGE_BYTES, Network, TransportError

# Membership must come last: it subclasses repro.statemachine.Service,
# and repro.statemachine imports Network/Topology from this package —
# by this point those names are bound, so the cycle resolves cleanly in
# either import direction.
from .membership import (
    VIEW_STATE_FIELDS,
    PartialViewMembership,
    ViewConfig,
    make_membership_factory,
)

__all__ = [
    "VIEW_STATE_FIELDS",
    "PartialViewMembership",
    "ViewConfig",
    "make_membership_factory",
    "CongestionEpisode",
    "LinkDynamics",
    "schedule_latency_change",
    "LOOPBACK",
    "Link",
    "LinkError",
    "Topology",
    "TopologyError",
    "full_mesh",
    "random_uniform",
    "star",
    "transit_stub",
    "DEFAULT_MESSAGE_BYTES",
    "Network",
    "TransportError",
]
